"""Tests for the simulated construction buffer pool."""

import pytest

from repro.core.buffer import BufferPool
from repro.core.stats import AccessCounter


class TestBufferPool:
    def test_unbounded_never_spills(self):
        pool = BufferPool(capacity_series=None)
        for node in range(10):
            pool.add(node, 100)
        assert pool.stats.spills == 0
        assert pool.in_memory_series == 1000

    def test_spills_when_over_capacity(self):
        counter = AccessCounter()
        pool = BufferPool(capacity_series=100, counter=counter)
        pool.add("a", 60)
        pool.add("b", 70)
        assert pool.stats.spills >= 1
        assert pool.in_memory_series <= 100
        assert counter.random_accesses >= 2  # spill write + later re-read

    def test_spill_charges_write_and_read_halves_separately(self):
        counter = AccessCounter()
        pool = BufferPool(capacity_series=50, series_bytes=128, counter=counter)
        pool.add("a", 80)  # spills the whole buffer
        assert pool.stats.series_spilled == 80
        # One write (the spill) and one later re-read, each of 80 series.
        assert counter.bytes_written == 80 * 128
        assert counter.bytes_read == 80 * 128

    def test_repeated_spills_spill_current_largest(self):
        pool = BufferPool(capacity_series=30)
        # Interleave adds and flushes so the heap accumulates stale entries.
        pool.add("a", 10)
        pool.add("b", 12)
        pool.flush("b")
        pool.add("c", 8)
        pool.add("d", 11)  # 10 + 8 + 11 = 29, still under capacity
        pool.add("e", 5)   # 34 > 30: the largest live buffer ("d") must spill
        assert pool.buffered("d") == 0
        assert pool.buffered("a") == 10
        assert pool.buffered("c") == 8
        assert pool.buffered("e") == 5

    def test_many_buffers_spill_in_size_order(self):
        pool = BufferPool(capacity_series=1000)
        for node in range(100):
            pool.add(node, node + 1)  # 5050 series total, forces many spills
        # Largest-first spilling keeps only the smallest buffers resident.
        survivors = sorted(
            node for node in range(100) if pool.buffered(node) > 0
        )
        assert pool.in_memory_series <= 1000
        assert survivors == list(range(len(survivors)))  # a prefix of the smallest

    def test_spills_largest_buffer_first(self):
        pool = BufferPool(capacity_series=100)
        pool.add("small", 10)
        pool.add("big", 95)
        # "big" exceeded the budget and is the largest buffer, so it spilled.
        assert pool.buffered("big") == 0
        assert pool.buffered("small") == 10

    def test_flush_node(self):
        pool = BufferPool()
        pool.add("x", 5)
        assert pool.flush("x") == 5
        assert pool.buffered("x") == 0
        assert pool.in_memory_series == 0

    def test_flush_all(self):
        pool = BufferPool()
        pool.add("x", 5)
        pool.add("y", 7)
        assert pool.flush_all() == 12
        assert pool.in_memory_series == 0

    def test_peak_tracking(self):
        pool = BufferPool()
        pool.add("x", 5)
        pool.add("y", 10)
        pool.flush("y")
        pool.add("z", 1)
        assert pool.stats.peak_series_in_memory == 15

    def test_rejects_invalid_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(capacity_series=0)

    def test_rejects_negative_add(self):
        pool = BufferPool()
        with pytest.raises(ValueError):
            pool.add("x", -1)
