"""Tests for the simulated construction buffer pool."""

import pytest

from repro.core.buffer import BufferPool
from repro.core.stats import AccessCounter


class TestBufferPool:
    def test_unbounded_never_spills(self):
        pool = BufferPool(capacity_series=None)
        for node in range(10):
            pool.add(node, 100)
        assert pool.stats.spills == 0
        assert pool.in_memory_series == 1000

    def test_spills_when_over_capacity(self):
        counter = AccessCounter()
        pool = BufferPool(capacity_series=100, counter=counter)
        pool.add("a", 60)
        pool.add("b", 70)
        assert pool.stats.spills >= 1
        assert pool.in_memory_series <= 100
        assert counter.random_accesses >= 2  # spill write + later re-read

    def test_spills_largest_buffer_first(self):
        pool = BufferPool(capacity_series=100)
        pool.add("small", 10)
        pool.add("big", 95)
        # "big" exceeded the budget and is the largest buffer, so it spilled.
        assert pool.buffered("big") == 0
        assert pool.buffered("small") == 10

    def test_flush_node(self):
        pool = BufferPool()
        pool.add("x", 5)
        assert pool.flush("x") == 5
        assert pool.buffered("x") == 0
        assert pool.in_memory_series == 0

    def test_flush_all(self):
        pool = BufferPool()
        pool.add("x", 5)
        pool.add("y", 7)
        assert pool.flush_all() == 12
        assert pool.in_memory_series == 0

    def test_peak_tracking(self):
        pool = BufferPool()
        pool.add("x", 5)
        pool.add("y", 10)
        pool.flush("y")
        pool.add("z", 1)
        assert pool.stats.peak_series_in_memory == 15

    def test_rejects_invalid_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(capacity_series=0)

    def test_rejects_negative_add(self):
        pool = BufferPool()
        with pytest.raises(ValueError):
            pool.add("x", -1)
