"""Tests for the dataset generators and query workloads."""

import numpy as np
import pytest

from repro.workloads import (
    REAL_DATASET_NAMES,
    astro_like,
    controlled_workload,
    deep1b_like,
    extrapolate_total,
    gaussian_noise,
    label_by_difficulty,
    noisy_queries,
    random_walk,
    random_walk_dataset,
    real_ctrl_workload,
    real_like_dataset,
    sald_like,
    seismic_like,
    synth_ctrl_workload,
    synth_rand_workload,
)


class TestGenerators:
    def test_random_walk_shape_and_normalization(self):
        data = random_walk(50, 128, seed=1)
        assert data.shape == (50, 128)
        assert np.allclose(data.mean(axis=1), 0.0, atol=1e-3)

    def test_random_walk_reproducible(self):
        assert np.array_equal(random_walk(10, 32, seed=7), random_walk(10, 32, seed=7))

    def test_random_walk_different_seeds_differ(self):
        assert not np.array_equal(random_walk(10, 32, seed=1), random_walk(10, 32, seed=2))

    def test_random_walk_unnormalized(self):
        data = random_walk(5, 64, seed=3, normalize=False)
        # Unnormalized random walks drift away from zero mean.
        assert not np.allclose(data.mean(axis=1), 0.0, atol=1e-2)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            random_walk(0, 10)

    def test_gaussian_noise(self):
        data = gaussian_noise(20, 64, seed=5)
        assert data.shape == (20, 64)

    def test_random_walk_dataset(self):
        ds = random_walk_dataset(30, 64, seed=9, name="walks")
        assert ds.count == 30
        assert ds.name == "walks"
        assert ds.metadata["seed"] == 9


class TestRealLike:
    @pytest.mark.parametrize("name", REAL_DATASET_NAMES)
    def test_builders_produce_normalized_datasets(self, name):
        ds = real_like_dataset(name, count=40, seed=1)
        assert ds.count == 40
        assert ds.name == name
        assert np.allclose(ds.values.mean(axis=1), 0.0, atol=1e-3)

    def test_default_lengths_match_paper(self):
        assert real_like_dataset("seismic", 10, seed=0).length == 256
        assert real_like_dataset("astro", 10, seed=0).length == 256
        assert real_like_dataset("sald", 10, seed=0).length == 128
        assert real_like_dataset("deep1b", 10, seed=0).length == 96

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            real_like_dataset("imagenet", 10)

    def test_summarizability_ordering(self):
        """SALD/Astro-like data concentrates energy in few Fourier coefficients;
        Deep1B-like data does not - the property driving per-dataset pruning."""

        def low_frequency_energy(ds):
            spectrum = np.abs(np.fft.rfft(ds.values.astype(np.float64), axis=1)) ** 2
            total = spectrum.sum(axis=1) + 1e-12
            low = spectrum[:, : max(2, spectrum.shape[1] // 8)].sum(axis=1)
            return float(np.mean(low / total))

        smooth = low_frequency_energy(sald_like(60, seed=2))
        hard = low_frequency_energy(deep1b_like(60, seed=2))
        assert smooth > hard

    def test_direct_builders(self):
        assert seismic_like(5, seed=1).length == 256
        assert astro_like(5, seed=1).length == 256


class TestNoiseWorkloads:
    def test_noisy_queries_progressive_difficulty(self):
        ds = random_walk_dataset(100, 64, seed=4)
        queries, levels = noisy_queries(ds, 10, seed=5)
        assert queries.shape == (10, 64)
        assert np.all(np.diff(levels) >= 0)

    def test_noisy_queries_custom_levels(self):
        ds = random_walk_dataset(50, 32, seed=6)
        queries, levels = noisy_queries(ds, 3, noise_levels=[0.0, 1.0, 5.0], seed=7)
        assert list(levels) == [0.0, 1.0, 5.0]

    def test_noise_level_mismatch_raises(self):
        ds = random_walk_dataset(50, 32, seed=6)
        with pytest.raises(ValueError):
            noisy_queries(ds, 3, noise_levels=[0.0, 1.0], seed=7)

    def test_controlled_workload_labels(self):
        ds = random_walk_dataset(100, 64, seed=8)
        workload = controlled_workload(ds, count=20, seed=9)
        labels = {q.label for q in workload}
        assert labels == {"easy", "hard"}
        assert workload.name == f"{ds.name}-ctrl"

    def test_label_by_difficulty(self):
        ds = random_walk_dataset(100, 64, seed=10)
        workload = controlled_workload(ds, count=30, seed=11)
        ratios = np.linspace(1.0, 0.0, 30)
        labels = label_by_difficulty(workload, ratios, easiest=5, hardest=5)
        assert labels["easy"] == list(range(5))
        assert set(labels["hard"]) == set(range(25, 30))

    def test_label_by_difficulty_shape_mismatch(self):
        ds = random_walk_dataset(100, 64, seed=10)
        workload = controlled_workload(ds, count=10, seed=11)
        with pytest.raises(ValueError):
            label_by_difficulty(workload, np.zeros(5))


class TestWorkloadAssembly:
    def test_synth_rand(self):
        workload = synth_rand_workload(64, count=10, seed=1)
        assert len(workload) == 10
        assert workload.name == "synth-rand"
        assert workload.length == 64

    def test_synth_ctrl(self):
        ds = random_walk_dataset(100, 64, seed=12)
        workload = synth_ctrl_workload(ds, count=10, seed=13)
        assert workload.name == "synth-ctrl"

    def test_real_ctrl(self):
        ds = real_like_dataset("astro", 80, seed=14)
        workload = real_ctrl_workload(ds, count=10, seed=15)
        assert workload.name == "astro-ctrl"

    def test_extrapolation_procedure(self):
        # 100 per-query values of 1s with outliers of 0 and 100: trimming
        # removes the outliers so the extrapolated mean stays 1s per query.
        values = [1.0] * 90 + [0.0] * 5 + [100.0] * 5
        total = extrapolate_total(values, target_queries=10_000, trim=5)
        assert total == pytest.approx(10_000.0)

    def test_extrapolation_small_input(self):
        assert extrapolate_total([2.0], target_queries=10) == pytest.approx(20.0)
        assert extrapolate_total([], target_queries=10) == 0.0
