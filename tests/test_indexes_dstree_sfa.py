"""Tests for the DSTree and SFA trie indexes."""

import numpy as np
import pytest

from repro import SeriesStore
from repro.core.queries import KnnQuery
from repro.indexes.dstree import DsTreeIndex
from repro.indexes.sfa_trie import SfaTrieIndex


class TestDsTree:
    @pytest.fixture()
    def index(self, small_dataset):
        store = SeriesStore(small_dataset)
        idx = DsTreeIndex(store, initial_segments=4, leaf_capacity=25)
        idx.build()
        return idx

    def test_rejects_bad_leaf_capacity(self, small_dataset):
        with pytest.raises(ValueError):
            DsTreeIndex(SeriesStore(small_dataset), leaf_capacity=0)

    def test_every_series_stored_exactly_once(self, index, small_dataset):
        positions = []
        for leaf in index.root.leaves():
            positions.extend(leaf.positions)
        assert sorted(positions) == list(range(small_dataset.count))

    def test_exact_matches_brute_force(self, index, small_dataset, small_queries, brute_force_knn):
        for query in small_queries:
            _, truth_dist = brute_force_knn(small_dataset, query.series, k=1)
            result = index.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_exact_knn10(self, index, small_dataset, small_queries, brute_force_knn):
        query = small_queries[2]
        _, truth_dist = brute_force_knn(small_dataset, query.series, k=10)
        result = index.knn_exact(KnnQuery(series=query.series, k=10))
        assert np.allclose(result.distances(), truth_dist, atol=1e-4)

    def test_internal_nodes_have_two_children(self, index):
        for node in index.root.iter_nodes():
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                assert node.policy is not None

    def test_vertical_splits_refine_segmentation(self, index):
        # At least some node in a reasonably deep tree refines its boundaries,
        # or every split was horizontal - either way the boundaries stay valid.
        for node in index.root.iter_nodes():
            boundaries = node.boundaries
            assert boundaries[0] == 0
            assert boundaries[-1] == index.store.length
            assert np.all(np.diff(boundaries) > 0)

    def test_query_self_finds_itself(self, index, small_dataset):
        result = index.knn_exact(KnnQuery(series=small_dataset[11]))
        assert result.nearest.position == 11

    def test_approximate_visits_single_leaf(self, index, small_queries):
        result = index.knn_approximate(small_queries[0])
        assert result.stats.leaves_visited == 1

    def test_pruning_reported(self, index, small_queries):
        result = index.knn_exact(small_queries[0])
        assert 0.0 <= result.stats.pruning_ratio < 1.0

    def test_footprint_and_fill_factor(self, index):
        stats = index.index_stats
        assert stats.leaf_nodes > 1
        assert 0.0 < stats.median_fill_factor <= 1.0
        assert stats.max_leaf_depth >= 1


class TestSfaTrie:
    @pytest.fixture()
    def index(self, small_dataset):
        store = SeriesStore(small_dataset)
        idx = SfaTrieIndex(
            store, coefficients=8, alphabet_size=8, leaf_capacity=50, sample_size=200
        )
        idx.build()
        return idx

    def test_rejects_bad_leaf_capacity(self, small_dataset):
        with pytest.raises(ValueError):
            SfaTrieIndex(SeriesStore(small_dataset), leaf_capacity=0)

    def test_every_series_stored_exactly_once(self, index, small_dataset):
        positions = []
        for child in index.root.children.values():
            for leaf in child.leaves():
                positions.extend(leaf.positions)
        assert sorted(positions) == list(range(small_dataset.count))

    def test_exact_matches_brute_force(self, index, small_dataset, small_queries, brute_force_knn):
        for query in small_queries:
            _, truth_dist = brute_force_knn(small_dataset, query.series, k=1)
            result = index.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_split_extends_word_depth(self, index):
        depths = [leaf.depth for child in index.root.children.values() for leaf in child.leaves()]
        assert max(depths) >= 1
        assert max(depths) <= index.coefficients

    def test_exact_with_equi_width_binning(self, small_dataset, small_queries, brute_force_knn):
        store = SeriesStore(small_dataset)
        idx = SfaTrieIndex(store, coefficients=8, binning="equi-width", leaf_capacity=50)
        idx.build()
        _, truth_dist = brute_force_knn(small_dataset, small_queries[0].series, k=1)
        result = idx.knn_exact(small_queries[0])
        assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_approximate_search(self, index, small_queries):
        result = index.knn_approximate(small_queries[0])
        assert result.neighbors
        assert result.stats.leaves_visited == 1

    def test_query_self_finds_itself(self, index, small_dataset):
        result = index.knn_exact(KnnQuery(series=small_dataset[5]))
        assert result.nearest.position == 5

    def test_large_leaf_capacity_reduces_nodes(self, small_dataset):
        small_leaves = SfaTrieIndex(SeriesStore(small_dataset), leaf_capacity=20)
        small_leaves.build()
        big_leaves = SfaTrieIndex(SeriesStore(small_dataset), leaf_capacity=1000)
        big_leaves.build()
        assert (
            big_leaves.index_stats.total_nodes <= small_leaves.index_stats.total_nodes
        )

    def test_describe(self, index):
        info = index.describe()
        assert info["alphabet_size"] == 8
        assert info["binning"] == "equi-depth"
