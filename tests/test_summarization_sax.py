"""Tests for SAX / iSAX summarization and MINDIST."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import euclidean
from repro.core.series import znormalize
from repro.summarization.sax import IsaxSummarizer, SaxWord, sax_breakpoints


class TestBreakpoints:
    def test_cardinality_two_is_zero(self):
        breakpoints = sax_breakpoints(2)
        assert breakpoints.shape == (1,)
        assert abs(breakpoints[0]) < 1e-9

    def test_breakpoints_are_increasing(self):
        for cardinality in (2, 4, 8, 16, 64, 256):
            breakpoints = sax_breakpoints(cardinality)
            assert breakpoints.shape == (cardinality - 1,)
            assert np.all(np.diff(breakpoints) > 0)

    def test_symmetry(self):
        breakpoints = sax_breakpoints(8)
        assert np.allclose(breakpoints, -breakpoints[::-1], atol=1e-9)

    def test_rejects_cardinality_below_two(self):
        with pytest.raises(ValueError):
            sax_breakpoints(1)

    def test_quartiles_of_standard_normal(self):
        breakpoints = sax_breakpoints(4)
        assert np.allclose(breakpoints, [-0.6745, 0.0, 0.6745], atol=1e-3)


class TestSaxWord:
    def test_segment_region_edges(self):
        word = SaxWord(symbols=(0, 3), cardinalities=(4, 4))
        low0, high0 = word.segment_region(0)
        assert low0 == -np.inf
        low1, high1 = word.segment_region(1)
        assert high1 == np.inf

    def test_promote_doubles_cardinality(self):
        word = SaxWord(symbols=(1,), cardinalities=(2,))
        promoted = word.promote(0, paa_value=0.5)
        assert promoted.cardinalities == (4,)
        low, high = promoted.segment_region(0)
        assert low <= 0.5 <= high

    def test_prefix_symbol(self):
        word = SaxWord(symbols=(5,), cardinalities=(8,))
        assert word.prefix_symbol(0, 8) == 5
        assert word.prefix_symbol(0, 4) == 2
        assert word.prefix_symbol(0, 2) == 1
        with pytest.raises(ValueError):
            word.prefix_symbol(0, 16)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SaxWord(symbols=(1, 2), cardinalities=(4,))


class TestIsaxSummarizer:
    def test_symbol_range(self):
        summarizer = IsaxSummarizer(64, segments=8, cardinality=16)
        rng = np.random.default_rng(0)
        symbols = summarizer.transform_batch(znormalize(rng.standard_normal((20, 64))))
        assert symbols.min() >= 0
        assert symbols.max() < 16

    def test_rejects_non_power_of_two_cardinality(self):
        with pytest.raises(ValueError):
            IsaxSummarizer(64, segments=8, cardinality=10)

    def test_word_contains_its_own_paa(self):
        summarizer = IsaxSummarizer(64, segments=8, cardinality=64)
        rng = np.random.default_rng(1)
        series = znormalize(rng.standard_normal(64))
        paa = summarizer.paa.transform(series)
        word = summarizer.word(series)
        for j in range(8):
            low, high = word.segment_region(j)
            assert low <= paa[j] <= high

    def test_mindist_zero_for_own_word(self):
        summarizer = IsaxSummarizer(64, segments=8, cardinality=64)
        rng = np.random.default_rng(2)
        series = znormalize(rng.standard_normal(64))
        paa = summarizer.paa.transform(series)
        word = summarizer.word(series)
        assert summarizer.mindist_paa_to_word(paa, word) == pytest.approx(0.0)

    def test_lower_bound_batch_matches_scalar(self):
        summarizer = IsaxSummarizer(64, segments=16, cardinality=256)
        rng = np.random.default_rng(3)
        data = znormalize(rng.standard_normal((10, 64)))
        query = znormalize(rng.standard_normal(64))
        q_paa = summarizer.paa.transform(query)
        symbols = summarizer.transform_batch(data)
        batch = summarizer.lower_bound_batch(q_paa, symbols)
        scalar = [summarizer.lower_bound(q_paa, row) for row in symbols]
        assert np.allclose(batch, scalar, atol=1e-9)

    @given(
        hnp.arrays(np.float64, 64, elements=st.floats(-10, 10, allow_nan=False)),
        hnp.arrays(np.float64, 64, elements=st.floats(-10, 10, allow_nan=False)),
        st.sampled_from([4, 16, 64, 256]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_mindist_lower_bounds_euclidean(self, a, b, cardinality):
        """MINDIST(query PAA, candidate word) <= ED(query, candidate)."""
        a = znormalize(a).astype(np.float64)
        b = znormalize(b).astype(np.float64)
        summarizer = IsaxSummarizer(64, segments=16, cardinality=cardinality)
        q_paa = summarizer.paa.transform(a)
        word = summarizer.word(b)
        assert summarizer.mindist_paa_to_word(q_paa, word) <= euclidean(a, b) + 1e-6

    def test_mindist_symbols_lower_bounds(self):
        summarizer = IsaxSummarizer(64, segments=16, cardinality=256)
        rng = np.random.default_rng(5)
        a = znormalize(rng.standard_normal(64)).astype(np.float64)
        b = znormalize(rng.standard_normal(64)).astype(np.float64)
        q_sym = summarizer.transform(a)
        word = summarizer.word(b)
        assert summarizer.mindist_symbols(q_sym, word) <= euclidean(a, b) + 1e-6

    def test_coarser_word_gives_looser_bound(self):
        summarizer = IsaxSummarizer(64, segments=8, cardinality=256)
        rng = np.random.default_rng(6)
        a = znormalize(rng.standard_normal(64)).astype(np.float64)
        b = znormalize(rng.standard_normal(64)).astype(np.float64)
        q_paa = summarizer.paa.transform(a)
        fine = summarizer.word(b, tuple([256] * 8))
        coarse = summarizer.word(b, tuple([2] * 8))
        assert summarizer.mindist_paa_to_word(q_paa, coarse) <= (
            summarizer.mindist_paa_to_word(q_paa, fine) + 1e-9
        )
