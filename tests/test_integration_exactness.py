"""Cross-method integration tests: every method returns exact answers.

This is the library-level statement of the paper's core premise: all ten
methods are *exact* — they may differ wildly in cost, but never in the answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dataset, SeriesStore, create_method
from repro.core.queries import KnnQuery
from repro.workloads import random_walk_dataset, synth_rand_workload

METHOD_PARAMS = {
    "ads+": {"leaf_capacity": 25},
    "dstree": {"leaf_capacity": 25},
    "isax2+": {"leaf_capacity": 25},
    "m-tree": {"node_capacity": 8},
    "r*-tree": {"leaf_capacity": 20, "segments": 8},
    "sfa-trie": {"leaf_capacity": 50, "coefficients": 8},
    "va+file": {"coefficients": 8, "bits_per_dimension": 3},
    "stepwise": {},
    "ucr-suite": {},
    "mass": {},
}


@pytest.fixture(scope="module")
def built_methods(small_dataset):
    methods = {}
    for name, params in METHOD_PARAMS.items():
        store = SeriesStore(small_dataset)
        method = create_method(name, store, **params)
        method.build()
        methods[name] = method
    return methods


@pytest.mark.parametrize("method_name", sorted(METHOD_PARAMS))
def test_exact_1nn_matches_brute_force(
    method_name, built_methods, small_dataset, small_queries
, brute_force_knn):
    method = built_methods[method_name]
    for query in small_queries:
        _, truth = brute_force_knn(small_dataset, query.series, k=1)
        result = method.knn_exact(query)
        assert result.nearest.distance == pytest.approx(truth[0], abs=1e-4), method_name


@pytest.mark.parametrize("method_name", sorted(METHOD_PARAMS))
@pytest.mark.parametrize("k", [3, 7])
def test_exact_knn_matches_brute_force(
    method_name, k, built_methods, small_dataset, small_queries
, brute_force_knn):
    method = built_methods[method_name]
    query = small_queries[0]
    _, truth = brute_force_knn(small_dataset, query.series, k=k)
    result = method.knn_exact(KnnQuery(series=query.series, k=k))
    assert np.allclose(sorted(result.distances()), truth, atol=1e-4), method_name


@pytest.mark.parametrize("method_name", sorted(METHOD_PARAMS))
def test_all_methods_agree_on_nearest_distance(
    method_name, built_methods, small_dataset
):
    """Every method agrees with every other on the 1-NN distance of a fixed query."""
    rng = np.random.default_rng(1234)
    query = KnnQuery(series=(rng.standard_normal(small_dataset.length)))
    reference = built_methods["ucr-suite"].knn_exact(query).nearest.distance
    result = built_methods[method_name].knn_exact(query)
    assert result.nearest.distance == pytest.approx(reference, abs=1e-4)


@pytest.mark.parametrize(
    "method_name", ["ads+", "dstree", "isax2+", "sfa-trie", "va+file", "m-tree", "r*-tree"]
)
def test_approximate_answer_is_a_true_distance(
    method_name, built_methods, small_dataset, small_queries
):
    """ng-approximate answers have no guarantee, but must be real distances to real series."""
    method = built_methods[method_name]
    query = small_queries[0]
    result = method.knn_approximate(query)
    assert result.neighbors
    neighbor = result.nearest
    diff = small_dataset.values[neighbor.position].astype(np.float64) - np.asarray(
        query.series, dtype=np.float64
    )
    assert neighbor.distance == pytest.approx(float(np.sqrt(np.dot(diff, diff))), abs=1e-4)
    # And the approximate distance can never beat the exact one.
    exact = method.knn_exact(query).nearest.distance
    assert neighbor.distance >= exact - 1e-6


@given(st.integers(0, 100_000), st.sampled_from(["dstree", "isax2+", "va+file", "ads+"]))
@settings(max_examples=10, deadline=None)
def test_property_random_datasets_stay_exact(brute_force_knn, seed, method_name):
    """Exactness holds across randomly generated datasets and queries."""
    dataset = random_walk_dataset(120, 32, seed=seed)
    workload = synth_rand_workload(32, count=2, seed=seed + 1)
    store = SeriesStore(dataset)
    method = create_method(method_name, store, **METHOD_PARAMS[method_name])
    method.build()
    for query in workload:
        _, truth = brute_force_knn(dataset, query.series, k=1)
        result = method.knn_exact(query)
        assert result.nearest.distance == pytest.approx(truth[0], abs=1e-4)


def test_duplicate_series_dataset():
    """Datasets with exact duplicates must not break any index."""
    base = random_walk_dataset(50, 32, seed=5).values
    values = np.vstack([base, base])  # every series appears twice
    dataset = Dataset(values=values, name="duplicates")
    query = KnnQuery(series=base[7], k=2)
    for name in ("dstree", "isax2+", "va+file", "sfa-trie"):
        store = SeriesStore(dataset)
        method = create_method(name, store, **METHOD_PARAMS[name])
        method.build()
        result = method.knn_exact(query)
        assert result.distances()[0] == pytest.approx(0.0, abs=1e-5)
        assert result.distances()[1] == pytest.approx(0.0, abs=1e-5)


def test_constant_series_dataset():
    """All-identical datasets are a degenerate but legal input."""
    values = np.zeros((64, 16), dtype=np.float32)
    dataset = Dataset(values=values, name="constant")
    query = KnnQuery(series=np.zeros(16))
    for name in ("dstree", "isax2+", "ucr-suite", "va+file"):
        store = SeriesStore(dataset)
        method = create_method(name, store, **METHOD_PARAMS[name])
        method.build()
        result = method.knn_exact(query)
        assert result.nearest.distance == pytest.approx(0.0, abs=1e-6)
