"""Tests for APCA, EAPCA and the DSTree node synopsis bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import euclidean
from repro.summarization.apca import ApcaSummarizer, apca_transform
from repro.summarization.eapca import EapcaSummarizer, NodeSynopsis


class TestApca:
    def test_transform_reaches_segment_budget(self):
        series = np.concatenate([np.zeros(16), np.ones(16), np.full(16, 5.0)])
        segments = apca_transform(series, 3)
        assert len(segments) == 3
        assert segments[0].start == 0
        assert segments[-1].end == series.shape[0]

    def test_segments_cover_series_contiguously(self):
        rng = np.random.default_rng(0)
        series = rng.standard_normal(64)
        segments = apca_transform(series, 8)
        assert segments[0].start == 0
        for prev, nxt in zip(segments, segments[1:]):
            assert prev.end == nxt.start
        assert segments[-1].end == 64

    def test_segment_means_are_exact(self):
        rng = np.random.default_rng(1)
        series = rng.standard_normal(32)
        for segment in apca_transform(series, 4):
            assert segment.mean == pytest.approx(series[segment.start : segment.end].mean())

    def test_piecewise_constant_series_zero_error(self):
        series = np.concatenate([np.full(8, 1.0), np.full(8, -2.0)])
        segments = apca_transform(series, 2)
        reconstruction = np.concatenate(
            [np.full(s.width, s.mean) for s in segments]
        )
        assert np.allclose(reconstruction, series)

    def test_more_segments_than_points(self):
        series = np.arange(4.0)
        segments = apca_transform(series, 10)
        assert len(segments) == 4

    def test_invalid_segment_count(self):
        with pytest.raises(ValueError):
            apca_transform(np.arange(4.0), 0)

    def test_summarizer_reconstruct_roundtrip_shape(self):
        summarizer = ApcaSummarizer(32, 4)
        series = np.random.default_rng(2).standard_normal(32)
        summary = summarizer.transform(series)
        reconstruction = summarizer.reconstruct(summary)
        assert reconstruction.shape == (32,)

    def test_summarizer_lower_bound_is_valid(self):
        summarizer = ApcaSummarizer(32, 4)
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal(32), rng.standard_normal(32)
        bound = summarizer.lower_bound(summarizer.transform(a), summarizer.transform(b))
        assert bound <= euclidean(a, b) + 1e-6


class TestEapca:
    def test_transform_layout(self):
        summarizer = EapcaSummarizer(32, 4)
        series = np.random.default_rng(4).standard_normal(32)
        summary = summarizer.transform(series)
        assert summary.shape == (8,)
        # first segment's mean / std
        assert summary[0] == pytest.approx(series[:8].mean())
        assert summary[1] == pytest.approx(series[:8].std())

    def test_batch_shape(self):
        summarizer = EapcaSummarizer(32, 4)
        batch = np.random.default_rng(5).standard_normal((6, 32))
        assert summarizer.transform_batch(batch).shape == (6, 8)

    @given(
        hnp.arrays(np.float64, 32, elements=st.floats(-50, 50, allow_nan=False)),
        hnp.arrays(np.float64, 32, elements=st.floats(-50, 50, allow_nan=False)),
        st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_summary_lower_bounds_euclidean(self, a, b, segments):
        summarizer = EapcaSummarizer(32, segments)
        bound = summarizer.lower_bound(summarizer.transform(a), summarizer.transform(b))
        assert bound <= euclidean(a, b) + 1e-6


class TestNodeSynopsis:
    @pytest.fixture()
    def synopsis_and_data(self):
        rng = np.random.default_rng(6)
        data = rng.standard_normal((50, 32))
        summarizer = EapcaSummarizer(32, 4)
        synopsis = NodeSynopsis.from_series(data, summarizer.boundaries)
        return synopsis, data

    def test_lower_bound_holds_for_members(self, synopsis_and_data):
        synopsis, data = synopsis_and_data
        rng = np.random.default_rng(7)
        query = rng.standard_normal(32)
        bound = synopsis.lower_bound(query)
        for row in data:
            assert bound <= euclidean(query, row) + 1e-6

    def test_upper_bound_holds_for_members(self, synopsis_and_data):
        synopsis, data = synopsis_and_data
        rng = np.random.default_rng(8)
        query = rng.standard_normal(32)
        upper = synopsis.upper_bound(query)
        # The upper bound must dominate the distance to at least one member
        # (it dominates all of them by construction).
        distances = [euclidean(query, row) for row in data]
        assert upper >= min(distances) - 1e-6
        assert upper >= max(distances) - 1e-6

    def test_update_extends_ranges(self):
        rng = np.random.default_rng(9)
        base = rng.standard_normal((5, 32))
        summarizer = EapcaSummarizer(32, 4)
        synopsis = NodeSynopsis.from_series(base, summarizer.boundaries)
        outlier = np.full(32, 100.0)
        synopsis.update(outlier)
        assert synopsis.segments[0].mean_max == pytest.approx(100.0)

    def test_member_has_zero_lower_bound(self, synopsis_and_data):
        synopsis, data = synopsis_and_data
        assert synopsis.lower_bound(data[0]) == pytest.approx(0.0, abs=1e-9)

    @given(st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_property_bounds_bracket_true_distance(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((20, 16))
        query = rng.standard_normal(16)
        summarizer = EapcaSummarizer(16, 4)
        synopsis = NodeSynopsis.from_series(data, summarizer.boundaries)
        lower = synopsis.lower_bound(query)
        upper = synopsis.upper_bound(query)
        distances = [euclidean(query, row) for row in data]
        assert lower <= min(distances) + 1e-6
        assert upper >= max(distances) - 1e-6
