"""Tests for the evaluation framework: hardware models, measures, runner, scenarios."""

import pytest

from repro import SeriesStore, create_method
from repro.core.stats import IndexStats, QueryStats
from repro.evaluation import (
    HDD,
    IN_MEMORY,
    SSD,
    HardwareModel,
    average_pruning_ratio,
    best_method_per_scenario,
    easy_hard_indices,
    footprint_report,
    format_seconds,
    render_series,
    render_table,
    run_comparison,
    run_experiment,
    scenario_seconds,
    tlb_for_method,
)
from repro.evaluation.scenarios import SCENARIOS
from repro.workloads import random_walk_dataset, synth_rand_workload


@pytest.fixture(scope="module")
def tiny_experiment_inputs():
    dataset = random_walk_dataset(150, 32, seed=21, name="eval-tiny")
    workload = synth_rand_workload(32, count=6, seed=22)
    return dataset, workload


class TestHardwareModels:
    def test_hdd_sequential_faster_than_ssd(self):
        # The paper's HDD RAID has ~4x the sequential throughput of its SSD box.
        pages = 10_000
        assert HDD.io_seconds(pages, 0) < SSD.io_seconds(pages, 0)

    def test_ssd_random_faster_than_hdd(self):
        assert SSD.io_seconds(0, 1000) < HDD.io_seconds(0, 1000)

    def test_in_memory_is_cheapest(self):
        assert IN_MEMORY.io_seconds(1000, 1000) < SSD.io_seconds(1000, 1000)

    def test_price_fills_io_seconds(self):
        stats = QueryStats(sequential_pages=100, random_accesses=10)
        priced = HDD.price(stats)
        assert priced.io_seconds > 0
        assert priced is stats

    def test_custom_model(self):
        model = HardwareModel(name="x", sequential_mb_per_s=1.0, random_access_ms=1000.0)
        assert model.io_seconds(0, 1) == pytest.approx(1.0)


class TestMeasures:
    def test_average_pruning_ratio(self):
        stats = [
            QueryStats(series_examined=10, dataset_size=100),
            QueryStats(series_examined=50, dataset_size=100),
        ]
        assert average_pruning_ratio(stats) == pytest.approx(0.7)
        assert average_pruning_ratio([]) == 0.0

    def test_footprint_report(self):
        stats = IndexStats(
            method="dstree",
            total_nodes=10,
            leaf_nodes=6,
            memory_bytes=2048,
            disk_bytes=4096,
            leaf_fill_factors=[0.5, 0.7],
            leaf_depths=[2, 3],
        )
        report = footprint_report(stats)
        row = report.as_row()
        assert row["method"] == "dstree"
        assert row["nodes"] == 10
        assert report.leaf_depth_max == 3

    @pytest.mark.parametrize("method_name", ["isax2+", "dstree", "sfa-trie", "va+file", "ads+"])
    def test_tlb_between_zero_and_one(self, tiny_experiment_inputs, method_name):
        dataset, workload = tiny_experiment_inputs
        store = SeriesStore(dataset)
        params = {"leaf_capacity": 25} if method_name in ("isax2+", "dstree", "ads+") else {}
        method = create_method(method_name, store, **params)
        method.build()
        tlb = tlb_for_method(method, workload, max_leaves=10)
        assert 0.0 <= tlb <= 1.0 + 1e-6


class TestRunner:
    def test_run_experiment_collects_everything(self, tiny_experiment_inputs):
        dataset, workload = tiny_experiment_inputs
        result = run_experiment(
            dataset, workload, "dstree", platform=HDD, method_params={"leaf_capacity": 25}
        )
        assert result.method == "dstree"
        assert len(result.query_stats) == len(workload)
        assert result.build_seconds >= 0
        assert result.query_seconds > 0
        assert 0.0 <= result.pruning_ratio <= 1.0
        row = result.as_row()
        assert row["dataset"] == dataset.name

    def test_answers_are_exact(self, tiny_experiment_inputs):
        dataset, workload = tiny_experiment_inputs
        result = run_experiment(
            dataset, workload, "va+file", platform=SSD, method_params={"coefficients": 8}
        )
        scan = run_experiment(dataset, workload, "ucr-suite", platform=SSD)
        for a, b in zip(result.answers, scan.answers):
            assert a[0].distance == pytest.approx(b[0].distance, abs=1e-4)

    def test_extrapolated_total(self, tiny_experiment_inputs):
        dataset, workload = tiny_experiment_inputs
        result = run_experiment(
            dataset, workload, "ucr-suite", platform=HDD
        )
        total_100 = result.build_seconds + result.query_seconds
        total_10k = result.extrapolated_total_seconds(10_000)
        assert total_10k > total_100

    def test_run_comparison(self, tiny_experiment_inputs):
        dataset, workload = tiny_experiment_inputs
        results = run_comparison(
            dataset,
            workload,
            methods={"ucr-suite": {}, "dstree": {"leaf_capacity": 25}},
            platform=HDD,
        )
        assert set(results) == {"ucr-suite", "dstree"}


class TestScenarios:
    @pytest.fixture(scope="class")
    def comparison(self, tiny_experiment_inputs):
        dataset, workload = tiny_experiment_inputs
        return run_comparison(
            dataset,
            workload,
            methods={
                "ucr-suite": {},
                "dstree": {"leaf_capacity": 25},
                "va+file": {"coefficients": 8},
            },
            platform=HDD,
        )

    def test_scenario_values_positive(self, comparison):
        result = comparison["dstree"]
        for scenario in ("Idx", "Exact100", "Idx+Exact100", "Idx+Exact10K"):
            assert scenario_seconds(result, scenario) >= 0

    def test_idx_plus_queries_dominates_idx(self, comparison):
        result = comparison["dstree"]
        assert scenario_seconds(result, "Idx+Exact100") >= scenario_seconds(result, "Idx")

    def test_easy_hard_requires_subset(self, comparison):
        with pytest.raises(ValueError):
            scenario_seconds(comparison["dstree"], "Easy-20")

    def test_unknown_scenario(self, comparison):
        with pytest.raises(ValueError):
            scenario_seconds(comparison["dstree"], "Exact1M")

    def test_easy_hard_indices(self, comparison):
        subsets = easy_hard_indices(comparison, easiest=3, hardest=3)
        assert len(subsets["easy"]) == 3
        assert len(subsets["hard"]) == 3
        assert not (set(subsets["easy"]) & set(subsets["hard"])) or len(
            comparison["dstree"].query_stats
        ) < 6

    def test_best_method_per_scenario(self, comparison):
        winners = best_method_per_scenario(comparison)
        assert set(winners) == set(SCENARIOS)
        for winner in winners.values():
            assert winner in comparison

    def test_ucr_never_wins_indexing(self, comparison):
        # A sequential scan has (near) zero build cost, so it wins "Idx";
        # conversely an index should win the large-workload scenario.
        winners = best_method_per_scenario(comparison)
        assert winners["Idx"] in ("ucr-suite", "va+file", "ads+")


class TestReporting:
    def test_render_table(self):
        rows = [{"method": "dstree", "time": 1.234}, {"method": "ucr-suite", "time": 5.6}]
        text = render_table(rows, title="Results")
        assert "Results" in text
        assert "dstree" in text
        assert "ucr-suite" in text

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="Empty")

    def test_render_series(self):
        series = {"dstree": [(25, 1.0), (50, 2.0)], "ucr-suite": [(25, 3.0)]}
        text = render_series(series, title="Scalability", x_label="GB")
        assert "GB" in text
        assert "dstree" in text

    def test_format_seconds(self):
        assert format_seconds(0.5e-4).endswith("us")
        assert format_seconds(0.5).endswith("ms")
        assert format_seconds(5).endswith("s")
        assert format_seconds(600).endswith("min")
        assert format_seconds(10_000).endswith("h")
