"""Tests for VA+file, Stepwise, UCR Suite and MASS."""

import numpy as np
import pytest

from repro import SeriesStore
from repro.core.queries import KnnQuery
from repro.indexes.stepwise import StepwiseIndex
from repro.indexes.vafile import VaPlusFileIndex
from repro.sequential.mass import MassScan
from repro.sequential.ucr_suite import UcrSuiteScan


class TestVaPlusFile:
    @pytest.fixture()
    def index(self, small_dataset):
        store = SeriesStore(small_dataset)
        idx = VaPlusFileIndex(store, coefficients=8, bits_per_dimension=3, sample_size=200)
        idx.build()
        return idx

    def test_exact_matches_brute_force(self, index, small_dataset, small_queries, brute_force_knn):
        for query in small_queries:
            _, truth_dist = brute_force_knn(small_dataset, query.series, k=1)
            result = index.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_exact_knn5(self, index, small_dataset, small_queries, brute_force_knn):
        query = small_queries[0]
        _, truth_dist = brute_force_knn(small_dataset, query.series, k=5)
        result = index.knn_exact(KnnQuery(series=query.series, k=5))
        assert np.allclose(result.distances(), truth_dist, atol=1e-4)

    def test_pruning_with_refinement_order(self, index, small_dataset):
        result = index.knn_exact(KnnQuery(series=small_dataset[0]))
        assert result.nearest.position == 0
        # Self-queries stop refinement quickly: pruning must be substantial.
        assert result.stats.pruning_ratio > 0.5

    def test_lower_bounds_computed_for_every_series(self, index, small_queries):
        result = index.knn_exact(small_queries[0])
        assert result.stats.lower_bounds_computed >= index.store.count

    def test_approximate_search(self, index, small_queries):
        result = index.knn_approximate(small_queries[0])
        assert result.neighbors

    def test_footprint_is_approximation_file_only(self, index):
        stats = index.index_stats
        assert stats.total_nodes == 0
        assert stats.disk_bytes > 0
        assert stats.disk_bytes < index.store.count * index.store.series_bytes


class TestStepwise:
    @pytest.fixture()
    def index(self, small_dataset):
        store = SeriesStore(small_dataset)
        idx = StepwiseIndex(store)
        idx.build()
        return idx

    def test_exact_matches_brute_force(self, index, small_dataset, small_queries, brute_force_knn):
        for query in small_queries:
            _, truth_dist = brute_force_knn(small_dataset, query.series, k=1)
            result = index.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_exact_knn5(self, index, small_dataset, small_queries, brute_force_knn):
        query = small_queries[2]
        _, truth_dist = brute_force_knn(small_dataset, query.series, k=5)
        result = index.knn_exact(KnnQuery(series=query.series, k=5))
        assert np.allclose(result.distances(), truth_dist, atol=1e-4)

    def test_level_filtering_prunes(self, index, small_dataset):
        result = index.knn_exact(KnnQuery(series=small_dataset[4]))
        assert result.nearest.position == 4
        assert result.stats.pruning_ratio > 0.5

    def test_no_approximate_support(self, index, small_queries):
        with pytest.raises(NotImplementedError):
            index.knn_approximate(small_queries[0])

    def test_multi_level_step(self, small_dataset, small_queries, brute_force_knn):
        store = SeriesStore(small_dataset)
        idx = StepwiseIndex(store, levels_per_step=2)
        idx.build()
        _, truth_dist = brute_force_knn(small_dataset, small_queries[0].series, k=1)
        result = idx.knn_exact(small_queries[0])
        assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_rejects_bad_levels(self, small_dataset):
        with pytest.raises(ValueError):
            StepwiseIndex(SeriesStore(small_dataset), levels_per_step=0)


class TestUcrSuite:
    @pytest.fixture()
    def scan(self, small_dataset):
        store = SeriesStore(small_dataset)
        method = UcrSuiteScan(store)
        method.build()
        return method

    def test_exact_matches_brute_force(self, scan, small_dataset, small_queries, brute_force_knn):
        for query in small_queries:
            _, truth_dist = brute_force_knn(small_dataset, query.series, k=1)
            result = scan.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_zero_pruning(self, scan, small_queries):
        result = scan.knn_exact(small_queries[0])
        assert result.stats.pruning_ratio == pytest.approx(0.0)

    def test_sequential_access_pattern(self, scan, small_queries):
        result = scan.knn_exact(small_queries[0])
        assert result.stats.random_accesses == 1  # one positioning seek
        assert result.stats.sequential_pages == scan.store.total_pages

    def test_without_early_abandoning(self, small_dataset, small_queries, brute_force_knn):
        store = SeriesStore(small_dataset)
        scan = UcrSuiteScan(store, use_early_abandoning=False)
        scan.build()
        _, truth_dist = brute_force_knn(small_dataset, small_queries[0].series, k=1)
        result = scan.knn_exact(small_queries[0])
        assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_knn10(self, scan, small_dataset, small_queries, brute_force_knn):
        query = small_queries[3]
        _, truth_dist = brute_force_knn(small_dataset, query.series, k=10)
        result = scan.knn_exact(KnnQuery(series=query.series, k=10))
        assert np.allclose(result.distances(), truth_dist, atol=1e-4)

    def test_is_not_an_index(self, scan):
        assert not scan.is_index
        with pytest.raises(NotImplementedError):
            scan.knn_approximate(KnnQuery(series=np.zeros(scan.store.length)))


class TestMass:
    @pytest.fixture()
    def scan(self, small_dataset):
        store = SeriesStore(small_dataset)
        method = MassScan(store, block_size=64)
        method.build()
        return method

    def test_exact_matches_brute_force(self, scan, small_dataset, small_queries, brute_force_knn):
        for query in small_queries:
            _, truth_dist = brute_force_knn(small_dataset, query.series, k=1)
            result = scan.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_knn5(self, scan, small_dataset, small_queries, brute_force_knn):
        query = small_queries[1]
        _, truth_dist = brute_force_knn(small_dataset, query.series, k=5)
        result = scan.knn_exact(KnnQuery(series=query.series, k=5))
        assert np.allclose(result.distances(), truth_dist, atol=1e-4)

    def test_self_query(self, scan, small_dataset):
        result = scan.knn_exact(KnnQuery(series=small_dataset[17]))
        assert result.nearest.position == 17
        assert result.nearest.distance == pytest.approx(0.0, abs=1e-3)

    def test_zero_pruning(self, scan, small_queries):
        result = scan.knn_exact(small_queries[0])
        assert result.stats.pruning_ratio == pytest.approx(0.0)
