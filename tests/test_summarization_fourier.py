"""Tests for DFT and SFA summarizations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import euclidean
from repro.summarization.dft import DftSummarizer, dft_coefficients
from repro.summarization.sfa import SfaSummarizer


class TestDft:
    def test_full_coefficients_preserve_distance(self):
        """With all coefficients retained, Parseval makes the bound exact."""
        rng = np.random.default_rng(0)
        n = 32
        a, b = rng.standard_normal(n), rng.standard_normal(n)
        summarizer = DftSummarizer(n, coefficients=n + 2)
        bound = summarizer.lower_bound(summarizer.transform(a), summarizer.transform(b))
        assert bound == pytest.approx(euclidean(a, b), rel=1e-6)

    def test_dc_coefficient_is_scaled_mean(self):
        series = np.arange(16.0)
        coeffs = dft_coefficients(series, 2)
        assert coeffs[0] == pytest.approx(series.sum() / np.sqrt(16))
        assert coeffs[1] == pytest.approx(0.0, abs=1e-9)

    def test_batch_shape(self):
        batch = np.random.default_rng(1).standard_normal((5, 64))
        coeffs = dft_coefficients(batch, 16)
        assert coeffs.shape == (5, 16)

    def test_lower_bound_batch_matches_scalar(self):
        summarizer = DftSummarizer(64, 16)
        rng = np.random.default_rng(2)
        q = summarizer.transform(rng.standard_normal(64))
        cands = summarizer.transform_batch(rng.standard_normal((6, 64)))
        batch = summarizer.lower_bound_batch(q, cands)
        scalar = [summarizer.lower_bound(q, c) for c in cands]
        assert np.allclose(batch, scalar)

    @given(
        hnp.arrays(np.float64, 64, elements=st.floats(-100, 100, allow_nan=False)),
        hnp.arrays(np.float64, 64, elements=st.floats(-100, 100, allow_nan=False)),
        st.sampled_from([2, 4, 8, 16, 32]),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_lower_bounds_euclidean(self, a, b, coefficients):
        summarizer = DftSummarizer(64, coefficients)
        bound = summarizer.lower_bound(summarizer.transform(a), summarizer.transform(b))
        assert bound <= euclidean(a, b) + 1e-6

    def test_more_coefficients_tighter(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal(64), rng.standard_normal(64)
        bounds = []
        for coefficients in (2, 4, 8, 16, 32):
            summarizer = DftSummarizer(64, coefficients)
            bounds.append(
                summarizer.lower_bound(summarizer.transform(a), summarizer.transform(b))
            )
        assert all(b2 >= b1 - 1e-9 for b1, b2 in zip(bounds, bounds[1:]))

    def test_mindist_to_rectangle(self):
        summarizer = DftSummarizer(64, 8)
        rng = np.random.default_rng(4)
        data = summarizer.transform_batch(rng.standard_normal((10, 64)))
        lower, upper = data.min(axis=0), data.max(axis=0)
        q = summarizer.transform(rng.standard_normal(64))
        mindist = summarizer.mindist_to_rectangle(q, lower, upper)
        for row in data:
            assert mindist <= summarizer.lower_bound(q, row) + 1e-9


class TestSfa:
    @pytest.fixture()
    def fitted(self):
        rng = np.random.default_rng(5)
        sample = rng.standard_normal((256, 64))
        summarizer = SfaSummarizer(64, coefficients=8, alphabet_size=8)
        return summarizer.fit(sample), sample

    def test_requires_fit(self):
        summarizer = SfaSummarizer(64, coefficients=8)
        with pytest.raises(RuntimeError):
            summarizer.transform(np.zeros(64))

    def test_symbols_in_range(self, fitted):
        summarizer, sample = fitted
        words = summarizer.transform_batch(sample)
        assert words.min() >= 0
        assert words.max() < summarizer.alphabet_size

    def test_equi_depth_balanced(self, fitted):
        summarizer, sample = fitted
        words = summarizer.transform_batch(sample)
        # Equi-depth binning spreads the sample roughly uniformly over symbols.
        counts = np.bincount(words[:, 2], minlength=summarizer.alphabet_size)
        assert counts.min() > 0

    def test_equi_width_binning(self):
        rng = np.random.default_rng(6)
        sample = rng.standard_normal((128, 64))
        summarizer = SfaSummarizer(64, coefficients=8, binning="equi-width").fit(sample)
        words = summarizer.transform_batch(sample)
        assert words.max() < summarizer.alphabet_size

    def test_invalid_binning(self):
        with pytest.raises(ValueError):
            SfaSummarizer(64, binning="quantile")

    def test_invalid_alphabet(self):
        with pytest.raises(ValueError):
            SfaSummarizer(64, alphabet_size=1)

    def test_cell_bounds_cover_own_coefficient(self, fitted):
        summarizer, sample = fitted
        coeffs = summarizer.dft_of(sample[0])
        word = summarizer.transform(sample[0])
        for j in range(summarizer.coefficients):
            low, high = summarizer.cell_bounds(int(word[j]), j)
            assert low <= coeffs[j] <= high or np.isclose(coeffs[j], high)

    def test_lower_bound_batch_matches_scalar(self, fitted):
        summarizer, sample = fitted
        rng = np.random.default_rng(7)
        query = rng.standard_normal(64)
        q_dft = summarizer.dft_of(query)
        words = summarizer.transform_batch(sample[:12])
        batch = summarizer.lower_bound_batch(q_dft, words)
        scalar = [summarizer.lower_bound(q_dft, w) for w in words]
        assert np.allclose(batch, scalar, atol=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_lower_bounds_euclidean(self, seed):
        rng = np.random.default_rng(seed)
        sample = rng.standard_normal((64, 32))
        summarizer = SfaSummarizer(32, coefficients=8, alphabet_size=8).fit(sample)
        a, b = rng.standard_normal(32), rng.standard_normal(32)
        bound = summarizer.lower_bound(summarizer.dft_of(a), summarizer.transform(b))
        assert bound <= euclidean(a, b) + 1e-6
