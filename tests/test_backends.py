"""Storage-backend layer tests: memory/mmap equivalence, files, persistence.

The contract under test is the heart of the out-of-core refactor: the mmap
backend must be indistinguishable from the in-memory backend — byte-identical
answers and identical access counters for every registered method — while
never materializing the collection.
"""

import pickle

import numpy as np
import pytest

from repro import (
    Dataset,
    SeriesFileWriter,
    SeriesStore,
    SimilaritySearchEngine,
    create_method,
    load_method,
    save_method,
    write_series_file,
)
from repro.core.backends import MmapBackend, resolve_backend
from repro.core.persistence import dataset_fingerprint
from repro.core.queries import KnnQuery, RangeQuery
from repro.evaluation.hardware import measure_platform
from repro.workloads import random_walk_dataset, random_walk_to_file

METHOD_PARAMS = {
    "ads+": {"leaf_capacity": 25},
    "flat": {},
    "dstree": {"leaf_capacity": 25},
    "isax2+": {"leaf_capacity": 25},
    "m-tree": {"node_capacity": 8},
    "r*-tree": {"leaf_capacity": 20, "segments": 8},
    "sfa-trie": {"leaf_capacity": 50, "coefficients": 8},
    "va+file": {"coefficients": 8, "bits_per_dimension": 3},
    "stepwise": {},
    "ucr-suite": {},
    "mass": {},
}

COUNT, LENGTH = 240, 32


@pytest.fixture(scope="module")
def memory_dataset() -> Dataset:
    return random_walk_dataset(COUNT, LENGTH, seed=42, name="backend-eq")


@pytest.fixture(scope="module")
def mmap_dataset(memory_dataset, tmp_path_factory) -> Dataset:
    path = tmp_path_factory.mktemp("backends") / "backend-eq.npy"
    dataset = memory_dataset.to_mmap(path)
    assert dataset.backend is not None and dataset.backend.kind == "mmap"
    return dataset


@pytest.fixture(scope="module")
def compressed_dataset(memory_dataset, tmp_path_factory) -> Dataset:
    """The module dataset quantized to int16 .rcz (block smaller than count
    so multi-block reads, partial tail blocks, and slicing are exercised)."""
    path = tmp_path_factory.mktemp("backends-rcz") / "backend-eq.rcz"
    dataset = memory_dataset.to_compressed(path, qdtype="int16", block_rows=64)
    assert dataset.backend is not None and dataset.backend.kind == "compressed"
    return dataset


@pytest.fixture(scope="module")
def dequantized_dataset(compressed_dataset) -> Dataset:
    """The compressed collection's canonical float32 values, held in RAM.

    Quantization is lossy relative to the *original* floats, so "byte-identical
    to the memory backend" means: against a memory backend serving the same
    dequantized values the compressed backend stores.
    """
    return Dataset(
        values=np.array(compressed_dataset.values), name="backend-eq-dequantized"
    )


@pytest.fixture(scope="module")
def queries(memory_dataset):
    rng = np.random.default_rng(7)
    picks = [5, COUNT // 2, COUNT - 1]
    qs = [np.asarray(memory_dataset.values[i], dtype=np.float64) for i in picks]
    qs.append(np.cumsum(rng.standard_normal(LENGTH)))
    return qs


class TestStreamedWriter:
    def test_chunked_writes_match_one_shot(self, tmp_path):
        data = random_walk_dataset(100, 16, seed=3).values
        a = tmp_path / "oneshot.npy"
        b = tmp_path / "chunked.npy"
        write_series_file(a, [data])
        write_series_file(b, [data[:13], data[13:57], data[57:]])
        assert a.read_bytes() == b.read_bytes()

    def test_npy_readable_by_numpy(self, tmp_path):
        data = random_walk_dataset(37, 8, seed=4).values
        path = tmp_path / "data.npy"
        count, length = write_series_file(path, [data[:20], data[20:]])
        assert (count, length) == (37, 8)
        np.testing.assert_array_equal(np.load(path), data)

    def test_raw_f32_roundtrip(self, tmp_path):
        data = random_walk_dataset(25, 12, seed=5).values
        path = tmp_path / "data.f32"
        write_series_file(path, [data])
        assert path.stat().st_size == data.nbytes  # headerless
        reopened = Dataset.from_file(path, length=12)
        np.testing.assert_array_equal(np.asarray(reopened.values), data)

    def test_single_series_chunks_are_promoted(self, tmp_path):
        path = tmp_path / "rows.npy"
        with SeriesFileWriter(path, length=4) as writer:
            writer.append(np.arange(4, dtype=np.float32))
            writer.append(np.arange(4, 8, dtype=np.float32))
        assert np.load(path).shape == (2, 4)

    def test_rejects_mismatched_chunk_length(self, tmp_path):
        with SeriesFileWriter(tmp_path / "bad.npy", length=8) as writer:
            with pytest.raises(ValueError, match="length"):
                writer.append(np.zeros((2, 5), dtype=np.float32))
            writer.append(np.zeros((1, 8), dtype=np.float32))

    def test_append_after_close_fails(self, tmp_path):
        writer = SeriesFileWriter(tmp_path / "closed.npy", length=4)
        writer.append(np.zeros((1, 4), dtype=np.float32))
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append(np.zeros((1, 4), dtype=np.float32))

    def test_zero_row_npy_round_trips(self, tmp_path):
        path = tmp_path / "empty.npy"
        with SeriesFileWriter(path, length=4) as writer:
            pass
        assert np.load(path).shape == (0, 4)
        ds = Dataset.from_file(path)
        assert (ds.count, ds.length) == (0, 4)

    def test_zero_row_raw_round_trips(self, tmp_path):
        path = tmp_path / "empty.f32"
        count, length = write_series_file(path, [], length=8)
        assert (count, length) == (0, 8)
        ds = Dataset.from_file(path, length=8)
        assert (ds.count, ds.length) == (0, 8)
        assert SeriesStore(ds).scan().shape == (0, 8)

    def test_empty_final_chunk_is_ignored(self, tmp_path):
        path = tmp_path / "walks.npy"
        with SeriesFileWriter(path, length=4) as writer:
            writer.append(np.zeros((3, 4), dtype=np.float32))
            writer.append(np.empty((0, 4), dtype=np.float32))
            writer.append(np.array([], dtype=np.float32))
        assert writer.count == 3
        assert np.load(path).shape == (3, 4)

    def test_unknown_length_empty_npy_still_fails(self, tmp_path):
        writer = SeriesFileWriter(tmp_path / "empty.npy")
        with pytest.raises(ValueError, match="length"):
            writer.close()

    def test_streamed_generator_is_chunk_invariant(self, tmp_path):
        dense = random_walk_dataset(90, 16, seed=9).values
        streamed = random_walk_to_file(
            tmp_path / "walks.npy", 90, 16, seed=9, chunk_size=17
        )
        np.testing.assert_array_equal(np.asarray(streamed.values), dense)


class TestMmapBackend:
    def test_values_are_lazy_and_read_only(self, mmap_dataset):
        values = mmap_dataset.backend.values
        assert isinstance(values.base, np.memmap) or isinstance(values, np.memmap)
        assert not values.flags.writeable

    def test_requires_length_for_raw(self, tmp_path):
        path = tmp_path / "raw.f32"
        path.write_bytes(np.zeros((4, 8), dtype=np.float32).tobytes())
        with pytest.raises(ValueError, match="length"):
            MmapBackend(path)
        assert MmapBackend(path, length=8).count == 4

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MmapBackend(tmp_path / "nope.npy")

    def test_rejects_wrong_dtype(self, tmp_path):
        path = tmp_path / "f64.npy"
        np.save(path, np.zeros((4, 8), dtype=np.float64))
        with pytest.raises(ValueError, match="dtype"):
            MmapBackend(path)

    def test_rejects_truncated_raw(self, tmp_path):
        path = tmp_path / "odd.f32"
        path.write_bytes(b"\x00" * 100)  # not a multiple of 8 * 4 bytes
        with pytest.raises(ValueError, match="multiple"):
            MmapBackend(path, length=8)

    def test_slice_is_zero_copy_and_picklable(self, mmap_dataset, memory_dataset):
        backend = mmap_dataset.backend.slice(50, 90)
        np.testing.assert_array_equal(
            np.asarray(backend.values), memory_dataset.values[50:90]
        )
        blob = pickle.dumps(backend)
        assert len(blob) < 1024  # a path + row range, never the rows themselves
        reopened = pickle.loads(blob)
        np.testing.assert_array_equal(
            np.asarray(reopened.values), memory_dataset.values[50:90]
        )

    def test_nested_slice_offsets_compose(self, mmap_dataset, memory_dataset):
        inner = mmap_dataset.backend.slice(40, 200).slice(10, 30)
        np.testing.assert_array_equal(
            np.asarray(inner.values), memory_dataset.values[50:70]
        )

    def test_fork_reopens_a_private_mapping(self, mmap_dataset):
        fork = mmap_dataset.backend.fork()
        assert fork is not mmap_dataset.backend
        np.testing.assert_array_equal(
            np.asarray(fork.values), np.asarray(mmap_dataset.backend.values)
        )

    def test_release_is_safe_and_rereadable(self, mmap_dataset, memory_dataset):
        backend = mmap_dataset.backend.fork()
        first = np.array(backend.read_rows(0, 64))
        backend.release(0, 64)
        np.testing.assert_array_equal(np.array(backend.read_rows(0, 64)), first)
        np.testing.assert_array_equal(first, memory_dataset.values[:64])

    def test_file_backed_dataset_pickles_by_path(self, mmap_dataset, memory_dataset):
        blob = pickle.dumps(mmap_dataset)
        assert len(blob) < 4096
        reopened = pickle.loads(blob)
        np.testing.assert_array_equal(np.asarray(reopened.values), memory_dataset.values)

    def test_resolve_backend_choices(self, mmap_dataset, memory_dataset):
        assert resolve_backend(memory_dataset).kind == "memory"
        assert resolve_backend(mmap_dataset).kind == "mmap"
        assert resolve_backend(mmap_dataset, "memory").kind == "memory"
        with pytest.raises(ValueError, match="file-backed"):
            resolve_backend(memory_dataset, "mmap")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend(memory_dataset, "cloud")


class TestBackendEquivalence:
    """Every method answers byte-identically with identical counters."""

    @pytest.mark.parametrize("method_name", sorted(METHOD_PARAMS))
    def test_knn_answers_and_counters_match(
        self, method_name, memory_dataset, mmap_dataset, queries
    ):
        mem = create_method(
            method_name, SeriesStore(memory_dataset), **METHOD_PARAMS[method_name]
        )
        mm = create_method(
            method_name, SeriesStore(mmap_dataset), **METHOD_PARAMS[method_name]
        )
        mem.build()
        mm.build()
        assert mem.store.counter == mm.store.counter  # build accounting
        for q in queries:
            a = mem.knn_exact(KnnQuery(series=q, k=5))
            b = mm.knn_exact(KnnQuery(series=q, k=5))
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()  # byte-identical
        assert mem.store.counter == mm.store.counter  # query accounting

    @pytest.mark.parametrize("method_name", sorted(METHOD_PARAMS))
    def test_sharded_answers_and_counters_match(
        self, method_name, memory_dataset, mmap_dataset, queries
    ):
        # workers=1 runs the identical fan-out sequentially, which keeps the
        # counters deterministic (with concurrent workers the cross-shard
        # shared-radius tightening order — and therefore the pruning work —
        # varies run to run, independent of the backend).
        params = dict(METHOD_PARAMS[method_name], shards=3, workers=1)
        mem = create_method(f"sharded:{method_name}", SeriesStore(memory_dataset), **params)
        mm = create_method(f"sharded:{method_name}", SeriesStore(mmap_dataset), **params)
        mem.build()
        mm.build()
        assert mem.store.counter == mm.store.counter
        for q in queries[:2]:
            a = mem.knn_exact(KnnQuery(series=q, k=5))
            b = mm.knn_exact(KnnQuery(series=q, k=5))
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()
        assert mem.store.counter == mm.store.counter

    @pytest.mark.parametrize("method_name", ["flat", "dstree"])
    def test_sharded_concurrent_workers_on_mmap(
        self, method_name, memory_dataset, mmap_dataset, queries
    ):
        """Answers stay byte-identical across backends under real concurrency."""
        params = dict(METHOD_PARAMS[method_name], shards=3, workers=3)
        mem = create_method(f"sharded:{method_name}", SeriesStore(memory_dataset), **params)
        mm = create_method(f"sharded:{method_name}", SeriesStore(mmap_dataset), **params)
        mem.build()
        mm.build()
        try:
            stacked = np.vstack(queries)
            for a, b in zip(
                mem.knn_exact_batch(stacked, k=5), mm.knn_exact_batch(stacked, k=5)
            ):
                assert a.positions() == b.positions()
                assert a.distances() == b.distances()
        finally:
            mem.close()
            mm.close()

    @pytest.mark.parametrize("method_name", ["flat", "mass", "isax2+"])
    def test_batch_answers_match(
        self, method_name, memory_dataset, mmap_dataset, queries
    ):
        mem = create_method(
            method_name, SeriesStore(memory_dataset), **METHOD_PARAMS[method_name]
        )
        mm = create_method(
            method_name, SeriesStore(mmap_dataset), **METHOD_PARAMS[method_name]
        )
        mem.build()
        mm.build()
        stacked = np.vstack(queries)
        for a, b in zip(
            mem.knn_exact_batch(stacked, k=4), mm.knn_exact_batch(stacked, k=4)
        ):
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()
        assert mem.store.counter == mm.store.counter

    @pytest.mark.parametrize("method_name", ["flat", "va+file", "dstree"])
    def test_range_answers_match(
        self, method_name, memory_dataset, mmap_dataset, queries
    ):
        mem = create_method(
            method_name, SeriesStore(memory_dataset), **METHOD_PARAMS[method_name]
        )
        mm = create_method(
            method_name, SeriesStore(mmap_dataset), **METHOD_PARAMS[method_name]
        )
        mem.build()
        mm.build()
        query = RangeQuery(series=queries[0], radius=4.0)
        a, b = mem.range_exact(query), mm.range_exact(query)
        assert a.positions() == b.positions()
        assert a.distances() == b.distances()
        assert mem.store.counter == mm.store.counter

    def test_engine_backend_parameter(self, mmap_dataset, memory_dataset):
        out_of_core = SimilaritySearchEngine(mmap_dataset)
        in_ram = SimilaritySearchEngine(mmap_dataset, backend="memory")
        assert out_of_core.store.backend.kind == "mmap"
        assert in_ram.store.backend.kind == "memory"
        out_of_core.build("flat")
        in_ram.build("flat")
        q = memory_dataset.values[3]
        a = out_of_core.search(q, k=3)
        b = in_ram.search(q, k=3)
        assert a.positions() == b.positions()
        assert a.distances() == b.distances()


class TestCompressedEquivalence:
    """Every method answers byte-identically on the compressed backend.

    The reference is a memory backend over the *dequantized* values (see the
    ``dequantized_dataset`` fixture): distances and positions must match
    exactly — including for flat/mass, whose compressed path runs the
    two-phase pruned scan instead of the plain pass.  Access counters are not
    compared: the pruned scan is a different algorithm with different
    (smaller) I/O by design.
    """

    @pytest.mark.parametrize("method_name", sorted(METHOD_PARAMS))
    def test_knn_answers_match_memory(
        self, method_name, dequantized_dataset, compressed_dataset, queries
    ):
        mem = create_method(
            method_name, SeriesStore(dequantized_dataset), **METHOD_PARAMS[method_name]
        )
        comp = create_method(
            method_name, SeriesStore(compressed_dataset), **METHOD_PARAMS[method_name]
        )
        mem.build()
        comp.build()
        for q in queries:
            a = mem.knn_exact(KnnQuery(series=q, k=5))
            b = comp.knn_exact(KnnQuery(series=q, k=5))
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()  # byte-identical

    @pytest.mark.parametrize("method_name", sorted(METHOD_PARAMS))
    def test_sharded_answers_match_memory(
        self, method_name, dequantized_dataset, compressed_dataset, queries
    ):
        params = dict(METHOD_PARAMS[method_name], shards=3, workers=1)
        mem = create_method(
            f"sharded:{method_name}", SeriesStore(dequantized_dataset), **params
        )
        comp = create_method(
            f"sharded:{method_name}", SeriesStore(compressed_dataset), **params
        )
        mem.build()
        comp.build()
        for q in queries[:2]:
            a = mem.knn_exact(KnnQuery(series=q, k=5))
            b = comp.knn_exact(KnnQuery(series=q, k=5))
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()

    @pytest.mark.parametrize("method_name", ["flat", "mass", "isax2+"])
    def test_batch_answers_match_memory(
        self, method_name, dequantized_dataset, compressed_dataset, queries
    ):
        mem = create_method(
            method_name, SeriesStore(dequantized_dataset), **METHOD_PARAMS[method_name]
        )
        comp = create_method(
            method_name, SeriesStore(compressed_dataset), **METHOD_PARAMS[method_name]
        )
        mem.build()
        comp.build()
        stacked = np.vstack(queries)
        for a, b in zip(
            mem.knn_exact_batch(stacked, k=4), comp.knn_exact_batch(stacked, k=4)
        ):
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()

    @pytest.mark.parametrize("method_name", ["flat", "va+file"])
    def test_range_answers_match_memory(
        self, method_name, dequantized_dataset, compressed_dataset, queries
    ):
        mem = create_method(
            method_name, SeriesStore(dequantized_dataset), **METHOD_PARAMS[method_name]
        )
        comp = create_method(
            method_name, SeriesStore(compressed_dataset), **METHOD_PARAMS[method_name]
        )
        mem.build()
        comp.build()
        query = RangeQuery(series=queries[0], radius=4.0)
        a, b = mem.range_exact(query), comp.range_exact(query)
        assert a.positions() == b.positions()
        assert a.distances() == b.distances()

    def test_int8_is_lossy_vs_original_but_exact_over_stored(
        self, memory_dataset, tmp_path, queries
    ):
        """int8 quantization visibly perturbs the values (documented lossiness)
        yet answers over the *stored* collection stay exact."""
        path = tmp_path / "int8.rcz"
        compressed = memory_dataset.to_compressed(path, qdtype="int8", block_rows=64)
        stored = np.asarray(compressed.values)
        error = np.max(np.abs(stored - memory_dataset.values))
        assert 1e-4 < error < 0.1  # lossy, but bounded by the int8 step
        reference = Dataset(values=np.array(stored), name="int8-dequantized")
        mem = create_method("flat", SeriesStore(reference))
        comp = create_method("flat", SeriesStore(compressed))
        mem.build()
        comp.build()
        for q in queries:
            a = mem.knn_exact(KnnQuery(series=q, k=5))
            b = comp.knn_exact(KnnQuery(series=q, k=5))
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()

    def test_resolve_backend_compressed(self, compressed_dataset, memory_dataset):
        assert resolve_backend(compressed_dataset).kind == "compressed"
        assert resolve_backend(compressed_dataset, "compressed").kind == "compressed"
        assert resolve_backend(compressed_dataset, "memory").kind == "memory"
        with pytest.raises(ValueError, match="to_compressed"):
            resolve_backend(memory_dataset, "compressed")

    def test_engine_serves_compressed(self, compressed_dataset, dequantized_dataset):
        engine = SimilaritySearchEngine(compressed_dataset)
        assert engine.store.backend.kind == "compressed"
        engine.build("flat")
        reference = SimilaritySearchEngine(dequantized_dataset)
        reference.build("flat")
        q = dequantized_dataset.values[7]
        a, b = engine.search(q, k=3), reference.search(q, k=3)
        assert a.positions() == b.positions()
        assert a.distances() == b.distances()


class TestCompressedPersistence:
    """Index round-trips over .rcz-backed stores (dataset-less reload)."""

    def test_roundtrip_reattaches_compressed_store(
        self, tmp_path, compressed_dataset, queries
    ):
        method = create_method(
            "isax2+", SeriesStore(compressed_dataset), leaf_capacity=25
        )
        method.build()
        path = tmp_path / "isax-rcz.idx"
        envelope = save_method(method, path)
        assert envelope.storage["kind"] == "compressed"
        assert envelope.storage["source_path"].endswith(".rcz")

        loaded = load_method(path)  # no dataset: the .rcz path reopens
        assert loaded.store.backend.kind == "compressed"
        assert loaded.store.supports_quantized_scan
        q = KnnQuery(series=queries[0], k=3)
        a, b = method.knn_exact(q), loaded.knn_exact(q)
        assert a.positions() == b.positions()
        assert a.distances() == b.distances()

    def test_sliced_compressed_roundtrip_reopens_the_row_range(
        self, tmp_path, compressed_dataset, queries
    ):
        sub = SeriesStore(compressed_dataset).slice(0, 120)
        method = create_method("flat", sub)
        method.build()
        path = tmp_path / "sliced-rcz.idx"
        envelope = save_method(method, path)
        assert (envelope.storage["start"], envelope.storage["stop"]) == (0, 120)
        loaded = load_method(path)
        assert loaded.store.count == 120
        assert loaded.store.backend.kind == "compressed"
        q = KnnQuery(series=queries[0], k=3)
        a, b = method.knn_exact(q), loaded.knn_exact(q)
        assert a.positions() == b.positions()
        assert a.distances() == b.distances()

    def test_fingerprint_identical_compressed_vs_dequantized(
        self, compressed_dataset, dequantized_dataset
    ):
        assert dataset_fingerprint(compressed_dataset) == dataset_fingerprint(
            dequantized_dataset
        )


class TestPersistenceWithBackends:
    def test_roundtrip_reattaches_mmap_store(self, tmp_path, mmap_dataset, queries):
        method = create_method("isax2+", SeriesStore(mmap_dataset), leaf_capacity=25)
        method.build()
        path = tmp_path / "isax.idx"
        envelope = save_method(method, path)
        assert envelope.storage["kind"] == "mmap"
        assert envelope.storage["source_path"] == mmap_dataset.metadata["source_path"]
        # The raw collection never lands in the index file.
        assert mmap_dataset.values[60:90].tobytes() not in envelope.method_state

        # Reload with *no dataset at all*: the recorded source path reopens.
        loaded = load_method(path)
        assert loaded.store.backend.kind == "mmap"
        q = KnnQuery(series=queries[0], k=3)
        assert loaded.knn_exact(q).positions() == method.knn_exact(q).positions()

    def test_roundtrip_with_explicit_dataset_still_works(
        self, tmp_path, mmap_dataset, memory_dataset, queries
    ):
        method = create_method("va+file", SeriesStore(mmap_dataset), coefficients=8)
        method.build()
        path = tmp_path / "va.idx"
        save_method(method, path)
        # Same bytes, different backend: the fingerprint matches either way.
        loaded = load_method(path, memory_dataset)
        assert loaded.store.backend.kind == "memory"
        q = KnnQuery(series=queries[0], k=3)
        assert loaded.knn_exact(q).positions() == method.knn_exact(q).positions()

    def test_sharded_roundtrip_reattaches_mmap_shards(
        self, tmp_path, mmap_dataset, queries
    ):
        method = create_method(
            "sharded:flat", SeriesStore(mmap_dataset), shards=3, workers=1
        )
        method.build()
        path = tmp_path / "sharded.idx"
        envelope = save_method(method, path)
        # Neither the full collection nor any shard's rows land in the file.
        assert mmap_dataset.values[10:40].tobytes() not in envelope.method_state

        loaded = load_method(path)
        assert loaded.store.backend.kind == "mmap"
        assert all(s.store.backend.kind == "mmap" for s in loaded._shards)
        q = KnnQuery(series=queries[0], k=5)
        a, b = method.knn_exact(q), loaded.knn_exact(q)
        assert a.positions() == b.positions()
        assert a.distances() == b.distances()

    def test_sliced_store_roundtrip_reopens_the_row_range(
        self, tmp_path, mmap_dataset, queries
    ):
        """An index built over a row range of the file reloads over that range."""
        sub = SeriesStore(mmap_dataset).slice(0, 120)
        method = create_method("flat", sub)
        method.build()
        path = tmp_path / "sliced.idx"
        envelope = save_method(method, path)
        assert (envelope.storage["start"], envelope.storage["stop"]) == (0, 120)
        loaded = load_method(path)
        assert loaded.store.count == 120
        q = KnnQuery(series=queries[0], k=3)
        a, b = method.knn_exact(q), loaded.knn_exact(q)
        assert a.positions() == b.positions()
        assert a.distances() == b.distances()

    def test_memory_saved_index_requires_dataset(self, tmp_path, memory_dataset):
        method = create_method("flat", SeriesStore(memory_dataset))
        method.build()
        path = tmp_path / "flat.idx"
        save_method(method, path)
        with pytest.raises(ValueError, match="source path"):
            load_method(path)

    def test_load_rejects_zero_page_bytes(self, tmp_path, memory_dataset):
        method = create_method("flat", SeriesStore(memory_dataset))
        method.build()
        path = tmp_path / "flat.idx"
        save_method(method, path)
        with pytest.raises(ValueError, match="page_bytes"):
            load_method(path, memory_dataset, page_bytes=0)
        with pytest.raises(ValueError, match="page_bytes"):
            load_method(path, memory_dataset, page_bytes=-1)

    def test_load_honors_explicit_and_recorded_page_bytes(
        self, tmp_path, memory_dataset
    ):
        method = create_method("flat", SeriesStore(memory_dataset, page_bytes=2048))
        method.build()
        path = tmp_path / "flat.idx"
        save_method(method, path)
        assert load_method(path, memory_dataset).store.page_bytes == 2048
        assert (
            load_method(path, memory_dataset, page_bytes=1024).store.page_bytes == 1024
        )

    def test_fingerprint_handles_tiny_counts(self):
        one = Dataset(values=np.ones((1, 8), dtype=np.float32), name="one")
        two = Dataset(values=np.ones((2, 8), dtype=np.float32), name="two")
        assert dataset_fingerprint(one) != dataset_fingerprint(two)
        assert dataset_fingerprint(one) == dataset_fingerprint(
            Dataset(values=np.ones((1, 8), dtype=np.float32), name="other-name")
        )

    def test_fingerprint_identical_across_backends(self, memory_dataset, mmap_dataset):
        assert dataset_fingerprint(memory_dataset) == dataset_fingerprint(mmap_dataset)


class TestMeasuredIO:
    def test_measure_io_accumulates_without_changing_counts(self, mmap_dataset):
        plain = SeriesStore(mmap_dataset)
        measured = SeriesStore(mmap_dataset, measure_io=True)
        for store in (plain, measured):
            store.scan()
            store.read_block([1, 5, 9])
            store.read_contiguous(10, 40)
            store.read_one(3)
        assert measured.counter.measured_io_seconds > 0.0
        assert plain.counter.measured_io_seconds == 0.0
        for field in ("sequential_pages", "random_accesses", "series_read", "bytes_read"):
            assert getattr(plain.counter, field) == getattr(measured.counter, field)

    def test_measured_io_reaches_query_stats(self, mmap_dataset):
        store = SeriesStore(mmap_dataset, measure_io=True)
        method = create_method("flat", store)
        method.build()
        result = method.knn_exact(
            KnnQuery(series=np.asarray(mmap_dataset.values[0], dtype=np.float64), k=2)
        )
        assert result.stats.measured_io_seconds > 0.0

    def test_measure_platform_returns_usable_model(self, mmap_dataset):
        store = SeriesStore(mmap_dataset)
        model = measure_platform(store, random_probes=8)
        assert model.sequential_mb_per_s > 0.0
        assert model.random_access_ms > 0.0
        assert model.page_bytes == store.page_bytes
        assert model.io_seconds(10, 10) > 0.0
        # Probing happened on a fork: this store's counters are untouched.
        assert store.counter.random_accesses == 0
