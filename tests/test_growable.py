"""Tests for the crash-consistent growable backend: WAL, recovery, snapshots.

The contract under test: ``extend()`` acks only after the WAL fsync and acked
rows survive any reopen; recovery treats torn tails as expected crash debris
(reported, truncated, never an exception) but damage at rest as corruption;
and a snapshot taken during ingest answers queries byte-identically to a
frozen store of the watermarked prefix — for every registered method.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro import Dataset, SeriesStore, create_method
from repro.core.growable import (
    MANIFEST_NAME,
    WAL_NAME,
    GrowableBackend,
    is_growable_dir,
    sweep_orphaned_tmp,
)
from repro.core.integrity import CorruptionError, invalidate_manifest_cache
from repro.core.queries import KnnQuery
from repro.core.wal import WriteAheadLog


def _rows(count, length=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((count, length)).astype(np.float32)


# ---------------------------------------------------------------------------
# WAL framing and replay
# ---------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "log.wal"
        first, second = _rows(5, seed=1), _rows(3, seed=2)
        with WriteAheadLog(path, length=16) as wal:
            wal.append(first, start_row=0)
            wal.append(second, start_row=5)
        records, report = WriteAheadLog(path, length=16).replay()
        assert [(s, r.shape[0]) for s, r in records] == [(0, 5), (5, 3)]
        np.testing.assert_array_equal(records[0][1], first)
        np.testing.assert_array_equal(records[1][1], second)
        assert report.clean and report.replayed_rows == 8

    def test_empty_append_is_a_noop(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path, length=16) as wal:
            wal.append(_rows(0), start_row=0)
        records, report = WriteAheadLog(path, length=16).replay()
        assert records == [] and report.clean

    def test_wrong_shape_rejected(self, tmp_path):
        with WriteAheadLog(tmp_path / "log.wal", length=16) as wal:
            with pytest.raises(ValueError, match="16"):
                wal.append(_rows(2, length=8), start_row=0)

    @pytest.mark.parametrize("cut", [1, 7, 40])
    def test_torn_tail_is_truncated_not_raised(self, tmp_path, cut):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path, length=16) as wal:
            wal.append(_rows(4, seed=1), start_row=0)
            wal.append(_rows(4, seed=2), start_row=4)
        whole = path.stat().st_size
        path.write_bytes(path.read_bytes()[: whole - cut])
        records, report = WriteAheadLog(path, length=16).replay()
        assert len(records) == 1  # the second record vanishes whole
        assert report.torn_bytes > 0 and report.torn_reason
        assert not report.clean
        # The repair is durable: a second replay is clean.
        records2, report2 = WriteAheadLog(path, length=16).replay()
        assert len(records2) == 1 and report2.clean

    def test_torn_tail_repair_false_leaves_file(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path, length=16) as wal:
            wal.append(_rows(4), start_row=0)
        size = path.stat().st_size
        path.write_bytes(path.read_bytes() + b"\x07" * 11)
        records, report = WriteAheadLog(path, length=16).replay(repair=False)
        assert len(records) == 1 and report.torn_bytes == 11
        assert path.stat().st_size == size + 11  # untouched

    def test_header_damage_raises(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path, length=16) as wal:
            wal.append(_rows(2), start_row=0)
        raw = bytearray(path.read_bytes())
        raw[1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptionError, match="header"):
            WriteAheadLog(path, length=16).replay()

    def test_length_mismatch_raises(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path, length=16) as wal:
            wal.append(_rows(2), start_row=0)
        with pytest.raises(CorruptionError, match="length"):
            WriteAheadLog(path, length=32).replay()

    def test_mid_log_damage_is_corruption_not_torn_tail(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path, length=16) as wal:
            wal.append(_rows(4, seed=1), start_row=0)
            wal.append(_rows(4, seed=2), start_row=4)
        raw = bytearray(path.read_bytes())
        # Flip a payload byte of the FIRST record: an intact record follows,
        # so this is damage at rest and silently dropping it would lose data.
        raw[40 + 16 + 5] ^= 0x10
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptionError, match="mid-log"):
            WriteAheadLog(path, length=16).replay()

    def test_truncate_resets_to_header_only(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path, length=16)
        wal.append(_rows(4), start_row=0)
        wal.truncate()
        records, report = wal.replay()
        assert records == [] and report.clean
        wal.append(_rows(2), start_row=4)
        records, _ = WriteAheadLog(path, length=16).replay()
        assert [(s, r.shape[0]) for s, r in records] == [(4, 2)]
        wal.close()

    def test_short_header_stub_is_swept(self, tmp_path):
        path = tmp_path / "log.wal"
        path.write_bytes(b"RW")  # writer died creating the log
        records, report = WriteAheadLog(path, length=16).replay()
        assert records == [] and report.torn_reason == "short header"
        assert path.stat().st_size == 0


# ---------------------------------------------------------------------------
# GrowableBackend: reads, checkpointing, recovery
# ---------------------------------------------------------------------------


class TestGrowableBackend:
    def test_reads_match_reference_across_checkpoints(self, tmp_path):
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        reference = np.empty((0, 16), dtype=np.float32)
        for seed in range(4):
            batch = _rows(10 + seed, seed=seed)
            backend.extend(batch)
            reference = np.vstack([reference, batch])
            if seed % 2 == 0:
                backend.checkpoint()
        assert backend.count == reference.shape[0]
        np.testing.assert_array_equal(backend.values, reference)
        np.testing.assert_array_equal(backend.read_rows(7, 25), reference[7:25])
        picks = np.array([0, 11, 12, 41, 3])
        np.testing.assert_array_equal(backend.take(picks), reference[picks])
        np.testing.assert_array_equal(backend.row(17), reference[17])
        sub = backend.slice(5, 30)
        np.testing.assert_array_equal(sub.values, reference[5:30])
        backend.close()

    def test_unclean_close_recovers_tail_from_wal(self, tmp_path):
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        sealed = _rows(8, seed=1)
        backend.extend(sealed)
        backend.checkpoint()
        tail = _rows(5, seed=2)
        backend.extend(tail)
        backend.close()  # no checkpoint: the tail lives only in the WAL
        reopened = GrowableBackend(root)
        report = reopened.recovery
        assert report.sealed_rows == 8 and report.replayed_rows == 5
        assert reopened.count == 13
        np.testing.assert_array_equal(
            reopened.values, np.vstack([sealed, tail])
        )
        reopened.close()

    def test_replay_is_idempotent_after_lost_truncate(self, tmp_path):
        # A checkpoint that sealed its segment and manifest but died before
        # truncating the WAL must not double-apply the records on reopen.
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        rows = _rows(9, seed=3)
        backend.extend(rows)
        stale_wal = (root / WAL_NAME).read_bytes()
        backend.checkpoint()
        backend.close()
        (root / WAL_NAME).write_bytes(stale_wal)  # resurrect the un-truncated log
        reopened = GrowableBackend(root)
        report = reopened.recovery
        assert report.skipped_records == 1 and report.replayed_rows == 0
        assert not report.clean
        assert reopened.count == 9
        np.testing.assert_array_equal(reopened.values, rows)
        reopened.close()

    def test_acked_rows_survive_reopen_exactly(self, tmp_path):
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        rows = _rows(20, seed=5)
        for i in range(0, 20, 4):
            backend.extend(rows[i : i + 4])
        backend.close()
        reopened = GrowableBackend(root)
        assert reopened.count == 20
        np.testing.assert_array_equal(reopened.values, rows)
        reopened.close()

    def test_length_mismatch_on_reopen_raises(self, tmp_path):
        root = tmp_path / "store"
        GrowableBackend(root, length=16, create=True).close()
        with pytest.raises(ValueError, match="length"):
            GrowableBackend(root, length=32)

    def test_manifest_damage_raises(self, tmp_path):
        root = tmp_path / "store"
        GrowableBackend(root, length=16, create=True).close()
        (root / MANIFEST_NAME).write_text(json.dumps({"format": "nonsense"}))
        with pytest.raises(CorruptionError):
            GrowableBackend(root)

    def test_extend_reopens_wal_after_close(self, tmp_path):
        # close() only releases the WAL append handle; a later extend
        # transparently reopens it and the durability contract still holds.
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        first = _rows(3, seed=20)
        backend.extend(first)
        backend.close()
        second = _rows(2, seed=21)
        backend.extend(second)
        backend.close()
        reopened = GrowableBackend(root)
        np.testing.assert_array_equal(reopened.values, np.vstack([first, second]))
        reopened.close()

    def test_snapshot_view_refuses_writes(self, tmp_path):
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        backend.extend(_rows(6, seed=22))
        view = backend.slice(0, 4)
        with pytest.raises(ValueError, match="slice/snapshot"):
            view.extend(_rows(1))
        backend.close()

    def test_pickle_pins_watermark(self, tmp_path):
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        rows = _rows(12, seed=6)
        backend.extend(rows)
        backend.checkpoint()
        blob = pickle.dumps(backend)
        backend.extend(_rows(4, seed=7))
        restored = pickle.loads(blob)
        assert restored.count == 12
        np.testing.assert_array_equal(restored.values, rows)
        assert not restored.mutable
        restored.close()
        backend.close()

    def test_verify_segments_detects_bit_rot(self, tmp_path):
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        backend.extend(_rows(16, seed=8))
        backend.checkpoint()
        assert backend.verify_segments() == 16
        backend.close()
        segment = sorted(root.glob("segment-*.npy"))[0]
        raw = bytearray(segment.read_bytes())
        raw[-7] ^= 0x20
        segment.write_bytes(bytes(raw))
        # The verified-set caches process-wide on the sidecar's identity;
        # in-place data damage needs the cache dropped (same as test_integrity).
        invalidate_manifest_cache()
        reopened = GrowableBackend(root)
        with pytest.raises(CorruptionError):
            reopened.verify_segments()
        reopened.close()


class TestRecoverySweeps:
    def test_orphaned_tmp_files_swept_on_open(self, tmp_path):
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        backend.extend(_rows(4))
        backend.close()
        orphan = root / "segment-000009.npy.1234-deadbeef.tmp"
        orphan.write_bytes(b"half-written segment")
        old = orphan.stat().st_mtime - 3600
        os.utime(orphan, (old, old))
        reopened = GrowableBackend(root)
        assert orphan.name in reopened.recovery.swept_tmp
        assert not orphan.exists()
        reopened.close()

    def test_recent_tmp_files_survive_sweep(self, tmp_path):
        # sweep_orphaned_tmp(before=...) must not race a live writer.
        root = tmp_path / "dir"
        root.mkdir()
        fresh = root / "live.npy.42-cafe.tmp"
        fresh.write_bytes(b"in-flight")
        cutoff = fresh.stat().st_mtime - 1.0
        assert sweep_orphaned_tmp(root, before=cutoff) == []
        assert fresh.exists()

    def test_unmanifested_segment_swept_on_open(self, tmp_path):
        # Crash between segment seal and manifest update: the stray segment's
        # rows are still in the WAL, so the file is deleted and replay wins.
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        rows = _rows(6, seed=9)
        backend.extend(rows)
        backend.close()
        stray = root / "segment-000000.npy"
        stray.write_bytes(b"\x93NUMPY not really")
        (root / "segment-000000.npy.crc").write_bytes(b"junk")
        reopened = GrowableBackend(root)
        assert "segment-000000.npy" in reopened.recovery.swept_segments
        assert reopened.count == 6
        np.testing.assert_array_equal(reopened.values, rows)
        reopened.close()

    def test_read_only_open_repairs_nothing(self, tmp_path):
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        backend.extend(_rows(4, seed=10))
        backend.close()
        wal = root / WAL_NAME
        torn = wal.read_bytes() + b"\x01\x02\x03"
        wal.write_bytes(torn)
        ro = GrowableBackend(root, read_only=True)
        assert ro.count == 4  # torn tail ignored...
        assert wal.read_bytes() == torn  # ...but not repaired
        ro.close()
        owner = GrowableBackend(root)
        assert owner.recovery.torn_bytes == 3
        assert wal.stat().st_size == len(torn) - 3
        owner.close()


# ---------------------------------------------------------------------------
# Store / dataset integration
# ---------------------------------------------------------------------------


class TestStoreIntegration:
    def test_dataset_from_file_opens_directory(self, tmp_path):
        root = tmp_path / "store"
        backend = GrowableBackend(root, length=16, create=True)
        backend.extend(_rows(10, seed=11))
        backend.checkpoint()
        backend.close()
        dataset = Dataset.from_file(root)
        assert is_growable_dir(root)
        assert dataset.backend.kind == "growable"
        assert dataset.count == 10 and dataset.length == 16

    def test_to_growable_roundtrip(self, tmp_path):
        values = _rows(30, seed=12)
        dataset = Dataset(values=values, name="live")
        grown = dataset.to_growable(tmp_path / "store")
        assert grown.backend.kind == "growable"
        np.testing.assert_array_equal(np.asarray(grown.values), values)

    def test_store_extend_checkpoints_and_snapshots(self, tmp_path):
        dataset = Dataset(values=_rows(20, seed=13), name="live")
        store = SeriesStore(dataset.to_growable(tmp_path / "store"))
        assert store.watermark == 20
        snap = store.snapshot()
        store.extend(_rows(7, seed=14))
        assert store.count == 27 and snap.count == 20
        np.testing.assert_array_equal(
            np.asarray(snap.read_contiguous(0, 20)),
            np.asarray(store.read_contiguous(0, 20)),
        )
        assert store.checkpoint() == 7

    def test_frozen_store_refuses_extend(self):
        store = SeriesStore(Dataset(values=_rows(5), name="frozen"))
        with pytest.raises(ValueError, match="frozen"):
            store.extend(_rows(1))
        with pytest.raises(ValueError, match="checkpoint"):
            store.checkpoint()

    def test_dataset_values_not_cached_while_mutable(self, tmp_path):
        dataset = Dataset(values=_rows(5, seed=15), name="live").to_growable(
            tmp_path / "store"
        )
        before = np.asarray(dataset.values).copy()
        inner = dataset.backend
        inner.extend(_rows(3, seed=16))
        after = np.asarray(dataset.values)
        assert after.shape[0] == before.shape[0] + 3
        np.testing.assert_array_equal(after[:5], before)


# ---------------------------------------------------------------------------
# Snapshot-during-ingest equivalence: the acceptance criterion
# ---------------------------------------------------------------------------

METHOD_PARAMS = {
    "ads+": {"leaf_capacity": 25},
    "dstree": {"leaf_capacity": 25},
    "isax2+": {"leaf_capacity": 25},
    "m-tree": {"node_capacity": 8},
    "r*-tree": {"leaf_capacity": 20, "segments": 8},
    "sfa-trie": {"leaf_capacity": 50, "coefficients": 8},
    "va+file": {"coefficients": 8, "bits_per_dimension": 3},
    "stepwise": {},
    "ucr-suite": {},
    "mass": {},
    "flat": {},
    "sharded:flat": {"shards": 3, "workers": 1},
    "sharded:isax2+": {"shards": 3, "workers": 1, "leaf_capacity": 25},
}

_LENGTH = 32
_BASE_ROWS = 120


@pytest.fixture(scope="module")
def live_store(tmp_path_factory):
    """A growable store that keeps growing after the methods snapshot it."""
    from repro.workloads.generators import random_walk

    root = tmp_path_factory.mktemp("live") / "store"
    matrix = random_walk(_BASE_ROWS + 40, _LENGTH, seed=77)
    backend = GrowableBackend(root, length=_LENGTH, create=True)
    backend.extend(matrix[:_BASE_ROWS])
    backend.checkpoint()
    dataset = Dataset.from_file(root)
    store = SeriesStore(dataset)
    return store, matrix


@pytest.mark.parametrize("method_name", sorted(METHOD_PARAMS))
def test_snapshot_query_equals_frozen_prefix(method_name, live_store):
    """Queries against a snapshot are byte-identical to a frozen prefix —
    even while extend() keeps landing rows in the underlying store."""
    store, matrix = live_store
    watermark = store.watermark
    params = METHOD_PARAMS[method_name]

    snap_method = create_method(method_name, store.snapshot(), **params)
    snap_method.build()

    frozen = SeriesStore(
        Dataset(values=matrix[:watermark].copy(), name="frozen-prefix")
    )
    frozen_method = create_method(method_name, frozen, **params)
    frozen_method.build()

    # Concurrent ingest: rows landing after the snapshot must be invisible.
    store.extend(matrix[store.count : store.count + 5])

    rng = np.random.default_rng(99)
    for _ in range(3):
        query = KnnQuery(series=rng.standard_normal(_LENGTH), k=5)
        live = snap_method.knn_exact(query)
        cold = frozen_method.knn_exact(query)
        assert [(n.position, n.distance) for n in live.neighbors] == [
            (n.position, n.distance) for n in cold.neighbors
        ], method_name


EXTEND_METHODS = {
    name: METHOD_PARAMS[name]
    for name in ("flat", "dstree", "isax2+", "ads+", "sfa-trie", "sharded:flat")
}


@pytest.mark.parametrize("method_name", sorted(EXTEND_METHODS))
def test_live_extend_matches_full_rebuild(method_name, tmp_path):
    """build(prefix) + store.extend + method.extend answers like build(all)."""
    from repro.workloads.generators import random_walk

    matrix = random_walk(150, _LENGTH, seed=55)
    root = tmp_path / "store"
    backend = GrowableBackend(root, length=_LENGTH, create=True)
    backend.extend(matrix[:100])
    store = SeriesStore(Dataset.from_file(root))
    params = EXTEND_METHODS[method_name]
    method = create_method(method_name, store, **params)
    method.build()

    old = store.count
    store.extend(matrix[100:])
    assert method.extend(old) == 50

    full = SeriesStore(Dataset(values=matrix.copy(), name="full"))
    rebuilt = create_method(method_name, full, **params)
    rebuilt.build()

    rng = np.random.default_rng(101)
    for _ in range(3):
        query = KnnQuery(series=rng.standard_normal(_LENGTH), k=5)
        live = method.knn_exact(query)
        cold = rebuilt.knn_exact(query)
        live_d = [n.distance for n in live.neighbors]
        cold_d = [n.distance for n in cold.neighbors]
        assert live_d == pytest.approx(cold_d, abs=1e-6), method_name


def test_engine_extend_end_to_end(tmp_path):
    from repro import SimilaritySearchEngine
    from repro.workloads.generators import random_walk

    matrix = random_walk(140, _LENGTH, seed=31)
    dataset = Dataset(values=matrix[:100].copy(), name="live").to_growable(
        tmp_path / "store"
    )
    engine = SimilaritySearchEngine(dataset)
    engine.build("flat")
    engine.extend(matrix[100:120])
    engine.extend(matrix[120:], checkpoint=True)
    result = engine.search(matrix[130], k=1)
    assert result.positions()[0] == 130
    assert engine.store.count == 140


def test_sharded_repartition_on_skewed_growth(tmp_path):
    from repro.workloads.generators import random_walk

    matrix = random_walk(400, _LENGTH, seed=42)
    root = tmp_path / "store"
    backend = GrowableBackend(root, length=_LENGTH, create=True)
    backend.extend(matrix[:100])
    store = SeriesStore(Dataset.from_file(root))
    method = create_method(
        "sharded:flat", store, shards=4, workers=1, repartition_factor=1.5
    )
    method.build()
    old = store.count
    store.extend(matrix[100:])  # tail shard would hold 325 of 400 rows
    method.extend(old)
    assert method.repartitions >= 1
    # After repartition the shards are balanced again and answers are exact.
    sizes = [shard.store.count for shard in method._shards]
    assert max(sizes) - min(sizes) <= 1
    full = SeriesStore(Dataset(values=matrix.copy(), name="full"))
    flat = create_method("flat", full)
    flat.build()
    query = KnnQuery(series=matrix[250].astype(np.float64), k=3)
    assert [n.position for n in method.knn_exact(query).neighbors] == [
        n.position for n in flat.knn_exact(query).neighbors
    ]
