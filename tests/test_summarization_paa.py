"""Tests for PAA and its lower-bounding distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import euclidean
from repro.summarization.paa import PaaSummarizer, paa_lower_bound, paa_transform

pair_strategy = st.integers(min_value=1, max_value=5).flatmap(
    lambda seed: st.just(seed)
)


def random_pair(length: int, seed: int):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(length), rng.standard_normal(length)


class TestPaaTransform:
    def test_even_segments_are_means(self):
        series = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0])
        paa = paa_transform(series, 4)
        assert np.allclose(paa, [1.0, 2.0, 3.0, 4.0])

    def test_uneven_lengths_supported(self):
        series = np.arange(10.0)
        paa = paa_transform(series, 3)
        assert paa.shape == (3,)

    def test_batch_shape(self):
        batch = np.random.default_rng(0).standard_normal((7, 32))
        paa = paa_transform(batch, 8)
        assert paa.shape == (7, 8)

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            paa_transform(np.arange(4.0), 0)
        with pytest.raises(ValueError):
            paa_transform(np.arange(4.0), 8)

    def test_constant_series(self):
        paa = paa_transform(np.full(16, 3.5), 4)
        assert np.allclose(paa, 3.5)


class TestPaaSummarizer:
    def test_transform_matches_function(self):
        summarizer = PaaSummarizer(32, 8)
        series = np.random.default_rng(1).standard_normal(32)
        assert np.allclose(summarizer.transform(series), paa_transform(series, 8))

    def test_length_mismatch_raises(self):
        summarizer = PaaSummarizer(32, 8)
        with pytest.raises(ValueError):
            summarizer.transform(np.zeros(16))

    def test_lower_bound_batch_matches_scalar(self):
        summarizer = PaaSummarizer(64, 16)
        rng = np.random.default_rng(2)
        q = summarizer.transform(rng.standard_normal(64))
        cands = summarizer.transform_batch(rng.standard_normal((5, 64)))
        batch = summarizer.lower_bound_batch(q, cands)
        scalar = [summarizer.lower_bound(q, c) for c in cands]
        assert np.allclose(batch, scalar)

    @given(
        hnp.arrays(np.float64, 64, elements=st.floats(-50, 50, allow_nan=False)),
        hnp.arrays(np.float64, 64, elements=st.floats(-50, 50, allow_nan=False)),
        st.sampled_from([4, 8, 16, 32]),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_lower_bounds_euclidean(self, a, b, segments):
        """PAA distance never exceeds the true Euclidean distance."""
        summarizer = PaaSummarizer(64, segments)
        bound = summarizer.lower_bound(summarizer.transform(a), summarizer.transform(b))
        assert bound <= euclidean(a, b) + 1e-7

    def test_function_lower_bound_consistent(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal(64), rng.standard_normal(64)
        qa, qb = paa_transform(a, 16), paa_transform(b, 16)
        assert paa_lower_bound(qa, qb, 64) <= euclidean(a, b) + 1e-9

    def test_mindist_to_rectangle(self):
        summarizer = PaaSummarizer(32, 8)
        rng = np.random.default_rng(4)
        series = rng.standard_normal((10, 32))
        paa = summarizer.transform_batch(series)
        lower, upper = paa.min(axis=0), paa.max(axis=0)
        query = rng.standard_normal(32)
        q_paa = summarizer.transform(query)
        mindist = summarizer.mindist_to_rectangle(q_paa, lower, upper)
        # The rectangle bound never exceeds the bound to any contained point.
        for row in paa:
            assert mindist <= summarizer.lower_bound(q_paa, row) + 1e-9
        # And the point inside its own MBR has distance 0.
        assert summarizer.mindist_to_rectangle(paa[0], lower, upper) == pytest.approx(0.0)
