"""Tests for the M-tree and R*-tree indexes."""

import numpy as np
import pytest

from repro import SeriesStore
from repro.core.queries import KnnQuery
from repro.indexes.mtree import MTreeIndex
from repro.indexes.rstartree import RStarTreeIndex


class TestMTree:
    @pytest.fixture()
    def index(self, tiny_dataset):
        store = SeriesStore(tiny_dataset)
        idx = MTreeIndex(store, node_capacity=8)
        idx.build()
        return idx

    def test_rejects_bad_capacity(self, tiny_dataset):
        with pytest.raises(ValueError):
            MTreeIndex(SeriesStore(tiny_dataset), node_capacity=1)

    def test_every_series_stored_exactly_once(self, index, tiny_dataset):
        positions = []
        for leaf in index.root.leaves():
            positions.extend(entry.position for entry in leaf.entries)
        assert sorted(positions) == list(range(tiny_dataset.count))

    def test_covering_radii_are_valid(self, index, tiny_dataset):
        """Every object in a subtree lies within its routing entry's radius."""

        def check(node):
            if node.is_leaf:
                return [(entry.position, entry.vector) for entry in node.entries]
            collected = []
            for entry in node.entries:
                subtree_objects = check(entry.subtree)
                for position, vector in subtree_objects:
                    dist = float(np.linalg.norm(vector - entry.vector))
                    assert dist <= entry.radius + 1e-6
                collected.extend(subtree_objects)
            return collected

        check(index.root)

    def test_exact_matches_brute_force(self, index, tiny_dataset, tiny_queries, brute_force_knn):
        for query in tiny_queries:
            _, truth_dist = brute_force_knn(tiny_dataset, query.series, k=1)
            result = index.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_exact_knn5(self, index, tiny_dataset, tiny_queries, brute_force_knn):
        query = tiny_queries[0]
        _, truth_dist = brute_force_knn(tiny_dataset, query.series, k=5)
        result = index.knn_exact(KnnQuery(series=query.series, k=5))
        assert np.allclose(result.distances(), truth_dist, atol=1e-4)

    def test_query_self_finds_itself(self, index, tiny_dataset):
        result = index.knn_exact(KnnQuery(series=tiny_dataset[9]))
        assert result.nearest.position == 9

    def test_approximate_search(self, index, tiny_queries):
        result = index.knn_approximate(tiny_queries[0])
        assert result.neighbors

    def test_memory_resident_footprint(self, index):
        assert index.index_stats.disk_bytes == 0
        assert index.index_stats.memory_bytes > 0


class TestRStarTree:
    @pytest.fixture()
    def index(self, small_dataset):
        store = SeriesStore(small_dataset)
        idx = RStarTreeIndex(store, segments=8, leaf_capacity=20, node_capacity=8)
        idx.build()
        return idx

    def test_rejects_bad_capacity(self, small_dataset):
        with pytest.raises(ValueError):
            RStarTreeIndex(SeriesStore(small_dataset), leaf_capacity=1)

    def test_every_series_stored_exactly_once(self, index, small_dataset):
        positions = []
        for leaf in index.root.leaves():
            positions.extend(leaf.positions)
        assert sorted(positions) == list(range(small_dataset.count))

    def test_mbrs_contain_their_points(self, index):
        for leaf in index.root.leaves():
            if not leaf.points:
                continue
            points = np.vstack(leaf.points)
            assert np.all(points >= leaf.lower[np.newaxis, :] - 1e-9)
            assert np.all(points <= leaf.upper[np.newaxis, :] + 1e-9)

    def test_parent_mbrs_contain_children(self, index):
        for node in index.root.iter_nodes():
            if node.is_leaf or node.lower is None:
                continue
            for child in node.children:
                assert np.all(child.lower >= node.lower - 1e-9)
                assert np.all(child.upper <= node.upper + 1e-9)

    def test_exact_matches_brute_force(self, index, small_dataset, small_queries, brute_force_knn):
        for query in small_queries:
            _, truth_dist = brute_force_knn(small_dataset, query.series, k=1)
            result = index.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_exact_knn5(self, index, small_dataset, small_queries, brute_force_knn):
        query = small_queries[1]
        _, truth_dist = brute_force_knn(small_dataset, query.series, k=5)
        result = index.knn_exact(KnnQuery(series=query.series, k=5))
        assert np.allclose(result.distances(), truth_dist, atol=1e-4)

    def test_query_self_finds_itself(self, index, small_dataset):
        result = index.knn_exact(KnnQuery(series=small_dataset[33]))
        assert result.nearest.position == 33

    def test_approximate_search(self, index, small_queries):
        result = index.knn_approximate(small_queries[0])
        assert result.neighbors
        assert result.stats.leaves_visited == 1

    def test_leaves_respect_capacity(self, index):
        for leaf in index.root.leaves():
            assert leaf.size <= index.leaf_capacity

    def test_no_reinsert_variant_still_exact(self, small_dataset, small_queries, brute_force_knn):
        store = SeriesStore(small_dataset)
        idx = RStarTreeIndex(store, segments=8, leaf_capacity=20, reinsert_fraction=0.0)
        idx.build()
        _, truth_dist = brute_force_knn(small_dataset, small_queries[0].series, k=1)
        result = idx.knn_exact(small_queries[0])
        assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)
