"""Edge-case and failure-injection tests across the library."""

import numpy as np
import pytest

from repro import Dataset, SeriesStore, create_method
from repro.core.queries import KnnQuery
from repro.workloads import random_walk_dataset

EDGE_METHODS = {
    "dstree": {"leaf_capacity": 5},
    "isax2+": {"leaf_capacity": 5},
    "ads+": {"leaf_capacity": 5},
    "va+file": {"coefficients": 4, "bits_per_dimension": 2},
    "sfa-trie": {"leaf_capacity": 10, "coefficients": 4},
    "ucr-suite": {},
    "mass": {},
    "stepwise": {},
    "m-tree": {"node_capacity": 4},
    "r*-tree": {"leaf_capacity": 4, "segments": 4},
}


class TestTinyCollections:
    @pytest.mark.parametrize("method_name", sorted(EDGE_METHODS))
    def test_single_series_dataset(self, method_name):
        dataset = random_walk_dataset(1, 16, seed=3)
        store = SeriesStore(dataset)
        method = create_method(method_name, store, **EDGE_METHODS[method_name])
        method.build()
        result = method.knn_exact(KnnQuery(series=dataset[0], k=1))
        assert result.nearest.position == 0
        assert result.nearest.distance == pytest.approx(0.0, abs=1e-5)

    @pytest.mark.parametrize("method_name", sorted(EDGE_METHODS))
    def test_two_series_dataset(self, method_name):
        dataset = random_walk_dataset(2, 16, seed=4)
        store = SeriesStore(dataset)
        method = create_method(method_name, store, **EDGE_METHODS[method_name])
        method.build()
        result = method.knn_exact(KnnQuery(series=dataset[1], k=2))
        assert set(result.positions()) == {0, 1}

    @pytest.mark.parametrize("method_name", ["dstree", "isax2+", "va+file", "ucr-suite"])
    def test_k_larger_than_collection(self, method_name):
        dataset = random_walk_dataset(5, 16, seed=5)
        store = SeriesStore(dataset)
        method = create_method(method_name, store, **EDGE_METHODS[method_name])
        method.build()
        result = method.knn_exact(KnnQuery(series=dataset[0], k=10))
        # Only 5 answers can exist.
        assert len(result.neighbors) == 5
        assert sorted(result.positions()) == [0, 1, 2, 3, 4]


class TestExtremeParameters:
    def test_leaf_capacity_one_isax(self):
        dataset = random_walk_dataset(60, 32, seed=6)
        method = create_method("isax2+", SeriesStore(dataset), leaf_capacity=1)
        method.build()
        query = KnnQuery(series=dataset[7])
        assert method.knn_exact(query).nearest.position == 7

    def test_leaf_capacity_one_dstree(self):
        dataset = random_walk_dataset(60, 32, seed=7)
        method = create_method("dstree", SeriesStore(dataset), leaf_capacity=1)
        method.build()
        query = KnnQuery(series=dataset[9])
        assert method.knn_exact(query).nearest.position == 9

    def test_short_series_with_many_segments(self):
        """Requesting more segments than points must degrade gracefully."""
        dataset = random_walk_dataset(50, 8, seed=8)
        method = create_method("isax2+", SeriesStore(dataset), segments=16, leaf_capacity=10)
        method.build()
        query = KnnQuery(series=dataset[3])
        assert method.knn_exact(query).nearest.position == 3

    def test_very_small_buffer_still_correct(self, brute_force_knn):
        dataset = random_walk_dataset(80, 32, seed=9)
        method = create_method(
            "dstree", SeriesStore(dataset), leaf_capacity=10, buffer_capacity=5
        )
        method.build()
        _, truth = brute_force_knn(dataset, dataset[11], k=1)
        result = method.knn_exact(KnnQuery(series=dataset[11]))
        assert result.nearest.distance == pytest.approx(truth[0], abs=1e-5)
        # The tiny buffer must have forced spills.
        assert method._buffer.stats.spills > 0

    def test_sfa_alphabet_two(self):
        dataset = random_walk_dataset(100, 32, seed=10)
        method = create_method(
            "sfa-trie", SeriesStore(dataset), alphabet_size=2, coefficients=4, leaf_capacity=10
        )
        method.build()
        query = KnnQuery(series=dataset[13])
        assert method.knn_exact(query).nearest.position == 13


class TestAdversarialData:
    def test_all_identical_series_knn(self):
        values = np.tile(np.linspace(-1, 1, 32, dtype=np.float32), (40, 1))
        dataset = Dataset(values=values, name="identical", normalized=False)
        for name in ("dstree", "isax2+", "va+file"):
            method = create_method(name, SeriesStore(dataset), **EDGE_METHODS[name])
            method.build()
            result = method.knn_exact(KnnQuery(series=values[0], k=3))
            assert all(d == pytest.approx(0.0, abs=1e-6) for d in result.distances())

    def test_extreme_magnitudes(self, brute_force_knn):
        rng = np.random.default_rng(11)
        values = (rng.standard_normal((60, 32)) * 1e6).astype(np.float32)
        dataset = Dataset(values=values, name="huge-values", normalized=False)
        for name in ("dstree", "ucr-suite", "va+file"):
            method = create_method(name, SeriesStore(dataset), **EDGE_METHODS[name])
            method.build()
            _, truth = brute_force_knn(dataset, values[5], k=1)
            result = method.knn_exact(KnnQuery(series=values[5]))
            assert result.nearest.distance == pytest.approx(truth[0], rel=1e-4)

    def test_query_far_outside_data_distribution(self, small_dataset, brute_force_knn):
        """A query far from every series still returns the true nearest neighbor."""
        far_query = np.full(small_dataset.length, 50.0)
        _, truth = brute_force_knn(small_dataset, far_query, k=1)
        for name in ("dstree", "isax2+", "va+file"):
            method = create_method(name, SeriesStore(small_dataset), **EDGE_METHODS[name])
            method.build()
            result = method.knn_exact(KnnQuery(series=far_query))
            assert result.nearest.distance == pytest.approx(truth[0], rel=1e-5)

    def test_query_with_nan_produces_no_silent_answer(self, small_dataset):
        """NaN queries must not silently return a fabricated neighbor distance."""
        bad_query = np.full(small_dataset.length, np.nan, dtype=np.float32)
        method = create_method("ucr-suite", SeriesStore(small_dataset))
        method.build()
        result = method.knn_exact(KnnQuery(series=bad_query))
        # Distances to NaN queries are NaN; the scan keeps the first candidates
        # but their reported distances are NaN, never a misleading number.
        assert all(np.isnan(d) or d >= 0 for d in result.distances())


class TestStoreMisuse:
    def test_mismatched_query_length_raises(self, small_dataset):
        method = create_method("ucr-suite", SeriesStore(small_dataset))
        method.build()
        short_query = np.zeros(small_dataset.length // 2)
        with pytest.raises((ValueError, Exception)):
            method.knn_exact(KnnQuery(series=short_query))

    def test_double_build_is_idempotent_for_scan(self, small_dataset):
        method = create_method("ucr-suite", SeriesStore(small_dataset))
        method.build()
        method.build()
        result = method.knn_exact(KnnQuery(series=small_dataset[0]))
        assert result.nearest.position == 0
