"""Compressed quantized-block storage: format, backend, bounds, pruned scans.

Three layers under test:

1. the ``.rcz`` container (``repro.core.quantize``) — chunk-invariant streamed
   writes, header/table validation, codec round-trips;
2. the :class:`~repro.core.backends.CompressedBackend` — every read seam
   serves the same dequantized float32 values, slices/forks/pickles travel by
   path, release keeps residency bounded;
3. the two-phase pruned scan — quantized lower bounds are *sound* (never
   above the true distance to the stored values), accounting splits logical
   from physical bytes, and the pruned flat scan stays byte-identical to the
   memory backend at any tile/block-size combination.
"""

import pickle

import numpy as np
import pytest

from repro import Dataset, SeriesStore, create_method
from repro.core.backends import CompressedBackend
from repro.core.quantize import (
    RCZ_SUFFIX,
    CompressedFileWriter,
    dequantize_block,
    quantize_block,
    quantized_lower_bounds,
    read_rcz_info,
    write_rcz_file,
)
from repro.core.queries import KnnQuery
from repro.workloads import random_walk_dataset

COUNT, LENGTH = 230, 24


@pytest.fixture(scope="module")
def walks() -> np.ndarray:
    return random_walk_dataset(COUNT, LENGTH, seed=11).values


@pytest.fixture(scope="module")
def rcz_path(walks, tmp_path_factory):
    path = tmp_path_factory.mktemp("rcz") / f"walks{RCZ_SUFFIX}"
    write_rcz_file(path, [walks], length=LENGTH, qdtype="int8", block_rows=64)
    return path


class TestFormat:
    def test_writer_is_chunk_invariant(self, walks, tmp_path):
        """Any append chunking produces byte-identical files (the writer
        re-buffers to block granularity)."""
        a, b, c = (tmp_path / f"{n}.rcz" for n in "abc")
        write_rcz_file(a, [walks], length=LENGTH, block_rows=64)
        write_rcz_file(b, [walks[:13], walks[13:64], walks[64:]], length=LENGTH, block_rows=64)
        write_rcz_file(
            c, [walks[i : i + 7] for i in range(0, COUNT, 7)], length=LENGTH, block_rows=64
        )
        assert a.read_bytes() == b.read_bytes() == c.read_bytes()

    def test_header_records_geometry(self, rcz_path):
        info = read_rcz_info(rcz_path)
        assert (info.count, info.length, info.block_rows) == (COUNT, LENGTH, 64)
        assert info.qdtype_name == "int8"
        assert info.codec == "zlib"
        # partial tail block: table rows must sum to the count
        assert int(info.table["rows"].sum()) == COUNT
        assert info.table["rows"][-1] == COUNT % 64

    def test_codec_round_trips(self, walks, tmp_path):
        """'none' and 'zlib' must serve identical values; zlib strictly smaller."""
        paths = {}
        for codec in ("none", "zlib"):
            path = tmp_path / f"{codec}.rcz"
            write_rcz_file(path, [walks], length=LENGTH, compression=codec, block_rows=64)
            paths[codec] = path
        plain = CompressedBackend(paths["none"]).values
        deflated = CompressedBackend(paths["zlib"]).values
        np.testing.assert_array_equal(np.asarray(plain), np.asarray(deflated))
        assert paths["zlib"].stat().st_size < paths["none"].stat().st_size

    def test_rejects_unknown_codec_and_qdtype(self, tmp_path):
        with pytest.raises(ValueError, match="codec"):
            CompressedFileWriter(tmp_path / "x.rcz", length=8, compression="snappy")
        with pytest.raises(ValueError, match="dtype"):
            CompressedFileWriter(tmp_path / "x.rcz", length=8, qdtype="int4")

    def test_rejects_corrupt_files(self, rcz_path, tmp_path):
        bad_magic = tmp_path / "magic.rcz"
        blob = bytearray(rcz_path.read_bytes())
        blob[:4] = b"NOPE"
        bad_magic.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="not an .rcz|magic"):
            read_rcz_info(bad_magic)

        truncated = tmp_path / "short.rcz"
        truncated.write_bytes(rcz_path.read_bytes()[:40])
        with pytest.raises(ValueError):
            read_rcz_info(truncated)

    def test_zero_row_file_round_trips(self, tmp_path):
        path = tmp_path / "empty.rcz"
        count = write_rcz_file(path, [], length=8)
        assert count == 0
        info = read_rcz_info(path)
        assert (info.count, info.length) == (0, 8)

    def test_quantization_error_is_step_bounded(self, walks):
        for qdtype, bound in (("int8", 0.5 / 127), ("int16", 0.5 / 32767)):
            codes, scale, shift = quantize_block(walks, qdtype)
            stored = dequantize_block(codes, scale, shift)
            # half a quantization step per value (plus float32 rounding slack)
            step = float(scale)
            assert np.max(np.abs(stored - walks)) <= step * 0.5 + 1e-6
            assert step == pytest.approx(
                (walks.max() - walks.min()) / 2 * (bound * 2), rel=0.01
            )

    def test_constant_block_quantizes_exactly(self):
        flat = np.full((5, 8), 3.25, dtype=np.float32)
        codes, scale, shift = quantize_block(flat, "int8")
        np.testing.assert_array_equal(dequantize_block(codes, scale, shift), flat)


class TestCompressedBackend:
    @pytest.fixture(scope="class")
    def backend(self, rcz_path):
        return CompressedBackend(rcz_path)

    @pytest.fixture(scope="class")
    def stored(self, backend) -> np.ndarray:
        return np.array(backend.values)

    def test_geometry_and_describe(self, backend, rcz_path):
        assert (backend.count, backend.length) == (COUNT, LENGTH)
        assert backend.kind == "compressed"
        assert backend.supports_quantized_scan
        info = backend.describe()
        assert info["format"] == "rcz"
        assert info["qdtype"] == "int8"
        # stored payload bytes; the file adds the 64B header + 32B/block table
        table = read_rcz_info(rcz_path).table
        assert info["stored_bytes"] == int(table["nbytes"].sum())
        assert rcz_path.stat().st_size == 64 + info["stored_bytes"] + 32 * len(table)

    def test_read_seams_agree(self, backend, stored):
        fresh = CompressedBackend(backend.source_path)  # no materialized values
        np.testing.assert_array_equal(fresh.read_rows(60, 130), stored[60:130])
        picks = np.array([0, 63, 64, 65, COUNT - 1])
        np.testing.assert_array_equal(fresh.take(picks), stored[picks])
        np.testing.assert_array_equal(fresh.row(100), stored[100])
        np.testing.assert_array_equal(fresh.get(slice(10, 20)), stored[10:20])

    def test_values_are_float32_and_read_only(self, backend):
        assert backend.values.dtype == np.float32
        assert not backend.values.flags.writeable

    def test_slice_and_fork_compose(self, rcz_path, stored):
        backend = CompressedBackend(rcz_path)
        inner = backend.slice(40, 200).slice(10, 30)
        np.testing.assert_array_equal(np.asarray(inner.values), stored[50:70])
        fork = inner.fork()
        assert fork is not inner
        np.testing.assert_array_equal(np.asarray(fork.values), stored[50:70])

    def test_pickles_by_path(self, rcz_path, stored):
        backend = CompressedBackend(rcz_path, start=50, stop=90)
        blob = pickle.dumps(backend)
        assert len(blob) < 1024  # path + range, never rows or decoded blocks
        reopened = pickle.loads(blob)
        np.testing.assert_array_equal(np.asarray(reopened.values), stored[50:90])

    def test_release_is_safe_and_rereadable(self, rcz_path, stored):
        backend = CompressedBackend(rcz_path, cache_blocks=2)
        first = np.array(backend.read_rows(0, 130))
        backend.release(0, 130)
        np.testing.assert_array_equal(np.array(backend.read_rows(0, 130)), first)
        np.testing.assert_array_equal(first, stored[:130])

    def test_quantized_parts_cover_exact_ranges(self, rcz_path, stored):
        backend = CompressedBackend(rcz_path)
        for start, stop in ((0, 64), (10, 50), (60, 130), (0, COUNT), (200, COUNT)):
            parts = backend.quantized_parts(start, stop)
            rebuilt = np.vstack(
                [dequantize_block(codes, scale, shift) for codes, scale, shift in parts]
            )
            np.testing.assert_array_equal(rebuilt, stored[start:stop])

    def test_physical_bytes_match_stored_payloads(self, rcz_path):
        backend = CompressedBackend(rcz_path)
        info = read_rcz_info(rcz_path)
        total_payload = int(info.table["nbytes"].sum())
        assert backend.physical_bytes(0, COUNT) == total_payload
        # one row still costs its whole covering block
        assert backend.physical_bytes(0, 1) == int(info.table["nbytes"][0])
        parts = backend.physical_bytes_for(np.array([0, 1, 70]))
        assert parts == int(info.table["nbytes"][0]) + int(info.table["nbytes"][1])

    def test_rejects_bad_ranges_and_missing_file(self, rcz_path, tmp_path):
        with pytest.raises(FileNotFoundError):
            CompressedBackend(tmp_path / "nope.rcz").count  # lazy open on first use
        with pytest.raises(ValueError):
            CompressedBackend(rcz_path, start=10, stop=5).count


class TestLowerBoundSoundness:
    def test_bounds_never_exceed_true_distances(self):
        """The filter's contract: lb <= squared distance to the *stored* values
        for every (query, row) pair — across magnitudes, offsets, and dtypes."""
        rng = np.random.default_rng(123)
        for trial in range(20):
            scale_mag = 10.0 ** rng.integers(-3, 4)
            offset = float(rng.normal() * scale_mag * 10)
            block = (rng.standard_normal((40, 16)) * scale_mag + offset).astype(
                np.float32
            )
            qdtype = "int8" if trial % 2 else "int16"
            codes, scale, shift = quantize_block(block, qdtype)
            stored = dequantize_block(codes, scale, shift).astype(np.float64)
            queries = rng.standard_normal((5, 16)) * scale_mag + offset
            # exact kernel the refinement uses
            true = (
                np.sum(stored * stored, axis=1)[np.newaxis, :]
                + np.sum(queries * queries, axis=1)[:, np.newaxis]
                - 2.0 * (queries @ stored.T)
            )
            np.clip(true, 0.0, None, out=true)
            bounds = quantized_lower_bounds(codes, scale, shift, queries)
            assert bounds.shape == (5, 40)
            assert np.all(bounds <= true + 1e-12)
            assert np.all(bounds >= 0.0)

    def test_bounds_are_tight_for_self_queries(self, walks):
        codes, scale, shift = quantize_block(walks[:32], "int16")
        stored = dequantize_block(codes, scale, shift).astype(np.float64)
        bounds = quantized_lower_bounds(codes, scale, shift, stored[:4])
        # distance of row i to itself is 0; the bound must sit at ~0, not at a
        # uselessly loose negative-clipped floor for everything
        assert np.all(np.diag(bounds[:4, :4]) <= 1e-6)
        assert bounds.max() > 1.0  # far rows keep a discriminating bound


class TestAccountingSplit:
    def test_physical_equals_logical_on_float_backends(self, walks, tmp_path):
        memory = SeriesStore(Dataset(values=walks, name="acct"))
        path = tmp_path / "acct.npy"
        Dataset(values=walks, name="acct").to_file(path)
        mmap = SeriesStore(Dataset.from_file(path), backend="mmap")
        for store in (memory, mmap):
            store.scan()
            store.read_block([1, 5, 9])
            store.read_contiguous(10, 40)
            store.read_one(3)
            assert store.counter.physical_bytes_read == store.counter.bytes_read > 0

    def test_scan_quantized_chunks_accounting(self, rcz_path):
        store = SeriesStore(
            Dataset.from_file(rcz_path, name="acct-rcz"), page_bytes=1024
        )
        info = read_rcz_info(rcz_path)
        physical = int(info.table["nbytes"].sum())
        tiles = [
            (start, stop, parts)
            for start, stop, parts in store.scan_quantized_chunks(chunk_rows=64)
        ]
        assert [t[:2] for t in tiles] == [
            (s, min(s + 64, COUNT)) for s in range(0, COUNT, 64)
        ]
        counter = store.counter
        assert counter.random_accesses == 1
        assert counter.series_read == COUNT
        assert counter.bytes_read == COUNT * LENGTH * 1  # int8 codes
        assert counter.physical_bytes_read == physical
        assert counter.sequential_pages == -(-physical // 1024)

    def test_scan_quantized_chunks_requires_compressed(self, walks):
        store = SeriesStore(Dataset(values=walks, name="plain"))
        assert not store.supports_quantized_scan
        with pytest.raises(ValueError, match="compressed"):
            list(store.scan_quantized_chunks())

    def test_pruned_flat_reads_fewer_physical_bytes(self, rcz_path, walks):
        """A dataset-row query with a tight radius must leave tiles unread."""
        store = SeriesStore(Dataset.from_file(rcz_path, name="pruned"))
        method = create_method("flat", store, tile_series=64)
        method.build()
        store.counter.reset()
        result = method.knn_exact(KnnQuery(series=walks[3], k=1))
        raw_bytes = COUNT * LENGTH * 4
        assert result.stats.series_examined < COUNT  # tiles were pruned
        assert result.stats.lower_bounds_computed == COUNT
        assert result.stats.physical_bytes_read < raw_bytes
        assert result.stats.physical_bytes_read < result.stats.bytes_read


class TestPrunedScanEquivalence:
    """Byte-identical answers for every tile/block-size combination."""

    @pytest.mark.parametrize("block_rows", [16, 64, 256])
    @pytest.mark.parametrize("tile", [1, 48, 64, 100, 1024])
    def test_flat_matches_memory_at_any_geometry(
        self, walks, tmp_path, block_rows, tile
    ):
        path = tmp_path / f"b{block_rows}.rcz"
        compressed = Dataset(values=walks, name="geom").to_compressed(
            path, qdtype="int8", block_rows=block_rows
        )
        reference = Dataset(values=np.array(compressed.values), name="geom-ref")
        mem = create_method("flat", SeriesStore(reference), tile_series=tile)
        comp = create_method("flat", SeriesStore(compressed), tile_series=tile)
        mem.build()
        comp.build()
        queries = np.vstack(
            [reference.values[0], reference.values[COUNT - 1], walks[7] + 0.25]
        ).astype(np.float64)
        for q in queries:
            a = mem.knn_exact(KnnQuery(series=q, k=3))
            b = comp.knn_exact(KnnQuery(series=q, k=3))
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()
        for a, b in zip(
            mem.knn_exact_batch(queries, k=3), comp.knn_exact_batch(queries, k=3)
        ):
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()

    def test_dataset_to_compressed_round_trip(self, walks, tmp_path):
        dataset = Dataset(values=walks, name="roundtrip")
        compressed = dataset.to_compressed(tmp_path / "rt.rcz", qdtype="int16")
        assert compressed.backend.kind == "compressed"
        assert (compressed.count, compressed.length) == (COUNT, LENGTH)
        # int16 stored values sit within a half-step of the originals
        assert np.max(np.abs(np.asarray(compressed.values) - walks)) < 1e-3
        reopened = Dataset.from_file(tmp_path / "rt.rcz")
        np.testing.assert_array_equal(
            np.asarray(reopened.values), np.asarray(compressed.values)
        )
