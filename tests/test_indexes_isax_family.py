"""Tests for the iSAX2+ index and the ADS+ adaptive index."""

import numpy as np
import pytest

from repro import SeriesStore
from repro.core.queries import KnnQuery
from repro.indexes.ads import AdsPlusIndex
from repro.indexes.isax import Isax2PlusIndex


class TestIsax2Plus:
    @pytest.fixture()
    def index(self, small_dataset):
        store = SeriesStore(small_dataset)
        idx = Isax2PlusIndex(store, segments=16, cardinality=64, leaf_capacity=25)
        idx.build()
        return idx

    def test_requires_build_before_search(self, small_dataset):
        idx = Isax2PlusIndex(SeriesStore(small_dataset), leaf_capacity=25)
        with pytest.raises(RuntimeError):
            idx.knn_exact(KnnQuery(series=small_dataset[0]))

    def test_rejects_bad_leaf_capacity(self, small_dataset):
        with pytest.raises(ValueError):
            Isax2PlusIndex(SeriesStore(small_dataset), leaf_capacity=0)

    def test_every_series_stored_exactly_once(self, index, small_dataset):
        positions = []
        for child in index.root.children.values():
            for leaf in child.leaves():
                positions.extend(leaf.positions)
        assert sorted(positions) == list(range(small_dataset.count))

    def test_leaves_respect_capacity(self, index):
        for child in index.root.children.values():
            for leaf in child.leaves():
                assert leaf.size <= index.leaf_capacity or all(
                    c == index.cardinality for c in leaf.word.cardinalities
                )

    def test_exact_matches_brute_force(self, index, small_dataset, small_queries, brute_force_knn):
        for query in small_queries:
            truth_pos, truth_dist = brute_force_knn(small_dataset, query.series, k=1)
            result = index.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_exact_knn5(self, index, small_dataset, small_queries, brute_force_knn):
        query = small_queries[0]
        truth_pos, truth_dist = brute_force_knn(small_dataset, query.series, k=5)
        result = index.knn_exact(KnnQuery(series=query.series, k=5))
        assert np.allclose(result.distances(), truth_dist, atol=1e-4)

    def test_approximate_no_worse_than_worst(self, index, small_dataset, small_queries):
        """The ng-approximate answer is a real distance from a real series."""
        query = small_queries[0]
        result = index.knn_approximate(query)
        assert result.neighbors
        pos = result.nearest.position
        diff = small_dataset.values[pos].astype(np.float64) - query.series
        assert result.nearest.distance == pytest.approx(float(np.sqrt(np.dot(diff, diff))), abs=1e-4)

    def test_query_self_finds_itself(self, index, small_dataset):
        result = index.knn_exact(KnnQuery(series=small_dataset[7]))
        assert result.nearest.position == 7
        assert result.nearest.distance == pytest.approx(0.0, abs=1e-4)

    def test_stats_populated(self, index, small_queries):
        result = index.knn_exact(small_queries[0])
        stats = result.stats
        assert stats.dataset_size == index.store.count
        assert stats.series_examined > 0
        assert stats.leaves_visited >= 1
        assert 0.0 <= stats.pruning_ratio <= 1.0

    def test_footprint(self, index):
        stats = index.index_stats
        assert stats.total_nodes > stats.leaf_nodes > 0
        assert stats.leaf_fill_factors
        assert stats.memory_bytes > 0

    def test_describe(self, index):
        info = index.describe()
        assert info["name"] == "isax2+"
        assert info["segments"] == 16


class TestAdsPlus:
    @pytest.fixture()
    def index(self, small_dataset):
        store = SeriesStore(small_dataset)
        idx = AdsPlusIndex(store, segments=16, cardinality=64, leaf_capacity=25)
        idx.build()
        return idx

    def test_exact_matches_brute_force(self, index, small_dataset, small_queries, brute_force_knn):
        for query in small_queries:
            _, truth_dist = brute_force_knn(small_dataset, query.series, k=1)
            result = index.knn_exact(query)
            assert result.nearest.distance == pytest.approx(truth_dist[0], abs=1e-4)

    def test_build_is_single_scan(self, small_dataset):
        store = SeriesStore(small_dataset)
        idx = AdsPlusIndex(store, leaf_capacity=25)
        idx.build()
        # ADS+ performs exactly one sequential pass over the raw file at build
        # time (it indexes summaries only).
        assert idx.index_stats.random_accesses == 1
        assert idx.index_stats.sequential_pages == store.total_pages

    def test_skip_sequential_accounting(self, index, small_queries):
        result = index.knn_exact(small_queries[0])
        # SIMS pays one random access per contiguous non-pruned run (plus the
        # approximate leaf read); with any pruning there are several skips.
        assert result.stats.random_accesses >= 1
        assert result.stats.lower_bounds_computed >= index.store.count

    def test_pruning_is_high_on_easy_queries(self, index, small_dataset):
        # A query equal to a stored series prunes almost everything.
        result = index.knn_exact(KnnQuery(series=small_dataset[3]))
        assert result.nearest.position == 3
        assert result.stats.pruning_ratio > 0.5

    def test_approximate_search(self, index, small_queries):
        result = index.knn_approximate(small_queries[0])
        assert result.neighbors
        assert result.stats.leaves_visited == 1

    def test_exact_knn3(self, index, small_dataset, small_queries, brute_force_knn):
        query = small_queries[1]
        _, truth_dist = brute_force_knn(small_dataset, query.series, k=3)
        result = index.knn_exact(KnnQuery(series=query.series, k=3))
        assert np.allclose(result.distances(), truth_dist, atol=1e-4)

    def test_describe_mentions_sims(self, index):
        assert index.describe()["exact_algorithm"] == "SIMS"

    def test_footprint_smaller_than_materialized_index(self, index):
        # ADS+ stores only summaries on disk.
        assert index.index_stats.disk_bytes < index.store.count * index.store.series_bytes
