"""Concurrent fork()/release()/slice() on all three storage backends.

The backend contract promises that forks are independent readers, slices are
independent views, and release() is advisory — so hammering all three from a
thread pool while readers stream data must produce byte-identical results and
no errors.  This is the satellite coverage for the robustness PR: the sharded
executor's recovery path forks stores from worker threads while other workers
are mid-scan.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import Dataset, SeriesStore
from repro.core.integrity import invalidate_manifest_cache

WORKERS = 8
ROUNDS = 12


@pytest.fixture(autouse=True)
def _fresh_manifest_cache():
    invalidate_manifest_cache()
    yield


def _dataset(tmp_path, kind):
    rng = np.random.default_rng(41)
    values = rng.standard_normal((512, 24)).astype(np.float32)
    base = Dataset(values=values, name=f"conc-{kind}")
    if kind == "memory":
        return base, values
    if kind == "mmap":
        return base.to_mmap(tmp_path / "conc.npy"), values
    dataset = base.to_compressed(tmp_path / "conc.rcz")
    # The compressed backend serves dequantized values; the reference is what
    # one clean sequential read returns.
    reference = SeriesStore(dataset).read_contiguous(0, 512)
    return dataset, reference


@pytest.mark.parametrize("kind", ["memory", "mmap", "compressed"])
def test_concurrent_fork_release_slice(tmp_path, kind):
    dataset, reference = _dataset(tmp_path, kind)
    store = SeriesStore(dataset)

    def worker(i):
        out = []
        for round_no in range(ROUNDS):
            op = (i + round_no) % 3
            if op == 0:
                reader = store.fork()
                data = reader.read_contiguous(0, 512)
                out.append(("fork", data))
                reader.backend.release()
            elif op == 1:
                lo = (i * 37 + round_no * 11) % 400
                hi = lo + 64
                view = store.slice(lo, hi)
                data = view.read_contiguous(0, hi - lo)
                out.append(("slice", lo, data))
                view.backend.release()
            else:
                store.backend.release()
                reader = store.fork()
                out.append(("row", reader.read_one((i * 13 + round_no) % 512)))
        return out

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        results = list(pool.map(worker, range(WORKERS)))

    for per_worker in results:
        for item in per_worker:
            if item[0] == "fork":
                np.testing.assert_array_equal(item[1], reference)
            elif item[0] == "slice":
                _, lo, data = item
                np.testing.assert_array_equal(data, reference[lo : lo + 64])


@pytest.mark.parametrize("kind", ["memory", "mmap", "compressed"])
def test_concurrent_forks_have_private_counters(tmp_path, kind):
    dataset, _ = _dataset(tmp_path, kind)
    store = SeriesStore(dataset)

    def worker(_):
        reader = store.fork()
        for _start, _chunk in reader.scan_chunks():
            pass
        return reader.counter

    with ThreadPoolExecutor(max_workers=WORKERS) as pool:
        counters = list(pool.map(worker, range(WORKERS)))

    reads = {c.series_read for c in counters}
    assert reads == {512}
    # The parent counter was never touched by the workers.
    assert store.counter.series_read == 0
