"""Cross-executor equivalence and resilience tests for the executor seam.

The central contract of ``executor="process"``: answers are **byte-identical**
to thread mode and to the unsharded method — for every storage backend, every
worker count, and every query type — because process mode changes *where*
shard tasks run, never *what* they compute.  On top of the identity grid this
file covers the per-worker counter protocol across the pickle boundary
(satellite: conservation thread vs process), shard planning on collections
smaller than the worker count (satellite: never emit empty shards), and
SIGKILL-resilience of the warm process pool (satellite: shard re-execution on
a fresh worker, ``allow_partial`` degradation).

Process pools come from the shared registry (one warm pool per worker count),
so the whole module pays the spawn cost once per pool shape; the module
teardown shuts them down.
"""

import pickle

import numpy as np
import pytest

from repro import (
    Dataset,
    SeriesStore,
    SimilaritySearchEngine,
    available_methods,
    create_method,
    load_method,
    save_method,
)
from repro.core.faults import FaultPlan, reset_crash_counters, take_kill_budget
from repro.core.parallel import (
    ProcessExecutor,
    ThreadExecutor,
    default_executor_kind,
    resolve_executor,
    shutdown_shared_executors,
)
from repro.core.queries import KnnQuery, RangeQuery
from repro.evaluation.runner import run_experiment
from repro.workloads import random_walk_dataset, synth_rand_workload

METHOD_PARAMS = {
    "dstree": {"leaf_capacity": 10},
    "isax2+": {"leaf_capacity": 10},
    "ads+": {"leaf_capacity": 10},
    "va+file": {"coefficients": 8, "bits_per_dimension": 3},
    "sfa-trie": {"leaf_capacity": 15, "coefficients": 6},
    "ucr-suite": {},
    "mass": {},
    "flat": {},
    "stepwise": {},
    "m-tree": {"node_capacity": 8},
    "r*-tree": {"leaf_capacity": 8, "segments": 4},
}

BACKENDS = ("memory", "mmap", "compressed", "growable-snapshot")
WORKER_COUNTS = (1, 2, 5)
SHARDS = 3


def _tie_values():
    """Seeded rows with exact duplicates so answers contain distance ties."""
    base = random_walk_dataset(120, 24, seed=71).values
    return np.vstack([base, base[:20]])


@pytest.fixture(scope="module", autouse=True)
def _shared_pools():
    """Let the module share warm process pools; shut them down at the end."""
    yield
    shutdown_shared_executors()


@pytest.fixture(scope="module")
def queries():
    values = _tie_values()
    workload = synth_rand_workload(values.shape[1], count=2, seed=73)
    rows = [np.asarray(q.series, dtype=np.float64) for q in workload]
    rows.append(values[5])  # self-query: its duplicate ties at distance zero
    rows.append(values[125])  # self-query on the duplicated tail
    return np.vstack(rows)


@pytest.fixture(scope="module")
def backend_store(request, tmp_path_factory):
    """Factory for a fresh store of ``kind`` over the shared tie dataset."""
    root = tmp_path_factory.mktemp("executor-backends")
    values = _tie_values()
    counter = {"n": 0}

    def make(kind: str) -> SeriesStore:
        dataset = Dataset(values=values.copy(), name=f"exec-{kind}")
        counter["n"] += 1
        n = counter["n"]
        if kind == "memory":
            return SeriesStore(dataset)
        if kind == "mmap":
            return SeriesStore(dataset.to_mmap(root / f"data-{n}.npy"))
        if kind == "compressed":
            return SeriesStore(
                dataset.to_compressed(root / f"data-{n}.rcz", qdtype="int16")
            )
        if kind == "growable-snapshot":
            store = SeriesStore(dataset.to_growable(root / f"grow-{n}"))
            return store.snapshot()
        raise ValueError(kind)

    return make


def assert_identical(a, b):
    """Positions AND distances must agree exactly (byte-identical answers)."""
    assert a.positions() == b.positions()
    assert a.distances() == b.distances()


class TestCrossExecutorIdentity:
    """Thread vs process vs unsharded over backends x workers x query types."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_identity_grid(self, backend_store, queries, backend, workers):
        plain = create_method("dstree", backend_store(backend), leaf_capacity=10)
        plain.build()
        built = {}
        for executor in ("thread", "process"):
            method = create_method(
                "sharded:dstree",
                backend_store(backend),
                shards=SHARDS,
                workers=workers,
                executor=executor,
                leaf_capacity=10,
            )
            method.build()
            built[executor] = method

        radius = None
        for q in queries:
            expected = plain.knn_exact(KnnQuery(series=q, k=5))
            if radius is None:  # a radius catching a handful of rows
                radius = expected.distances()[-1] + 1e-6
            for method in built.values():
                assert_identical(expected, method.knn_exact(KnnQuery(series=q, k=5)))
            expected_range = plain.range_exact(RangeQuery(series=q, radius=radius))
            for method in built.values():
                got = method.range_exact(RangeQuery(series=q, radius=radius))
                assert expected_range.positions() == got.positions()
                assert expected_range.distances() == got.distances()

        expected_batch = plain.knn_exact_batch(queries, k=3)
        for method in built.values():
            got = method.knn_exact_batch(queries, k=3)
            for e, g in zip(expected_batch, got):
                assert_identical(e, g)
        for method in built.values():
            method.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_epsilon_identity(self, backend_store, queries, backend):
        plain = create_method("m-tree", backend_store(backend), node_capacity=8)
        plain.build()
        built = {}
        for executor in ("thread", "process"):
            method = create_method(
                "sharded:m-tree",
                backend_store(backend),
                shards=SHARDS,
                workers=2,
                executor=executor,
                node_capacity=8,
            )
            method.build()
            built[executor] = method
        for q in queries:
            knn = KnnQuery(series=q, k=3)
            # epsilon=0 is exact: all three agree byte-for-byte.
            expected = plain.knn_epsilon(knn, 0.0)
            for method in built.values():
                assert_identical(expected, method.knn_epsilon(knn, 0.0))
            # epsilon>0 answers depend only on the shard partitioning, which
            # both executors share — thread and process must agree exactly.
            assert_identical(
                built["thread"].knn_epsilon(knn, 0.3),
                built["process"].knn_epsilon(knn, 0.3),
            )
        for method in built.values():
            method.close()

    def test_every_registered_method_process_identical(self, queries):
        """The full method panel answers identically on a process pool."""
        assert sorted(METHOD_PARAMS) == sorted(available_methods())
        values = _tie_values()
        for name, params in METHOD_PARAMS.items():
            plain = create_method(
                name, SeriesStore(Dataset(values=values, name="panel")), **params
            )
            plain.build()
            sharded = create_method(
                f"sharded:{name}",
                SeriesStore(Dataset(values=values, name="panel")),
                shards=SHARDS,
                workers=2,
                executor="process",
                **params,
            )
            sharded.build()
            for q in queries:
                assert_identical(
                    plain.knn_exact(KnnQuery(series=q, k=5)),
                    sharded.knn_exact(KnnQuery(series=q, k=5)),
                )
            sharded.close()


class TestCounterConservation:
    """The fork/merge accounting protocol holds across the pickle boundary."""

    @pytest.mark.parametrize("method_name", ["isax2+", "dstree"])
    def test_totals_match_thread_mode(self, tmp_path, queries, method_name):
        """workers=1 orders the fan-out, so both executors do identical work
        and every merged counter field must agree exactly — including the
        build's buffer-spill write/read halves and per-query read traffic.
        (Explicit build tasks force a worker-side rebuild, so a warm pool
        cannot make the process build look cheaper than the thread build.)"""
        values = np.vstack([random_walk_dataset(130, 24, seed=911).values] * 2)
        path = tmp_path / "conserve.npy"
        Dataset(values=values, name="conserve").to_mmap(path)
        totals = {}
        for executor in ("thread", "process"):
            store = SeriesStore(Dataset.from_file(path, name="conserve"))
            method = create_method(
                f"sharded:{method_name}",
                store,
                shards=SHARDS,
                workers=1,
                executor=executor,
                **METHOD_PARAMS[method_name],
            )
            method.build()
            for q in queries:
                method.knn_exact(KnnQuery(series=q, k=3))
            totals[executor] = store.counter
            method.close()
        thread, process = totals["thread"], totals["process"]
        assert process.bytes_read == thread.bytes_read
        assert process.series_read == thread.series_read
        assert process.random_accesses == thread.random_accesses
        assert process.sequential_pages == thread.sequential_pages
        assert process.bytes_written == thread.bytes_written
        assert process.physical_bytes_read == thread.physical_bytes_read
        assert thread.bytes_read > 0

    def test_retries_round_trip_from_workers(self, tmp_path, queries):
        """Transient-fault retries happen inside worker processes and must
        surface in the coordinator's merged counter via the task-result delta."""
        values = _tie_values()
        dataset = Dataset(values=values, name="faulty").to_mmap(tmp_path / "f.npy")
        store = SeriesStore(dataset, faults="seed=11,transient=0.3")
        method = create_method(
            "sharded:flat", store, shards=2, workers=2, executor="process"
        )
        method.build()
        method.knn_exact(KnnQuery(series=queries[0], k=3))
        assert store.counter.retries > 0

    def test_worker_cache_serves_queries_without_rebuild(self):
        """The per-worker index cache (keyed by content fingerprint + shard
        slice + method signature) lets repeated query tasks reuse the built
        index instead of rebuilding: a warm cache hit reads nothing and
        rebinds the cached method to the task's fresh store fork.  Explicit
        build tasks (``fresh=True``) always rebuild, so ``build()`` charges
        its cost identically in both executors."""
        from repro.indexes.sharded import _ShardTask, _WORKER_METHODS, _worker_method

        values = random_walk_dataset(40, 24, seed=917).values
        base = SeriesStore(Dataset(values=values, name="wcache"))
        key = ("unit-test-key", 0, 40, "dstree", ())
        _WORKER_METHODS.pop(key, None)
        try:
            task = _ShardTask(
                key=key,
                store=base.fork(),
                method_name="dstree",
                params={"leaf_capacity": 10},
                op="knn",
            )
            built = _worker_method(task)  # cold: builds and reads every row
            assert task.store.counter.series_read == values.shape[0]

            warm = _ShardTask(
                key=key,
                store=base.fork(),
                method_name="dstree",
                params={"leaf_capacity": 10},
                op="knn",
            )
            cached = _worker_method(warm)
            assert cached is built  # cache hit: no rebuild...
            assert warm.store.counter.series_read == 0  # ...and no reads
            assert cached.store is warm.store  # rebound to the fresh fork

            rebuild = _ShardTask(
                key=key,
                store=base.fork(),
                method_name="dstree",
                params={"leaf_capacity": 10},
                op="build",
                fresh=True,
            )
            rebuilt = _worker_method(rebuild)
            assert rebuilt is not built  # explicit builds never shortcut
            assert rebuild.store.counter.series_read == values.shape[0]
        finally:
            _WORKER_METHODS.pop(key, None)

    def test_query_stats_retries_count_reexecutions(self, queries):
        """QueryStats.retries reports process-mode shard re-executions."""
        values = _tie_values()
        store = SeriesStore(Dataset(values=values, name="kill"))
        method = create_method(
            "sharded:flat", store, shards=2, workers=2, executor="process"
        )
        method.build()
        reset_crash_counters()
        store.faults = FaultPlan(kill_worker=1)
        result = method.knn_exact(KnnQuery(series=queries[0], k=3))
        assert result.stats.retries > 0
        store.faults = None


class TestSmallCollections:
    """Shard planning never emits empty shards (satellite regression suite)."""

    def test_zero_row_collection_plans_no_shards(self, queries):
        dataset = Dataset(values=np.empty((0, 24)), name="empty")
        method = create_method("sharded:flat", SeriesStore(dataset), shards=4)
        assert method.shard_count == 0
        method.build()  # an empty build is a no-op, not an error

    def test_zero_row_collection_bootstraps_on_extend(self):
        """A method planned over 0 rows grows shards on its first extend."""
        values = _tie_values()
        backing = np.empty((0, 24))
        dataset = Dataset(values=values[:6].copy(), name="boot")
        method = create_method(
            "sharded:flat", SeriesStore(Dataset(values=backing, name="boot")), shards=2
        )
        method.build()
        assert method.shard_count == 0
        # Reattach a store that has grown rows, then extend from 0.
        method.store = SeriesStore(dataset)
        assert method.extend(0, 6) == 6
        assert method.shard_count == 2
        result = method.knn_exact(KnnQuery(series=values[3], k=1))
        assert result.positions() == [3]

    @pytest.mark.parametrize("rows", [1, 3])  # 1 row, workers-1 rows
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_tiny_collections_clamp_shards(self, rows, executor):
        values = _tie_values()[:rows]
        workers = 4
        # dstree computes distances row-wise, so identity is exact even at
        # 1-row shards (flat's vectorized scan has the documented last-ulp
        # tile-shape caveat, which degenerate shard shapes would trip).
        plain = create_method(
            "dstree", SeriesStore(Dataset(values=values, name="tiny")), leaf_capacity=2
        )
        plain.build()
        method = create_method(
            "sharded:dstree",
            SeriesStore(Dataset(values=values, name="tiny")),
            shards=workers,
            workers=workers,
            executor=executor,
            leaf_capacity=2,
        )
        method.build()
        assert method.shard_count == rows  # clamped: every shard is non-empty
        assert all(s.store.count > 0 for s in method._shards)
        q = values[0] + 0.25
        assert_identical(
            plain.knn_exact(KnnQuery(series=q, k=rows)),
            method.knn_exact(KnnQuery(series=q, k=rows)),
        )
        method.close()

    def test_reattach_smaller_store_raises_instead_of_stale_shards(self):
        """Re-attaching a store with fewer rows than shards must fail loudly
        (previously the zip silently left stale tail shards in place)."""
        values = _tie_values()
        method = create_method(
            "sharded:flat", SeriesStore(Dataset(values=values, name="shrink")), shards=4
        )
        method.build()
        small = SeriesStore(Dataset(values=values[:2].copy(), name="shrink"))
        with pytest.raises(ValueError, match="empty"):
            method.store = small


class TestProcessResilience:
    """SIGKILLed workers: shard re-execution, pool respawn, degraded answers."""

    def test_kill_budget_is_coordinator_side(self):
        reset_crash_counters()
        plan = FaultPlan(kill_worker=2)
        assert take_kill_budget(plan) is True
        assert take_kill_budget(plan) is True
        assert take_kill_budget(plan) is False  # budget spent
        assert take_kill_budget(None) is False
        reset_crash_counters()

    def test_killed_worker_during_build_recovers(self, queries):
        """A worker SIGKILLed mid-build breaks the pool; the build re-executes
        the lost shards on a respawned pool and completes."""
        reset_crash_counters()
        values = _tie_values()
        store = SeriesStore(Dataset(values=values, name="kb"), faults="kill_worker=1")
        method = create_method(
            "sharded:flat", store, shards=2, workers=2, executor="process"
        )
        method.build()
        plain = create_method("flat", SeriesStore(Dataset(values=values, name="kb")))
        plain.build()
        assert_identical(
            plain.knn_exact(KnnQuery(series=queries[0], k=3)),
            method.knn_exact(KnnQuery(series=queries[0], k=3)),
        )
        reset_crash_counters()

    def test_killed_worker_during_query_reexecutes_shard(self, queries):
        reset_crash_counters()
        values = _tie_values()
        store = SeriesStore(Dataset(values=values, name="kq"))
        method = create_method(
            "sharded:flat", store, shards=2, workers=2, executor="process"
        )
        method.build()
        plain = create_method("flat", SeriesStore(Dataset(values=values, name="kq")))
        plain.build()
        store.faults = FaultPlan(kill_worker=1)
        result = method.knn_exact(KnnQuery(series=queries[0], k=3))
        assert result.stats.retries > 0
        assert not result.stats.degraded
        assert_identical(plain.knn_exact(KnnQuery(series=queries[0], k=3)), result)
        store.faults = None
        reset_crash_counters()

    def test_exhausted_attempts_degrade_with_allow_partial(self, queries):
        """When every attempt is killed, allow_partial returns a degraded
        answer flagging the dropped shards instead of failing the query."""
        reset_crash_counters()
        values = _tie_values()
        store = SeriesStore(Dataset(values=values, name="kd"))
        method = create_method(
            "sharded:flat",
            store,
            shards=2,
            workers=2,
            executor="process",
            shard_attempts=2,
            allow_partial=True,
        )
        method.build()
        store.faults = FaultPlan(kill_worker=1_000_000)
        result = method.knn_exact(KnnQuery(series=queries[0], k=3))
        assert result.stats.degraded
        assert result.stats.shards_failed > 0
        store.faults = None
        reset_crash_counters()

    def test_exhausted_attempts_raise_without_allow_partial(self, queries):
        reset_crash_counters()
        values = _tie_values()
        store = SeriesStore(Dataset(values=values, name="kr"))
        method = create_method(
            "sharded:flat", store, shards=2, workers=2, executor="process"
        )
        method.build()
        store.faults = FaultPlan(kill_worker=1_000_000)
        with pytest.raises(Exception):
            method.knn_exact(KnnQuery(series=queries[0], k=3))
        store.faults = None
        reset_crash_counters()


class TestExecutorSeam:
    """The seam itself: resolution, env control, slots, plumbing, persistence."""

    def test_default_kind_follows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert default_executor_kind() == "thread"
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert default_executor_kind() == "process"
        monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            default_executor_kind()

    def test_resolve_executor(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert isinstance(resolve_executor(None, 2), ThreadExecutor)
        assert isinstance(resolve_executor("thread", 2), ThreadExecutor)
        process = resolve_executor("process", 2)
        assert isinstance(process, ProcessExecutor)
        assert process is resolve_executor("process", 2)  # shared registry
        custom = ThreadExecutor(3)
        assert resolve_executor(custom) is custom
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("fiber", 2)
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        method = create_method(
            "sharded:flat",
            SeriesStore(Dataset(values=_tie_values()[:10], name="env")),
            shards=2,
        )
        assert method.executor_kind == "process"

    def test_radius_slot_pool_and_overflow(self):
        executor = ProcessExecutor(workers=1, radius_slots=2)
        slots = executor.acquire_radius_slots(3)
        live = [s for s in slots if s is not None]
        assert len(live) == 2  # table exhausted: third slot is local-only
        assert slots.count(None) == 1
        for slot in live:
            assert executor.radius_value(slot) == float("inf")
        executor.release_radius_slots(slots)
        assert sorted(executor.acquire_radius_slots(2)) == sorted(live)
        executor.close()

    def test_worker_slot_factory_enforces_batch_contract(self):
        """The worker-side answer-set factory raises when an inner batch path
        creates more answer sets than queries (the thread path's contract
        check, mirrored across the pickle boundary)."""
        from repro.indexes.sharded import _slot_answer_factory

        factory = _slot_answer_factory([None, None])
        factory(3)
        factory(3)
        with pytest.raises(RuntimeError, match="one answer set per query"):
            factory(3)

    def test_thread_executor_has_no_slots(self):
        executor = ThreadExecutor(4)
        assert executor.acquire_radius_slots(3) == [None, None, None]
        executor.release_radius_slots([None, None, None])
        executor.close()

    def test_engine_and_runner_plumbing(self, queries):
        values = _tie_values()
        engine = SimilaritySearchEngine(
            Dataset(values=values, name="eng"), executor="process"
        )
        engine.build("sharded:flat", shards=2, workers=2)
        assert engine.method.executor_kind == "process"
        baseline = SimilaritySearchEngine(Dataset(values=values, name="eng"))
        baseline.build("flat")
        got = engine.search(queries[0], k=3)
        expected = baseline.search(queries[0], k=3)
        assert expected.positions() == got.positions()

        dataset = Dataset(values=values, name="run")
        workload = synth_rand_workload(values.shape[1], count=2, seed=79)
        result = run_experiment(
            dataset,
            workload,
            "sharded:flat",
            method_params={"shards": 2, "workers": 2},
            executor="process",
        )
        thread_result = run_experiment(
            dataset,
            workload,
            "sharded:flat",
            method_params={"shards": 2, "workers": 2},
            executor="thread",
        )
        assert [
            [(n.position, n.distance) for n in row] for row in result.answers
        ] == [[(n.position, n.distance) for n in row] for row in thread_result.answers]
        with pytest.raises(ValueError, match="sharded"):
            run_experiment(dataset, workload, "flat", executor="process")

    def test_describe_reports_executor(self):
        method = create_method(
            "sharded:flat",
            SeriesStore(Dataset(values=_tie_values()[:10], name="desc")),
            shards=2,
            executor="process",
        )
        assert method.describe()["executor"] == "process"

    def test_process_method_survives_pickle_and_persistence(self, tmp_path, queries):
        values = _tie_values()
        dataset = Dataset(values=values, name="persist")
        method = create_method(
            "sharded:flat", SeriesStore(dataset), shards=2, workers=2, executor="process"
        )
        method.build()
        expected = method.knn_exact(KnnQuery(series=queries[0], k=3))
        clone = pickle.loads(pickle.dumps(method))
        assert clone.executor_kind == "process"
        path = tmp_path / "proc.idx"
        save_method(method, path)
        loaded = load_method(path, dataset)
        assert loaded.executor_kind == "process"
        assert_identical(expected, loaded.knn_exact(KnnQuery(series=queries[0], k=3)))
        assert_identical(expected, method.knn_exact(KnnQuery(series=queries[0], k=3)))
