"""Tests for r-range queries and the M-tree's epsilon-approximate search."""

import numpy as np
import pytest

from repro import SeriesStore, create_method
from repro.core.distance import squared_euclidean_batch
from repro.core.queries import KnnQuery, RangeQuery
from repro.indexes.mtree import MTreeIndex

RANGE_METHODS = {
    "dstree": {"leaf_capacity": 25},
    "isax2+": {"leaf_capacity": 25},
    "va+file": {"coefficients": 8, "bits_per_dimension": 3},
    "m-tree": {"node_capacity": 8},
    "ucr-suite": {},   # exercises the base-class full-scan fallback
    "stepwise": {},    # also uses the fallback
}


def brute_force_range(dataset, query, radius):
    distances = np.sqrt(squared_euclidean_batch(query, dataset.values))
    return set(np.flatnonzero(distances <= radius).tolist())


@pytest.fixture(scope="module")
def built_methods(small_dataset):
    methods = {}
    for name, params in RANGE_METHODS.items():
        store = SeriesStore(small_dataset)
        method = create_method(name, store, **params)
        method.build()
        methods[name] = method
    return methods


class TestRangeQueries:
    @pytest.mark.parametrize("method_name", sorted(RANGE_METHODS))
    @pytest.mark.parametrize("radius_factor", [0.5, 1.0, 1.5])
    def test_range_matches_brute_force(
        self, method_name, radius_factor, built_methods, small_dataset, small_queries
    ):
        method = built_methods[method_name]
        query = small_queries[0]
        # Pick a radius relative to the 1-NN distance so the answer set is
        # sometimes empty, sometimes small, sometimes larger.
        distances = np.sqrt(squared_euclidean_batch(query.series, small_dataset.values))
        radius = float(np.min(distances)) * radius_factor + 1e-6
        expected = brute_force_range(small_dataset, query.series, radius)
        result = method.range_exact(RangeQuery(series=query.series, radius=radius))
        assert set(result.positions()) == expected, method_name

    @pytest.mark.parametrize("method_name", sorted(RANGE_METHODS))
    def test_range_zero_radius_self_query(self, method_name, built_methods, small_dataset):
        method = built_methods[method_name]
        result = method.range_exact(RangeQuery(series=small_dataset[3], radius=1e-5))
        assert 3 in result.positions()

    def test_range_distances_sorted_and_within_radius(self, built_methods, small_dataset, small_queries):
        method = built_methods["dstree"]
        query = small_queries[1]
        distances = np.sqrt(squared_euclidean_batch(query.series, small_dataset.values))
        radius = float(np.partition(distances, 10)[10])
        result = method.range_exact(RangeQuery(series=query.series, radius=radius))
        got = result.distances()
        assert got == sorted(got)
        assert all(d <= radius + 1e-6 for d in got)
        assert len(result) == len(got)

    def test_indexed_range_prunes(self, built_methods, small_dataset):
        """Tree-based range search examines fewer series than the collection."""
        method = built_methods["dstree"]
        result = method.range_exact(RangeQuery(series=small_dataset[0], radius=0.5))
        assert result.stats.series_examined < small_dataset.count

    def test_range_requires_build(self, small_dataset):
        method = create_method("dstree", SeriesStore(small_dataset), leaf_capacity=25)
        with pytest.raises(RuntimeError):
            method.range_exact(RangeQuery(series=small_dataset[0], radius=1.0))


class TestEpsilonApproximate:
    @pytest.fixture(scope="class")
    def mtree(self, tiny_dataset):
        index = MTreeIndex(SeriesStore(tiny_dataset), node_capacity=8)
        index.build()
        return index

    def test_epsilon_zero_is_exact(self, mtree, tiny_dataset, tiny_queries):
        for query in tiny_queries:
            exact = mtree.knn_exact(query).nearest.distance
            approx = mtree.knn_epsilon(query, epsilon=0.0).nearest.distance
            assert approx == pytest.approx(exact, abs=1e-6)

    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 2.0])
    def test_epsilon_guarantee_holds(self, mtree, tiny_queries, epsilon):
        """Returned distances never exceed (1 + epsilon) times the exact distance."""
        for query in tiny_queries:
            exact = mtree.knn_exact(query).nearest.distance
            approx = mtree.knn_epsilon(query, epsilon=epsilon).nearest.distance
            assert approx <= (1.0 + epsilon) * exact + 1e-6

    def test_larger_epsilon_prunes_more(self, mtree, tiny_queries):
        query = tiny_queries[0]
        tight = mtree.knn_epsilon(query, epsilon=0.0).stats.series_examined
        loose = mtree.knn_epsilon(query, epsilon=2.0).stats.series_examined
        assert loose <= tight

    def test_negative_epsilon_rejected(self, mtree, tiny_queries):
        with pytest.raises(ValueError):
            mtree.knn_epsilon(tiny_queries[0], epsilon=-0.1)

    def test_epsilon_with_k_greater_than_one(self, mtree, tiny_dataset, tiny_queries):
        query = KnnQuery(series=tiny_queries[0].series, k=3)
        exact = mtree.knn_exact(query).distances()
        approx = mtree.knn_epsilon(query, epsilon=0.25).distances()
        assert len(approx) == 3
        # The k-th approximate answer respects the epsilon bound on the k-th exact.
        assert approx[-1] <= (1.25) * exact[-1] + 1e-6
