"""Tests for index persistence (save / load with dataset fingerprinting)."""

import pytest

from repro import SeriesStore, create_method
from repro.core.persistence import (
    IndexEnvelope,
    dataset_fingerprint,
    load_method,
    save_method,
)
from repro.workloads import random_walk_dataset


class TestFingerprint:
    def test_stable_for_same_data(self, small_dataset):
        assert dataset_fingerprint(small_dataset) == dataset_fingerprint(small_dataset)

    def test_changes_with_content(self):
        a = random_walk_dataset(100, 32, seed=1)
        b = random_walk_dataset(100, 32, seed=2)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)

    def test_changes_with_shape(self):
        a = random_walk_dataset(100, 32, seed=1)
        b = random_walk_dataset(101, 32, seed=1)
        assert dataset_fingerprint(a) != dataset_fingerprint(b)


class TestSaveLoad:
    @pytest.mark.parametrize("method_name,params", [
        ("dstree", {"leaf_capacity": 25}),
        ("isax2+", {"leaf_capacity": 25}),
        ("va+file", {"coefficients": 8}),
    ])
    def test_roundtrip_preserves_answers(
        self, tmp_path, small_dataset, small_queries, method_name, params, brute_force_knn
    ):
        store = SeriesStore(small_dataset)
        method = create_method(method_name, store, **params)
        method.build()
        query = small_queries[0]
        before = method.knn_exact(query).nearest

        path = tmp_path / f"{method_name}.idx"
        envelope = save_method(method, path)
        assert isinstance(envelope, IndexEnvelope)
        assert envelope.method_name == method_name

        loaded = load_method(path, small_dataset)
        after = loaded.knn_exact(query).nearest
        assert after.position == before.position
        assert after.distance == pytest.approx(before.distance, abs=1e-6)
        # And the reloaded index stays exact.
        _, truth = brute_force_knn(small_dataset, query.series, k=1)
        assert after.distance == pytest.approx(truth[0], abs=1e-4)

    def test_save_requires_built_method(self, tmp_path, small_dataset):
        method = create_method("dstree", SeriesStore(small_dataset), leaf_capacity=25)
        with pytest.raises(ValueError):
            save_method(method, tmp_path / "unbuilt.idx")

    def test_save_does_not_detach_store(self, tmp_path, small_dataset, small_queries):
        store = SeriesStore(small_dataset)
        method = create_method("isax2+", store, leaf_capacity=25)
        method.build()
        save_method(method, tmp_path / "index.idx")
        # The original instance keeps working after a save.
        assert method.store is store
        assert method.knn_exact(small_queries[0]).neighbors

    def test_load_rejects_wrong_dataset(self, tmp_path, small_dataset):
        store = SeriesStore(small_dataset)
        method = create_method("va+file", store, coefficients=8)
        method.build()
        path = tmp_path / "index.idx"
        save_method(method, path)
        other = random_walk_dataset(small_dataset.count, small_dataset.length, seed=999)
        with pytest.raises(ValueError, match="fingerprint"):
            load_method(path, other)

    def test_load_rejects_garbage_file(self, tmp_path, small_dataset):
        path = tmp_path / "garbage.idx"
        import pickle

        path.write_bytes(pickle.dumps({"not": "an index"}))
        with pytest.raises(ValueError):
            load_method(path, small_dataset)

    def test_envelope_summary(self, tmp_path, small_dataset):
        store = SeriesStore(small_dataset)
        method = create_method("va+file", store, coefficients=8)
        method.build()
        envelope = save_method(method, tmp_path / "index.idx")
        summary = envelope.summary()
        assert summary["method"] == "va+file"
        assert summary["bytes"] > 0

    def test_index_file_smaller_than_raw_data_for_summary_methods(
        self, tmp_path, small_dataset
    ):
        """Summary-only methods (VA+file) persist far less than the raw data."""
        store = SeriesStore(small_dataset)
        method = create_method("va+file", store, coefficients=8)
        method.build()
        path = tmp_path / "index.idx"
        save_method(method, path)
        assert path.stat().st_size < small_dataset.nbytes
