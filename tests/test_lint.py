"""Tests for the ``repro lint`` invariant checker.

Every rule is exercised with at least one true-positive fixture (the
violation is caught) and one true-negative fixture (the sanctioned
pattern passes), plus the CLI contract: exit codes (0 clean / 1 findings
/ 2 usage), the ``--json`` schema, inline suppressions, and unknown-rule
errors.  Finally the *live tree* must lint clean — the same check CI runs.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import Linter, all_rules, lint_paths
from repro.cli import main


def lint(code: str, path: str, rules: list[str] | None = None):
    """Lint ``code`` as if it lived at ``path`` (repro-package-relative)."""
    registry = all_rules()
    selected = None if rules is None else [registry[name] for name in rules]
    findings, suppressed = Linter(selected).lint_source(textwrap.dedent(code), path)
    return findings, suppressed


def rule_names(findings) -> set[str]:
    return {finding.rule for finding in findings}


def test_all_rules_registered():
    names = set(all_rules())
    assert names == {
        "strict-pruning",
        "no-unseeded-rng",
        "atomic-writes",
        "no-bare-except",
        "pickle-boundary",
        "counter-conservation",
        "no-wall-clock",
        "mutable-default-args",
    }
    for rule in all_rules().values():
        assert rule.description
        assert rule.invariant
        assert rule.severity in ("error", "warning")


# --------------------------------------------------------------------------- #
# strict-pruning
# --------------------------------------------------------------------------- #


def test_strict_pruning_flags_tie_dropping_prune():
    findings, _ = lint(
        """
        def search(bound, threshold):
            if bound >= threshold:
                return None
        """,
        "repro/indexes/fake/index.py",
    )
    assert rule_names(findings) == {"strict-pruning"}
    assert findings[0].line == 3


def test_strict_pruning_flags_tie_dropping_survivor_test():
    findings, _ = lint(
        """
        def survivors(bounds, radius):
            return [b for b in bounds if b < radius]
        """,
        "repro/sequential/fake.py",
    )
    assert rule_names(findings) == {"strict-pruning"}


def test_strict_pruning_flags_reversed_operands():
    findings, _ = lint(
        """
        def search(bound, best_distance):
            if best_distance <= bound:
                return None
        """,
        "repro/indexes/fake.py",
    )
    assert rule_names(findings) == {"strict-pruning"}


def test_strict_pruning_accepts_strict_forms():
    findings, _ = lint(
        """
        def search(bound, threshold, radius, best_distance):
            if bound > threshold:
                return None
            if bound <= radius:
                return True
            if bound > best_distance:
                return None
        """,
        "repro/indexes/fake/index.py",
    )
    assert findings == []


def test_strict_pruning_ignores_constants_and_other_directories():
    # Validation against a literal is not a pruning decision.
    clean, _ = lint(
        """
        def validate(radius):
            if radius < 0:
                raise ValueError("radius must be non-negative")
        """,
        "repro/indexes/fake.py",
    )
    assert clean == []
    # The rule is scoped to indexes/ and sequential/.
    elsewhere, _ = lint(
        "def f(bound, threshold):\n    return bound >= threshold\n",
        "repro/core/fake.py",
    )
    assert "strict-pruning" not in rule_names(elsewhere)


# --------------------------------------------------------------------------- #
# no-unseeded-rng
# --------------------------------------------------------------------------- #


def test_unseeded_rng_flags_numpy_global_and_stdlib():
    findings, _ = lint(
        """
        import random
        import numpy as np

        def jitter():
            return np.random.random() + random.randint(0, 3)
        """,
        "repro/core/fake.py",
    )
    assert [f.rule for f in findings] == ["no-unseeded-rng", "no-unseeded-rng"]


def test_unseeded_rng_allows_generator_construction_and_workloads():
    clean, _ = lint(
        """
        import numpy as np

        def sample(rng=None):
            rng = rng or np.random.default_rng(7)
            return rng.random()
        """,
        "repro/core/fake.py",
    )
    assert clean == []
    workload, _ = lint(
        "import numpy as np\n\n\ndef gen():\n    return np.random.randn(4)\n",
        "repro/workloads/fake.py",
    )
    assert workload == []


# --------------------------------------------------------------------------- #
# atomic-writes
# --------------------------------------------------------------------------- #


def test_atomic_writes_flags_in_place_write():
    findings, _ = lint(
        """
        def save(path, payload):
            with open(path, "wb") as handle:
                handle.write(payload)
        """,
        "repro/core/persistence.py",
    )
    assert rule_names(findings) == {"atomic-writes"}


def test_atomic_writes_allows_writer_classes_reads_and_other_modules():
    writer, _ = lint(
        """
        class SeriesFileWriter:
            def start(self, tmp):
                self.handle = open(tmp, "wb")
        """,
        "repro/core/storage.py",
    )
    assert writer == []
    reads, _ = lint(
        "def load(path):\n    with open(path, 'rb') as h:\n        return h.read()\n",
        "repro/core/backends.py",
    )
    assert reads == []
    elsewhere, _ = lint(
        "def dump(path):\n    open(path, 'w').write('x')\n",
        "repro/evaluation/fake.py",
    )
    assert "atomic-writes" not in rule_names(elsewhere)


# --------------------------------------------------------------------------- #
# no-bare-except
# --------------------------------------------------------------------------- #


def test_bare_except_flags_bare_and_swallowing_handlers():
    findings, _ = lint(
        """
        def f():
            try:
                work()
            except:
                pass

        def g():
            try:
                work()
            except Exception:
                pass
        """,
        "repro/core/fake.py",
    )
    assert [f.rule for f in findings] == ["no-bare-except", "no-bare-except"]


def test_bare_except_allows_reraise_and_narrow_types():
    clean, _ = lint(
        """
        def f():
            try:
                work()
            except BaseException:
                cleanup()
                raise

        def g():
            try:
                work()
            except ValueError:
                return None
        """,
        "repro/core/fake.py",
    )
    assert clean == []


# --------------------------------------------------------------------------- #
# pickle-boundary
# --------------------------------------------------------------------------- #


def test_pickle_boundary_requires_getstate_on_boundary_classes():
    findings, _ = lint(
        """
        class SeriesStore:
            def __init__(self, data):
                self.data = data
        """,
        "repro/core/fake_storage.py",
    )
    assert rule_names(findings) == {"pickle-boundary"}


def test_pickle_boundary_accepts_getstate_and_plan_without_arrays():
    clean, _ = lint(
        """
        class MmapBackend:
            def __getstate__(self):
                return {"path": self.path}

        class _ShardTask:
            key: tuple
            method_name: str
            params: dict
        """,
        "repro/core/fake.py",
    )
    assert clean == []


def test_pickle_boundary_flags_ndarray_fields_on_task_plans():
    findings, _ = lint(
        """
        import numpy as np

        class _ShardTask:
            key: tuple
            rows: np.ndarray
        """,
        "repro/indexes/fake_sharded.py",
    )
    assert rule_names(findings) == {"pickle-boundary"}
    assert "ship a by-path store handle" in findings[0].message


# --------------------------------------------------------------------------- #
# counter-conservation
# --------------------------------------------------------------------------- #


def test_counter_conservation_flags_unaccounted_read_primitive():
    findings, _ = lint(
        """
        class SeriesStore:
            def read_one(self, position):
                return self.backend.row(position)

            def __getstate__(self):
                return {}
        """,
        "repro/core/storage.py",
    )
    assert rule_names(findings) == {"counter-conservation"}
    assert "read_one" in findings[0].message


def test_counter_conservation_accepts_accounting_delegation_and_peek():
    clean, _ = lint(
        """
        class SeriesStore:
            def _account_scan(self):
                self.counter.series_read += self.count

            def scan(self):
                self._account_scan()
                return self.backend.values

            def scan_chunks(self):
                self.counter.sequential_pages += 1
                yield from self.backend.chunks()

            def scan_blocks(self):
                yield from self.scan_chunks()

            def peek_chunks(self, positions):
                yield from self.backend.chunks(positions)

            def __getstate__(self):
                return {}
        """,
        "repro/core/storage.py",
    )
    assert clean == []


def test_counter_conservation_scoped_to_storage_module():
    elsewhere, _ = lint(
        """
        class SeriesStore:
            def read_one(self, position):
                return self.rows[position]

            def __getstate__(self):
                return {}
        """,
        "repro/core/other.py",
    )
    assert "counter-conservation" not in rule_names(elsewhere)


# --------------------------------------------------------------------------- #
# no-wall-clock
# --------------------------------------------------------------------------- #


def test_wall_clock_flags_time_time_and_datetime_now():
    findings, _ = lint(
        """
        import time
        import datetime

        def stamp():
            return time.time(), datetime.datetime.now()
        """,
        "repro/core/fake.py",
    )
    assert [f.rule for f in findings] == ["no-wall-clock", "no-wall-clock"]


def test_wall_clock_allows_perf_counter_measure_helpers_and_other_layers():
    clean, _ = lint(
        """
        import time

        def duration():
            return time.perf_counter()

        def measure_io_probe():
            return time.time()
        """,
        "repro/core/fake.py",
    )
    assert clean == []
    evaluation, _ = lint(
        "import time\n\n\ndef calibrate():\n    return time.time()\n",
        "repro/evaluation/hardware.py",
    )
    assert evaluation == []


# --------------------------------------------------------------------------- #
# mutable-default-args
# --------------------------------------------------------------------------- #


def test_mutable_defaults_flags_literals_constructors_and_kwonly():
    findings, _ = lint(
        """
        def f(items=[]):
            return items

        def g(*, mapping=dict()):
            return mapping

        h = lambda seen=set(): seen
        """,
        "repro/core/fake.py",
    )
    assert [f.rule for f in findings] == ["mutable-default-args"] * 3


def test_mutable_defaults_accepts_none_and_immutable_defaults():
    clean, _ = lint(
        """
        def f(items=None, k=1, name="x", shape=(2, 3)):
            items = items if items is not None else []
            return items, k, name, shape
        """,
        "repro/core/fake.py",
    )
    assert clean == []


# --------------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------------- #


def test_trailing_suppression_is_honored_and_counted():
    findings, suppressed = lint(
        """
        def f(items=[]):  # repro-lint: disable=mutable-default-args -- fixture
            return items
        """,
        "repro/core/fake.py",
    )
    assert findings == []
    assert suppressed == 1


def test_comment_block_suppression_covers_next_code_line():
    findings, suppressed = lint(
        """
        import time


        def stamp():
            # repro-lint: disable=no-wall-clock -- justification line one,
            # which continues on a second comment line.
            return time.time()
        """,
        "repro/core/fake.py",
    )
    assert findings == []
    assert suppressed == 1


def test_suppression_for_other_rule_does_not_apply():
    findings, suppressed = lint(
        """
        def f(items=[]):  # repro-lint: disable=no-wall-clock
            return items
        """,
        "repro/core/fake.py",
    )
    assert rule_names(findings) == {"mutable-default-args"}
    assert suppressed == 0


def test_disable_all_suppresses_every_rule_on_the_line():
    findings, suppressed = lint(
        """
        def f(items=[]):  # repro-lint: disable=all
            return items
        """,
        "repro/core/fake.py",
    )
    assert findings == []
    assert suppressed == 1


def test_syntax_error_reports_a_finding():
    findings, _ = lint("def broken(:\n", "repro/core/fake.py")
    assert rule_names(findings) == {"syntax-error"}


# --------------------------------------------------------------------------- #
# CLI contract
# --------------------------------------------------------------------------- #


def write_fixture(root: Path, rel: str, code: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return path


@pytest.fixture
def dirty_tree(tmp_path):
    write_fixture(
        tmp_path,
        "repro/indexes/fake.py",
        """
        def search(bound, threshold):
            if bound >= threshold:
                return None
        """,
    )
    return tmp_path / "repro"


@pytest.fixture
def clean_tree(tmp_path):
    write_fixture(
        tmp_path,
        "repro/indexes/fake.py",
        """
        def search(bound, threshold):
            if bound > threshold:
                return None
        """,
    )
    return tmp_path / "repro"


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_cli_exit_zero_on_clean_tree(clean_tree):
    code, output = run_cli("lint", str(clean_tree))
    assert code == 0
    assert "clean" in output


def test_cli_exit_one_on_findings(dirty_tree):
    code, output = run_cli("lint", str(dirty_tree))
    assert code == 1
    assert "strict-pruning" in output
    assert "1 finding(s)" in output


def test_cli_exit_two_on_unknown_rule(dirty_tree):
    code, output = run_cli("lint", str(dirty_tree), "--rules", "no-such-rule")
    assert code == 2
    assert "unknown rule(s): no-such-rule" in output
    assert "available:" in output


def test_cli_exit_two_on_missing_path():
    code, output = run_cli("lint", "/no/such/path-anywhere")
    assert code == 2
    assert "no such path" in output


def test_cli_rule_subset_only_runs_selected(dirty_tree):
    code, output = run_cli("lint", str(dirty_tree), "--rules", "mutable-default-args")
    assert code == 0  # the fixture violates strict-pruning, not this rule
    assert "clean" in output


def test_cli_json_schema(dirty_tree):
    code, output = run_cli("lint", str(dirty_tree), "--json")
    assert code == 1
    payload = json.loads(output)
    assert payload["version"] == 1
    assert payload["tool"] == "repro-lint"
    assert payload["files_scanned"] == 1
    assert payload["suppressed"] == 0
    assert set(payload["rules"]) == set(all_rules())
    assert payload["counts"] == {"strict-pruning": 1}
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message", "severity"}
    assert finding["rule"] == "strict-pruning"
    assert finding["severity"] == "error"
    assert finding["line"] == 3


def test_cli_json_to_file_keeps_text_output(dirty_tree, tmp_path):
    report_path = tmp_path / "LINT_report.json"
    code, output = run_cli("lint", str(dirty_tree), "--json", str(report_path))
    assert code == 1
    assert "strict-pruning" in output  # human-readable text still printed
    payload = json.loads(report_path.read_text())
    assert payload["counts"] == {"strict-pruning": 1}


def test_cli_list_rules():
    code, output = run_cli("lint", "--list-rules")
    assert code == 0
    for name in all_rules():
        assert name in output
    assert "invariant:" in output


# --------------------------------------------------------------------------- #
# the live tree
# --------------------------------------------------------------------------- #


def test_live_tree_is_clean():
    """The shipped package must satisfy its own invariants (the CI gate)."""
    package_root = Path(repro.__file__).resolve().parent
    report = lint_paths([package_root])
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"repro lint found violations in the live tree:\n{rendered}"
    assert report.files_scanned > 50
