"""Tests for the parallel sharded execution engine.

Covers the ``ShardedMethod`` wrapper (partition-parallel builds, shard
fan-out with a shared best-so-far radius, deterministic answer merging), the
``core.parallel`` helpers, the thread-safe ``BufferPool``, the engine/runner
``workers=`` dispatch, and persistence of sharded indexes.  The central
contract: ``ShardedMethod(m, shards=S, workers=W)`` returns exactly ``m``'s
answers — including distance ties, ``k`` larger than a shard, range and
epsilon queries — for every registered method and every worker count.
"""

import threading

import numpy as np
import pytest

from repro import (
    Dataset,
    SeriesStore,
    SimilaritySearchEngine,
    available_methods,
    create_method,
    load_method,
    parallel_batch_search,
    save_method,
)
from repro.core.answers import KnnAnswerSet
from repro.core.buffer import BufferPool
from repro.core.parallel import SharedRadius, chunk_slices, parallel_map, resolve_workers
from repro.core.queries import KnnQuery, RangeQuery
from repro.indexes.sharded import ShardedMethod
from repro.workloads import random_walk_dataset, synth_rand_workload

SHARDED_METHOD_PARAMS = {
    "dstree": {"leaf_capacity": 10},
    "isax2+": {"leaf_capacity": 10},
    "ads+": {"leaf_capacity": 10},
    "va+file": {"coefficients": 8, "bits_per_dimension": 3},
    "sfa-trie": {"leaf_capacity": 15, "coefficients": 6},
    "ucr-suite": {},
    "mass": {},
    "flat": {},
    "stepwise": {},
    "m-tree": {"node_capacity": 8},
    "r*-tree": {"leaf_capacity": 8, "segments": 4},
}

#: methods whose batch path is a vectorized GEMM kernel — distances may move
#: in the final ulp between tile shapes (the documented batch-API caveat).
VECTOR_BATCH = {"flat", "mass"}

SHARDS = 3
WORKERS = 2


@pytest.fixture(scope="module")
def tie_dataset():
    """Seeded dataset with exact duplicates so k-NN answers contain ties."""
    base = random_walk_dataset(140, 32, seed=61).values
    values = np.vstack([base, base[:20]])  # the first 20 series appear twice
    return Dataset(values=values, name="sharded-ties")


@pytest.fixture(scope="module")
def queries(tie_dataset):
    workload = synth_rand_workload(tie_dataset.length, count=3, seed=63)
    rows = [q.series for q in workload]
    rows.append(tie_dataset.values[7])  # self-query: duplicates tie at zero
    rows.append(tie_dataset.values[150])  # self-query on the duplicated tail
    return np.vstack([np.asarray(q, dtype=np.float64) for q in rows])


@pytest.fixture(scope="module")
def built_pairs(tie_dataset):
    """(plain, sharded) instances of every registered method, built once."""
    pairs = {}
    for name, params in SHARDED_METHOD_PARAMS.items():
        plain = create_method(name, SeriesStore(tie_dataset), **params)
        plain.build()
        sharded = create_method(
            f"sharded:{name}",
            SeriesStore(tie_dataset),
            shards=SHARDS,
            workers=WORKERS,
            **params,
        )
        sharded.build()
        pairs[name] = (plain, sharded)
    return pairs


def assert_identical(a, b):
    """Positions AND distances must agree exactly (byte-identical answers)."""
    assert a.positions() == b.positions()
    assert a.distances() == b.distances()


class TestShardedEquivalence:
    def test_all_registered_methods_covered(self):
        assert sorted(SHARDED_METHOD_PARAMS) == sorted(available_methods())

    @pytest.mark.parametrize("method_name", sorted(SHARDED_METHOD_PARAMS))
    @pytest.mark.parametrize("k", [1, 5])
    def test_knn_byte_identical(self, built_pairs, queries, method_name, k):
        plain, sharded = built_pairs[method_name]
        for q in queries:
            assert_identical(
                plain.knn_exact(KnnQuery(series=q, k=k)),
                sharded.knn_exact(KnnQuery(series=q, k=k)),
            )

    @pytest.mark.parametrize("method_name", sorted(SHARDED_METHOD_PARAMS))
    def test_k_larger_than_shard(self, built_pairs, queries, method_name):
        """k = 70 exceeds each ~53-series shard, so every shard under-fills."""
        plain, sharded = built_pairs[method_name]
        q = KnnQuery(series=queries[0], k=70)
        assert_identical(plain.knn_exact(q), sharded.knn_exact(q))

    @pytest.mark.parametrize("method_name", sorted(SHARDED_METHOD_PARAMS))
    def test_batch_matches_plain_batch(self, built_pairs, queries, method_name):
        plain, sharded = built_pairs[method_name]
        b1 = plain.knn_exact_batch(queries, k=4)
        b2 = sharded.knn_exact_batch(queries, k=4)
        for x, y in zip(b1, b2):
            assert x.positions() == y.positions()
            if method_name in VECTOR_BATCH:
                np.testing.assert_allclose(
                    x.distances(), y.distances(), rtol=1e-9, atol=1e-6
                )
            else:
                assert x.distances() == y.distances()

    @pytest.mark.parametrize(
        "method_name", ["dstree", "isax2+", "va+file", "m-tree", "ucr-suite", "stepwise"]
    )
    @pytest.mark.parametrize("radius_factor", [0.5, 1.0, 1.5])
    def test_range_byte_identical(
        self, built_pairs, tie_dataset, queries, method_name, radius_factor
    ):
        plain, sharded = built_pairs[method_name]
        query = queries[1]
        diffs = tie_dataset.values.astype(np.float64) - query
        radius = float(np.sqrt(np.einsum("ij,ij->i", diffs, diffs).min())) * radius_factor + 1e-6
        r1 = plain.range_exact(RangeQuery(series=query, radius=radius))
        r2 = sharded.range_exact(RangeQuery(series=query, radius=radius))
        assert r1.positions() == r2.positions()
        assert r1.distances() == r2.distances()

    def test_epsilon_zero_byte_identical(self, built_pairs, queries):
        plain, sharded = built_pairs["m-tree"]
        q = KnnQuery(series=queries[3], k=5)
        assert_identical(plain.knn_epsilon(q, 0.0), sharded.knn_epsilon(q, 0.0))

    def test_epsilon_guarantee_holds_sharded(self, built_pairs, tie_dataset, queries):
        _, sharded = built_pairs["m-tree"]
        epsilon = 0.5
        for q in queries:
            knn = KnnQuery(series=q, k=3)
            result = sharded.knn_epsilon(knn, epsilon)
            diffs = tie_dataset.values.astype(np.float64) - np.asarray(q)
            exact_kth = float(
                np.sqrt(np.partition(np.einsum("ij,ij->i", diffs, diffs), 2)[2])
            )
            assert all(d <= (1 + epsilon) * exact_kth + 1e-9 for d in result.distances())

    def test_epsilon_unsupported_inner_raises(self, built_pairs, queries):
        _, sharded = built_pairs["flat"]
        with pytest.raises(NotImplementedError):
            sharded.knn_epsilon(KnnQuery(series=queries[0], k=1), 0.1)

    def test_approximate_search_merges_shard_leaves(self, built_pairs, queries):
        plain, sharded = built_pairs["isax2+"]
        assert sharded.supports_approximate
        result = sharded.knn_approximate(KnnQuery(series=queries[3], k=1))
        # The self-query's duplicate pair sits in some shard's leaf; the
        # merged multi-shard descent must find a zero-distance answer.
        assert result.distances()[0] == pytest.approx(0.0, abs=1e-6)
        assert plain.knn_approximate(KnnQuery(series=queries[3], k=1)).neighbors


class TestWorkerInvarianceAndStats:
    def test_worker_count_does_not_change_answers(self, tie_dataset, queries):
        """workers=1 and workers=4 return byte-identical answers.

        (Work *stats* may legitimately differ with timing: the shared radius
        is a performance hint whose pruning depends on publication order.)
        """
        results = []
        for workers in (1, 4):
            method = create_method(
                "sharded:dstree",
                SeriesStore(tie_dataset),
                shards=4,
                workers=workers,
                leaf_capacity=10,
            )
            method.build()
            for q in queries:
                results.append(method.knn_exact(KnnQuery(series=q, k=5)))
        half = len(results) // 2
        for a, b in zip(results[:half], results[half:]):
            assert_identical(a, b)

    def test_sequential_fanout_stats_deterministic(self, tie_dataset, queries):
        """With workers=1 the fan-out is ordered, so stats are reproducible."""
        runs = []
        for _ in range(2):
            method = create_method(
                "sharded:isax2+",
                SeriesStore(tie_dataset),
                shards=SHARDS,
                workers=1,
                leaf_capacity=10,
            )
            method.build()
            runs.append(method.knn_exact(KnnQuery(series=queries[0], k=3)).stats)
        a, b = runs
        assert a.series_examined == b.series_examined
        assert a.leaves_visited == b.leaves_visited
        assert a.random_accesses == b.random_accesses

    def test_stats_totals_are_shard_sums(self, tie_dataset, queries):
        """Merged QueryStats are the exact sum of the per-shard searches."""
        sharded = create_method(
            "sharded:isax2+",
            SeriesStore(tie_dataset),
            shards=SHARDS,
            workers=1,
            leaf_capacity=10,
        )
        sharded.build()
        merged = sharded.knn_exact(KnnQuery(series=queries[0], k=3)).stats

        # Independent shard runs (no shared radius) bound the merged totals
        # from above, and every shard contributes at least its seeded leaf.
        independent_leaves = 0
        for shard in sharded._shards:
            result = shard.method.knn_exact(KnnQuery(series=queries[0], k=3))
            independent_leaves += result.stats.leaves_visited
        assert sharded.shard_count <= merged.leaves_visited <= independent_leaves
        assert 0 < merged.series_examined <= tie_dataset.count
        assert merged.dataset_size == tie_dataset.count
        # The store-level roll-up matches the per-query charge.
        before = sharded.store.counter.snapshot()
        result = sharded.knn_exact(KnnQuery(series=queries[1], k=3))
        delta = sharded.store.counter.diff(before)
        assert result.stats.random_accesses == delta.random_accesses
        assert result.stats.bytes_read == delta.bytes_read

    def test_shared_radius_tightens_pruning(self, tie_dataset):
        """A self-query's zero radius must spread: other shards prune to ~0."""
        sharded = create_method(
            "sharded:dstree",
            SeriesStore(tie_dataset),
            shards=SHARDS,
            workers=1,
            leaf_capacity=10,
        )
        sharded.build()
        stats = sharded.knn_exact(KnnQuery(series=tie_dataset.values[7], k=1)).stats
        # Without radius sharing every shard would scan at least one leaf plus
        # every tied leaf; with sharing the total stays far below a full scan.
        assert stats.series_examined < tie_dataset.count / 2

    def test_shared_radius_applies_to_batch_path(self, tie_dataset):
        """Batch queries carry per-query radii: self-queries prune cross-shard."""
        sharded = create_method(
            "sharded:dstree",
            SeriesStore(tie_dataset),
            shards=SHARDS,
            workers=1,
            leaf_capacity=10,
        )
        sharded.build()
        batch = sharded.knn_exact_batch(tie_dataset.values[[7, 30]], k=1)
        for result in batch:
            assert result.distances()[0] == 0.0
            assert result.stats.series_examined < tie_dataset.count / 2

    def test_batch_factory_contract_violation_raises(self, tie_dataset):
        """An inner batch path creating extra answer sets must fail loudly.

        Pinned to the thread executor: the monkeypatched inner method cannot
        cross the pickle boundary (process workers rebuild their own); the
        worker-side half of the same contract is unit-tested in
        test_executors.py.
        """
        sharded = create_method(
            "sharded:flat",
            SeriesStore(tie_dataset),
            shards=2,
            workers=1,
            executor="thread",
        )
        sharded.build()
        inner = sharded._shards[0].method

        def greedy_batch(queries, k):
            inner._make_answer_set(k)  # one extra set beyond one-per-query
            sets = [inner._make_answer_set(k) for _ in range(queries.shape[0])]
            from repro.core.stats import QueryStats

            return sets, [QueryStats() for _ in sets]

        inner._batch_answer_sets = greedy_batch
        with pytest.raises(RuntimeError, match="one answer set per query"):
            sharded.knn_exact_batch(tie_dataset.values[:2], k=1)

    def test_build_stats_aggregate_shards(self, built_pairs, tie_dataset):
        plain, sharded = built_pairs["isax2+"]
        assert sharded.index_stats.leaf_nodes > 0
        assert len(sharded.index_stats.leaf_fill_factors) == sharded.index_stats.leaf_nodes
        assert sharded.index_stats.disk_bytes == plain.index_stats.disk_bytes
        assert sharded.index_stats.method == "sharded:isax2+"
        # Build I/O rolled up from every shard: at least one scan of the data.
        assert sharded.index_stats.sequential_pages > 0


class TestShardedConfiguration:
    def test_shards_clamped_to_collection(self):
        dataset = random_walk_dataset(10, 16, seed=3)
        method = create_method("sharded:flat", SeriesStore(dataset), shards=64, workers=2)
        method.build()
        assert method.shard_count == 10
        result = method.knn_exact(KnnQuery(series=dataset.values[4], k=3))
        assert result.positions()[0] == 4

    def test_nested_sharding_rejected(self, tie_dataset):
        with pytest.raises(ValueError):
            ShardedMethod(SeriesStore(tie_dataset), inner="sharded:flat")

    def test_unknown_inner_raises_keyerror(self, tie_dataset):
        with pytest.raises(KeyError):
            create_method("sharded:nope", SeriesStore(tie_dataset))

    def test_bare_sharded_name_with_inner_param(self, tie_dataset):
        method = create_method("sharded", SeriesStore(tie_dataset), inner="iSAX2+",
                               shards=2, workers=1, leaf_capacity=10)
        assert method.inner_name == "isax2+"  # inner= is case-insensitive
        with pytest.raises(ValueError):  # prefix and inner= must not conflict
            create_method("sharded:flat", SeriesStore(tie_dataset), inner="flat")

    def test_close_releases_and_recreates_pool(self, tie_dataset, queries):
        # Pinned to the thread executor: shared process executors are owned
        # by the registry and deliberately survive method.close().
        method = create_method(
            "sharded:flat",
            SeriesStore(tie_dataset),
            shards=2,
            workers=2,
            executor="thread",
        )
        method.build()
        first = method.knn_exact(KnnQuery(series=queries[0], k=3))
        assert method.executor._pool is not None
        method.close()
        assert method.executor._pool is None
        method.close()  # idempotent
        again = method.knn_exact(KnnQuery(series=queries[0], k=3))  # still usable
        assert_identical(first, again)

    def test_invalid_worker_and_shard_counts(self, tie_dataset):
        with pytest.raises(ValueError):
            create_method("sharded:flat", SeriesStore(tie_dataset), shards=0)
        with pytest.raises(ValueError):
            create_method("sharded:flat", SeriesStore(tie_dataset), workers=0)

    def test_append_rejects_already_indexed_rows(self, built_pairs):
        # Appends route to the tail shard and must pick up exactly where the
        # indexed rows end — re-appending row 0 is a contract violation.
        _, sharded = built_pairs["isax2+"]
        with pytest.raises(ValueError, match="indexed row count"):
            sharded.append(0)

    def test_describe_reports_topology(self, built_pairs):
        _, sharded = built_pairs["dstree"]
        info = sharded.describe()
        assert info["inner"] == "dstree"
        assert info["shards"] == SHARDS
        assert info["workers"] == WORKERS

    def test_persistence_roundtrip(self, tie_dataset, queries, tmp_path):
        sharded = create_method(
            "sharded:isax2+",
            SeriesStore(tie_dataset),
            shards=SHARDS,
            workers=WORKERS,
            leaf_capacity=10,
        )
        sharded.build()
        expected = sharded.knn_exact(KnnQuery(series=queries[0], k=5))
        path = tmp_path / "sharded.idx"
        envelope = save_method(sharded, path)
        # Shard stores are detached before pickling: no raw data in the file.
        assert tie_dataset.values[60:90].tobytes() not in envelope.method_state
        loaded = load_method(path, tie_dataset)
        assert_identical(expected, loaded.knn_exact(KnnQuery(series=queries[0], k=5)))
        # The live instance keeps working after the save detach/re-attach.
        assert_identical(expected, sharded.knn_exact(KnnQuery(series=queries[0], k=5)))


class TestEngineAndRunnerWorkers:
    def test_engine_search_batch_workers_identical(self, tie_dataset, queries):
        engine = SimilaritySearchEngine(tie_dataset)
        engine.build("sharded:dstree", shards=SHARDS, workers=WORKERS, leaf_capacity=10)
        sequential = engine.search_batch(queries, k=3)
        parallel = engine.search_batch(queries, k=3, workers=4)
        for a, b in zip(sequential, parallel):
            assert_identical(a, b)

    def test_parallel_batch_search_plain_method(self, tie_dataset, queries):
        method = create_method("dstree", SeriesStore(tie_dataset), leaf_capacity=10)
        method.build()
        sequential = method.knn_exact_batch(queries, k=3)
        parallel = parallel_batch_search(method, queries, k=3, workers=3)
        for a, b in zip(sequential, parallel):
            assert_identical(a, b)

    def test_parallel_batch_search_accounting_rolls_up(self, tie_dataset, queries):
        method = create_method("dstree", SeriesStore(tie_dataset), leaf_capacity=10)
        method.build()
        before = method.store.counter.snapshot()
        results = parallel_batch_search(method, queries, k=3, workers=3)
        delta = method.store.counter.diff(before)
        # Worker-local counters were merged back: per-query charges sum to the
        # store-level delta.
        assert sum(r.stats.random_accesses for r in results) == delta.random_accesses
        assert sum(r.stats.bytes_read for r in results) == delta.bytes_read

    def test_runner_workers_matches_sequential(self, tie_dataset):
        from repro.evaluation import HDD, run_experiment

        workload = synth_rand_workload(tie_dataset.length, count=4, seed=71)
        base = run_experiment(tie_dataset, workload, "flat", platform=HDD)
        threaded = run_experiment(tie_dataset, workload, "flat", platform=HDD, workers=3)
        for a, b in zip(base.answers, threaded.answers):
            assert [n.position for n in a] == [n.position for n in b]

    def test_cli_sharded_run_and_workers(self, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--method",
                "sharded:isax2+",
                "--count",
                "200",
                "--length",
                "32",
                "--queries",
                "4",
                "--workers",
                "2",
                "--shards",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded:isax2+" in out

    def test_cli_rejects_unknown_sharded_inner(self, capsys):
        from repro.cli import main

        code = main(["run", "--method", "sharded:nope", "--count", "50", "--length", "16"])
        assert code == 2

    def test_cli_rejects_shards_on_unsharded_method(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "--method", "isax2+", "--count", "50", "--length", "16", "--shards", "4"]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "sharded:isax2+" in out


class TestParallelPrimitives:
    def test_resolve_workers(self, monkeypatch):
        assert resolve_workers(3) == 3
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5
        monkeypatch.delenv("REPRO_WORKERS")
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_chunk_slices_partition_exactly(self):
        for total, parts in [(10, 3), (7, 7), (5, 9), (100, 4), (1, 1)]:
            slices = chunk_slices(total, parts)
            assert slices[0].start == 0 and slices[-1].stop == total
            covered = [i for sl in slices for i in range(sl.start, sl.stop)]
            assert covered == list(range(total))
            sizes = [sl.stop - sl.start for sl in slices]
            assert max(sizes) - min(sizes) <= 1
        assert chunk_slices(0, 4) == []

    def test_parallel_map_orders_and_propagates(self):
        assert parallel_map(lambda x: x * x, range(20), workers=4) == [
            x * x for x in range(20)
        ]
        with pytest.raises(RuntimeError):
            parallel_map(lambda x: (_ for _ in ()).throw(RuntimeError("boom")), [1, 2], 2)

    def test_shared_radius_monotone_under_threads(self):
        shared = SharedRadius()
        values = [float(v) for v in np.random.default_rng(5).random(400) * 100]

        def publish(chunk):
            for v in chunk:
                shared.tighten(v)

        parallel_map(publish, [values[i::4] for i in range(4)], workers=4)
        assert shared.value == min(values)
        assert not shared.tighten(min(values) + 1.0)

    def test_store_fork_isolates_counters(self, tie_dataset):
        store = SeriesStore(tie_dataset)
        fork = store.fork()
        fork.scan()
        assert store.counter.sequential_pages == 0
        assert fork.counter.sequential_pages > 0
        store.counter.merge(fork.counter)
        assert store.counter.sequential_pages == fork.counter.sequential_pages


class TestAnswerSetTieDeterminism:
    def test_position_breaks_distance_ties(self):
        answers = KnnAnswerSet(2)
        answers.offer(9, 1.0)
        answers.offer(4, 1.0)
        answers.offer(7, 1.0)  # ties at the k-th distance: smallest positions win
        assert answers.positions() == [4, 7]

    def test_tie_break_is_offer_order_independent(self):
        rng = np.random.default_rng(13)
        offers = [(int(p), float(d)) for p, d in zip(range(40), np.repeat([1.0, 2.0], 20))]
        expected = None
        for _ in range(5):
            rng.shuffle(offers)
            answers = KnnAnswerSet(25)
            for p, d in offers:
                answers.offer(p, d)
            got = answers.positions()
            expected = got if expected is None else expected
            assert got == expected
        assert expected == sorted(expected)

    def test_offer_batch_ties_match_scalar_loop(self):
        positions = np.arange(50)
        distances = np.repeat([3.0, 1.0, 2.0, 1.0, 3.0], 10)
        scalar = KnnAnswerSet(12)
        for p, d in zip(positions, distances):
            scalar.offer(int(p), float(d))
        batched = KnnAnswerSet(12)
        batched.offer_batch(positions, distances)
        assert scalar.positions() == batched.positions()
        assert scalar.distances() == batched.distances()

    def test_merge_with_offset_matches_single_set(self):
        rng = np.random.default_rng(17)
        distances = np.round(rng.random(60) * 4, 1)  # rounding creates ties
        reference = KnnAnswerSet(8)
        reference.offer_batch(np.arange(60), distances)
        merged = KnnAnswerSet(8)
        for start, stop in [(0, 20), (20, 45), (45, 60)]:
            part = KnnAnswerSet(8)
            part.offer_batch(np.arange(stop - start), distances[start:stop])
            merged.merge(part, position_offset=start)
        assert merged.positions() == reference.positions()
        assert merged.distances() == reference.distances()

    def test_squared_items_sorted(self):
        answers = KnnAnswerSet(3)
        answers.offer(5, 4.0)
        answers.offer(2, 1.0)
        answers.offer(9, 1.0)
        assert answers.squared_items() == [(1.0, 2), (1.0, 9), (4.0, 5)]


class TestBufferPoolThreadSafety:
    def test_concurrent_adds_account_exactly(self):
        pool = BufferPool(capacity_series=None)
        threads = [
            threading.Thread(
                target=lambda t=t: [pool.add(("node", t, i % 7)) for i in range(500)]
            )
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert pool.stats.series_buffered == 2000
        assert pool.in_memory_series == 2000
        assert pool.flush_all() == 2000

    def test_concurrent_adds_with_spills_conserve_series(self):
        pool = BufferPool(capacity_series=50, series_bytes=8, page_series=16)
        threads = [
            threading.Thread(
                target=lambda t=t: [pool.add((t, i % 13), 2) for i in range(300)]
            )
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every buffered series is either still in memory or was spilled.
        assert pool.stats.series_buffered == 4 * 300 * 2
        assert pool.stats.series_spilled + pool.in_memory_series == pool.stats.series_buffered
        assert pool.in_memory_series <= 50 + 2  # at most one add over capacity
        assert pool.counter.bytes_written == pool.stats.series_spilled * 8

    def test_pool_survives_pickle(self):
        import pickle

        pool = BufferPool(capacity_series=10)
        pool.add("a", 3)
        clone = pickle.loads(pickle.dumps(pool))
        clone.add("b", 4)  # the lock was recreated
        assert clone.buffered("a") == 3
        assert clone.buffered("b") == 4
