"""Tests for the vectorized batch-query execution layer.

Covers the array-native lower-bound kernels (SAX, EAPCA, SFA), the
O(n + k log k) answer-set batch offers, and the ``search_batch`` /
``knn_exact_batch`` API: for every registered method the batch results must
match the per-query results, including ties and ``k > leaf_capacity``.
"""

import numpy as np
import pytest

from repro import Dataset, SeriesStore, SimilaritySearchEngine, available_methods, create_method
from repro.core.answers import KnnAnswerSet, RangeAnswerSet
from repro.core.distance import early_abandon_reordered, early_abandon_squared, squared_euclidean
from repro.core.queries import KnnQuery
from repro.indexes.isax import Isax2PlusIndex
from repro.summarization.eapca import (
    query_segment_stats,
    stack_synopses,
    synopses_lower_bounds,
)
from repro.summarization.sax import IsaxSummarizer, stack_words
from repro.workloads import random_walk_dataset, synth_rand_workload

BATCH_METHOD_PARAMS = {
    "dstree": {"leaf_capacity": 10},
    "isax2+": {"leaf_capacity": 10},
    "ads+": {"leaf_capacity": 10},
    "va+file": {"coefficients": 8, "bits_per_dimension": 3},
    "sfa-trie": {"leaf_capacity": 15, "coefficients": 6},
    "ucr-suite": {},
    "mass": {},
    "flat": {},
    "stepwise": {},
    "m-tree": {"node_capacity": 8},
    "r*-tree": {"leaf_capacity": 8, "segments": 4},
}


@pytest.fixture(scope="module")
def batch_dataset():
    """Seeded dataset with deliberate exact duplicates (distance ties)."""
    base = random_walk_dataset(140, 32, seed=41).values
    values = np.vstack([base, base[:20]])  # the first 20 series appear twice
    return Dataset(values=values, name="batch-ties")


@pytest.fixture(scope="module")
def batch_queries(batch_dataset):
    workload = synth_rand_workload(batch_dataset.length, count=4, seed=43)
    queries = [q.series for q in workload]
    queries.append(batch_dataset.values[7])  # a self-query hits the tie pair
    return np.vstack([np.asarray(q, dtype=np.float64) for q in queries])


def assert_results_equivalent(single, batch):
    """Positions and distances must agree; exact ties may permute positions."""
    assert len(single) == len(batch)
    for a, b in zip(single, batch):
        da, db = np.asarray(a.distances()), np.asarray(b.distances())
        assert da.shape == db.shape
        np.testing.assert_allclose(da, db, rtol=1e-9, atol=1e-9)
        pa, pb = a.positions(), b.positions()
        if pa != pb:
            # Only exactly tied distances may swap positions between paths.
            for i, (x, y) in enumerate(zip(pa, pb)):
                if x != y:
                    tied_a = {p for p, d in zip(pa, da) if d == da[i]}
                    tied_b = {p for p, d in zip(pb, db) if d == db[i]}
                    assert tied_a == tied_b
        assert set(pa) == set(pb)


class TestSearchBatchEquivalence:
    @pytest.mark.parametrize("method_name", sorted(BATCH_METHOD_PARAMS))
    def test_batch_matches_per_query(self, batch_dataset, batch_queries, method_name):
        store = SeriesStore(batch_dataset)
        method = create_method(method_name, store, **BATCH_METHOD_PARAMS[method_name])
        method.build()
        k = 5
        single = [method.knn_exact(KnnQuery(series=q, k=k)) for q in batch_queries]
        batch = method.knn_exact_batch(batch_queries, k=k)
        assert_results_equivalent(single, batch)

    @pytest.mark.parametrize("method_name", ["isax2+", "dstree", "flat", "va+file"])
    def test_k_larger_than_leaf_capacity(self, batch_dataset, batch_queries, method_name):
        store = SeriesStore(batch_dataset)
        method = create_method(method_name, store, **BATCH_METHOD_PARAMS[method_name])
        method.build()
        k = 25  # larger than every leaf_capacity above
        single = [method.knn_exact(KnnQuery(series=q, k=k)) for q in batch_queries]
        batch = method.knn_exact_batch(batch_queries, k=k)
        assert_results_equivalent(single, batch)

    def test_all_registered_methods_covered(self):
        assert sorted(BATCH_METHOD_PARAMS) == sorted(available_methods())

    def test_engine_search_batch(self, batch_dataset, batch_queries):
        engine = SimilaritySearchEngine(batch_dataset)
        engine.build("flat")
        single = [engine.search(q, k=3) for q in batch_queries]
        batch = engine.search_batch(batch_queries, k=3)
        assert_results_equivalent(single, batch)

    def test_batch_is_exact_against_brute_force(self, batch_dataset, batch_queries):
        engine = SimilaritySearchEngine(batch_dataset)
        engine.build("flat")
        for q, result in zip(batch_queries, engine.search_batch(batch_queries, k=4)):
            truth = engine.brute_force(q, k=4)
            np.testing.assert_allclose(
                result.distances(), [n.distance for n in truth], atol=1e-8
            )

    def test_single_1d_query_accepted(self, batch_dataset, batch_queries):
        engine = SimilaritySearchEngine(batch_dataset)
        engine.build("flat")
        results = engine.search_batch(batch_queries[0], k=2)
        assert len(results) == 1
        assert len(results[0].neighbors) == 2


class TestBatchMindistKernels:
    def test_sax_batch_matches_scalar(self):
        """Acceptance check: batch MINDIST == per-word MINDIST to 1e-9."""
        dataset = random_walk_dataset(300, 64, seed=11)
        store = SeriesStore(dataset)
        index = Isax2PlusIndex(store, segments=8, cardinality=16, leaf_capacity=10)
        index.build()
        rng = np.random.default_rng(12)
        query = rng.standard_normal(64).cumsum()
        paa = index.summarizer.paa.transform(query)
        checked = 0
        for child in index.root.children.values():
            for node in child.iter_nodes():
                if not node.children:
                    continue
                children, symbols, cardinalities = node.child_arrays()
                batch = index.summarizer.mindist_paa_to_words_batch(
                    paa, symbols, cardinalities
                )
                scalar = [
                    index.summarizer.mindist_paa_to_word(paa, c.word) for c in children
                ]
                np.testing.assert_allclose(batch, scalar, atol=1e-9)
                checked += len(children)
        assert checked > 0  # the tree must actually have internal fan-out

    def test_sax_batch_mixed_cardinalities(self):
        summarizer = IsaxSummarizer(series_length=32, segments=4, cardinality=64)
        rng = np.random.default_rng(7)
        paa_rows = rng.standard_normal((20, 4))
        cards = rng.choice([2, 4, 8, 16, 32, 64], size=(20, 4))
        words = [
            summarizer.word_from_paa(row, tuple(int(c) for c in card_row))
            for row, card_row in zip(paa_rows, cards)
        ]
        query_paa = rng.standard_normal(4)
        symbols, cardinalities = stack_words(words)
        batch = summarizer.mindist_paa_to_words_batch(query_paa, symbols, cardinalities)
        scalar = [summarizer.mindist_paa_to_word(query_paa, w) for w in words]
        np.testing.assert_allclose(batch, scalar, atol=1e-9)

    def test_eapca_batch_matches_scalar(self):
        dataset = random_walk_dataset(200, 48, seed=13)
        store = SeriesStore(dataset)
        method = create_method("dstree", store, leaf_capacity=10)
        method.build()
        rng = np.random.default_rng(14)
        query = rng.standard_normal(48).cumsum()
        checked = 0
        for node in method.root.iter_nodes():
            children, stacked = node.child_bound_arrays()
            if not children:
                continue
            means, stds, widths = query_segment_stats(query, children[0].boundaries)
            batch = synopses_lower_bounds(means, stds, widths, stacked)
            scalar = [c.synopsis.lower_bound(query) for c in children]
            np.testing.assert_allclose(batch, scalar, atol=1e-9)
            checked += len(children)
        assert checked > 0

    def test_eapca_stack_roundtrip(self):
        dataset = random_walk_dataset(60, 32, seed=15)
        store = SeriesStore(dataset)
        method = create_method("dstree", store, leaf_capacity=20)
        method.build()
        synopses = [n.synopsis for n in method.root.iter_nodes() if n.synopsis]
        same_boundaries = [
            s for s in synopses if s.boundaries.shape == synopses[0].boundaries.shape
            and np.array_equal(s.boundaries, synopses[0].boundaries)
        ]
        stacked = stack_synopses(same_boundaries)
        assert stacked[0].shape == (len(same_boundaries), len(synopses[0].segments))

    def test_sfa_prefix_batch_matches_scalar(self):
        dataset = random_walk_dataset(400, 32, seed=17)
        store = SeriesStore(dataset)
        method = create_method("sfa-trie", store, leaf_capacity=15, coefficients=6)
        method.build()
        rng = np.random.default_rng(18)
        query = rng.standard_normal(32).cumsum()
        query_dft = method.summarizer.dft_of(query)
        checked = 0
        for child in method.root.children.values():
            for node in child.iter_nodes():
                if not node.children:
                    continue
                children, prefixes = node.child_arrays()
                batch = method.summarizer.prefix_lower_bound_batch(query_dft, prefixes)
                scalar = [
                    method._prefix_lower_bound(query_dft, c) for c in children
                ]
                np.testing.assert_allclose(batch, scalar, atol=1e-9)
                checked += len(children)
        # Root children always exist; deeper fan-out depends on the data.
        children, prefixes = method.root.child_arrays()
        batch = method.summarizer.prefix_lower_bound_batch(query_dft, prefixes)
        scalar = [method._prefix_lower_bound(query_dft, c) for c in children]
        np.testing.assert_allclose(batch, scalar, atol=1e-9)


class TestVectorizedOfferBatch:
    def _reference(self, k, offers):
        """Reference implementation: the legacy per-element offer loop."""
        answers = KnnAnswerSet(k)
        for pos, sq in offers:
            answers.offer(int(pos), float(sq))
        return answers

    def test_matches_reference_loop(self):
        rng = np.random.default_rng(21)
        for trial in range(30):
            k = int(rng.integers(1, 12))
            n = int(rng.integers(1, 300))
            # Unique positions per batch: a series has one distance to a query.
            positions = rng.permutation(n * 2)[:n]
            distances = np.round(rng.random(n) * 10, 2)  # rounding creates ties
            reference = self._reference(k, zip(positions, distances))
            answers = KnnAnswerSet(k)
            answers.offer_batch(positions, distances)
            np.testing.assert_allclose(
                reference.distances(), answers.distances(), atol=1e-12
            )

    def test_matches_reference_across_batches(self):
        rng = np.random.default_rng(22)
        for trial in range(10):
            k = int(rng.integers(1, 8))
            reference = KnnAnswerSet(k)
            answers = KnnAnswerSet(k)
            offset = 0
            for _ in range(4):
                n = int(rng.integers(1, 80))
                positions = np.arange(offset, offset + n)
                offset += n
                distances = np.round(rng.random(n) * 5, 2)
                for p, d in zip(positions, distances):
                    reference.offer(int(p), float(d))
                answers.offer_batch(positions, distances)
            np.testing.assert_allclose(
                reference.distances(), answers.distances(), atol=1e-12
            )

    def test_admission_count_and_threshold(self):
        answers = KnnAnswerSet(2)
        admitted = answers.offer_batch(np.arange(6), np.array([9.0, 4.0, 1.0, 16.0, 25.0, 36.0]))
        assert admitted == 2
        assert answers.positions() == [2, 1]
        assert answers.worst_squared_distance == 4.0
        # A second batch against the now-finite threshold.
        admitted = answers.offer_batch(np.array([7, 8]), np.array([0.25, 100.0]))
        assert admitted == 1
        assert answers.positions() == [7, 2]

    def test_duplicate_positions_across_batches(self):
        answers = KnnAnswerSet(3)
        answers.offer_batch(np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0]))
        admitted = answers.offer_batch(np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0]))
        assert admitted == 0
        assert answers.positions() == [1, 2, 3]

    def test_duplicate_positions_within_batch(self):
        # Position 5 holds the k smallest distances; the dedup must let the
        # other positions claim the remaining heap slots.
        answers = KnnAnswerSet(2)
        positions = np.array([5, 5, 5, 9])
        distances = np.array([1.0, 1.1, 1.2, 3.0])
        answers.offer_batch(positions, distances)
        assert answers.positions() == [5, 9]

    def test_non_finite_distances_keep_legacy_semantics(self):
        answers = KnnAnswerSet(3)
        answers.offer_batch(np.array([0, 1]), np.array([np.inf, 4.0]))
        # inf fills an under-occupied heap exactly like the scalar offer loop.
        assert answers.size == 2
        answers.offer_batch(np.array([2, 3]), np.array([1.0, 2.0]))
        assert answers.positions() == [2, 3, 1]

    def test_empty_batch(self):
        answers = KnnAnswerSet(2)
        assert answers.offer_batch(np.array([]), np.array([])) == 0
        assert answers.size == 0

    def test_mismatched_lengths_raise(self):
        answers = KnnAnswerSet(2)
        with pytest.raises(ValueError):
            answers.offer_batch(np.array([1, 2]), np.array([1.0]))

    def test_range_offer_batch(self):
        answers = RangeAnswerSet(radius=2.0)
        count = answers.offer_batch(
            np.array([0, 1, 2]), np.array([4.0, 4.41, 0.25])
        )
        assert count == 2
        assert [n.position for n in answers.neighbors()] == [2, 0]
        assert answers.offer_batch(np.array([]), np.array([])) == 0


class TestDistanceKernelFastPaths:
    def test_infinite_threshold_fast_path(self):
        rng = np.random.default_rng(31)
        a, b = rng.standard_normal(100), rng.standard_normal(100)
        exact = squared_euclidean(a, b)
        assert early_abandon_squared(a, b, float("inf")) == pytest.approx(exact, rel=1e-12)
        assert early_abandon_reordered(a, b, float("inf")) == pytest.approx(exact, rel=1e-12)

    def test_blocked_path_still_abandons(self):
        rng = np.random.default_rng(32)
        a, b = rng.standard_normal(128), rng.standard_normal(128) + 10.0
        exact = squared_euclidean(a, b)
        result = early_abandon_squared(a, b, threshold=1.0)
        assert result > 1.0  # abandoned with a partial sum above the threshold
        assert early_abandon_squared(a, b, threshold=exact + 1.0) == pytest.approx(exact)

    def test_short_series_block_bounds(self):
        a, b = np.array([1.0, 2.0, 3.0]), np.array([1.0, 2.5, 3.5])
        exact = squared_euclidean(a, b)
        assert early_abandon_squared(a, b, 100.0) == pytest.approx(exact)


class TestRunnerBatchDispatch:
    def test_batch_and_sequential_runner_agree(self):
        from repro.evaluation import HDD, run_experiment

        dataset = random_walk_dataset(150, 32, seed=51, name="runner-batch")
        workload = synth_rand_workload(32, count=4, seed=52)
        batched = run_experiment(dataset, workload, "flat", platform=HDD, batch=True)
        sequential = run_experiment(dataset, workload, "flat", platform=HDD, batch=False)
        for a, b in zip(batched.answers, sequential.answers):
            assert [n.position for n in a] == [n.position for n in b]
        # The shared scan is amortized, so the batch path reads far less.
        assert batched.sequential_pages <= sequential.sequential_pages
