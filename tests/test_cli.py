"""Tests for the command line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_run_requires_method(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run"])

    def test_dataset_choices(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--method", "dstree", "--dataset", "astro"])
        assert args.dataset == "astro"
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--method", "dstree", "--dataset", "imagenet"])


class TestMethodsCommand:
    def test_lists_all_methods(self):
        code, output = run_cli(["methods"])
        assert code == 0
        for name in ("dstree", "isax2+", "va+file", "ucr-suite"):
            assert name in output


class TestRecommendCommand:
    def test_in_memory_short(self):
        code, output = run_cli(["recommend", "--gb", "25", "--length", "256"])
        assert code == 0
        assert "isax2+" in output

    def test_disk_long(self):
        code, output = run_cli(["recommend", "--gb", "500", "--length", "16384"])
        assert code == 0
        assert "va+file" in output


class TestRunCommand:
    def test_run_small_experiment(self):
        code, output = run_cli(
            [
                "run",
                "--method", "dstree",
                "--count", "200",
                "--length", "32",
                "--queries", "2",
                "--leaf-size", "25",
            ]
        )
        assert code == 0
        assert "dstree" in output
        assert "pruning" in output

    def test_run_unknown_method(self):
        code, output = run_cli(["run", "--method", "bogus", "--count", "100"])
        assert code == 2
        assert "unknown method" in output

    def test_run_real_dataset_analogue(self):
        code, output = run_cli(
            [
                "run",
                "--method", "va+file",
                "--dataset", "sald",
                "--count", "200",
                "--queries", "2",
            ]
        )
        assert code == 0
        assert "va+file" in output

    def test_run_controlled_workload_on_ssd(self):
        code, output = run_cli(
            [
                "run",
                "--method", "ucr-suite",
                "--count", "150",
                "--length", "32",
                "--queries", "2",
                "--workload", "ctrl",
                "--platform", "ssd",
            ]
        )
        assert code == 0
        assert "ucr-suite" in output


class TestCompareCommand:
    def test_compare_two_methods(self):
        code, output = run_cli(
            [
                "compare",
                "--methods", "dstree,ucr-suite",
                "--count", "200",
                "--length", "32",
                "--queries", "3",
            ]
        )
        assert code == 0
        assert "best method per scenario" in output
        assert "Idx+Exact10K" in output

    def test_compare_unknown_method(self):
        code, output = run_cli(["compare", "--methods", "dstree,bogus", "--count", "100"])
        assert code == 2
        assert "unknown methods" in output


class TestIngestCommand:
    def test_create_ingest_and_reopen(self, tmp_path):
        store = str(tmp_path / "live.store")
        code, output = run_cli(
            [
                "ingest",
                "--store", store,
                "--count", "50",
                "--length", "16",
                "--batch-rows", "20",
                "--checkpoint-every", "1",
            ]
        )
        assert code == 0
        assert "acked 20" in output and "acked 50" in output
        # Reopen: recovery is clean, rows accumulate, segments verify.
        code, output = run_cli(
            ["ingest", "--store", store, "--count", "10", "--verify"]
        )
        assert code == 0
        assert "verified 50 sealed rows" in output
        assert "acked 60" in output

    def test_create_without_length_is_an_error(self, tmp_path):
        code, output = run_cli(
            ["ingest", "--store", str(tmp_path / "new"), "--count", "5"]
        )
        assert code == 2
        assert "--length" in output

    def test_bad_fault_plan_is_an_error(self, tmp_path):
        code, output = run_cli(
            [
                "ingest",
                "--store", str(tmp_path / "new"),
                "--count", "5",
                "--length", "8",
                "--fault-plan", "crash=bogus_point",
            ]
        )
        assert code == 2
        assert "--fault-plan" in output

    def test_run_serves_growable_backend(self):
        code, output = run_cli(
            [
                "run",
                "--method", "flat",
                "--count", "150",
                "--length", "16",
                "--queries", "2",
                "--backend", "growable",
            ]
        )
        assert code == 0
        assert "[growable]" in output
