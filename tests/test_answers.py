"""Tests for the k-NN / range answer containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import KnnAnswerSet, Neighbor, RangeAnswerSet


class TestKnnAnswerSet:
    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            KnnAnswerSet(0)

    def test_keeps_k_best(self):
        answers = KnnAnswerSet(3)
        for position, sq in enumerate([9.0, 1.0, 16.0, 4.0, 25.0]):
            answers.offer(position, sq)
        assert answers.positions() == [1, 3, 0]
        assert answers.distances() == pytest.approx([1.0, 2.0, 3.0])

    def test_threshold_infinite_until_full(self):
        answers = KnnAnswerSet(2)
        assert answers.worst_squared_distance == float("inf")
        answers.offer(0, 4.0)
        assert answers.worst_squared_distance == float("inf")
        answers.offer(1, 1.0)
        assert answers.worst_squared_distance == 4.0

    def test_offer_returns_admission(self):
        answers = KnnAnswerSet(1)
        assert answers.offer(0, 5.0)
        assert not answers.offer(1, 6.0)
        assert answers.offer(2, 1.0)

    def test_negative_distance_clamped(self):
        answers = KnnAnswerSet(1)
        answers.offer(0, -1e-12)
        assert answers.distances()[0] == 0.0

    def test_offer_batch(self):
        answers = KnnAnswerSet(2)
        admitted = answers.offer_batch(np.arange(5), np.array([25.0, 16.0, 9.0, 4.0, 1.0]))
        assert admitted >= 2
        assert answers.positions() == [4, 3]

    def test_best_squared_distance(self):
        answers = KnnAnswerSet(3)
        answers.offer(0, 9.0)
        answers.offer(1, 4.0)
        assert answers.best_squared_distance == 4.0

    def test_duplicate_positions_counted_once(self):
        answers = KnnAnswerSet(3)
        answers.offer(5, 1.0)
        assert not answers.offer(5, 1.0)
        answers.offer(6, 2.0)
        assert answers.positions() == [5, 6]

    @given(
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=200),
        st.integers(1, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matches_sorted_topk(self, distances, k):
        """The answer set always equals the k smallest offered distances."""
        answers = KnnAnswerSet(k)
        for position, sq in enumerate(distances):
            answers.offer(position, sq)
        expected = sorted(distances)[:k]
        got = [d * d for d in answers.distances()]
        assert np.allclose(sorted(got), expected, rtol=1e-6, atol=1e-9)


class TestNeighbor:
    def test_ordering_by_distance(self):
        a = Neighbor(distance=1.0, position=5)
        b = Neighbor(distance=2.0, position=1)
        assert a < b
        assert sorted([b, a])[0] is a


class TestRangeAnswerSet:
    def test_only_matches_within_radius(self):
        answers = RangeAnswerSet(radius=2.0)
        assert answers.offer(0, 4.0)       # distance 2.0 (inclusive)
        assert not answers.offer(1, 4.41)  # distance 2.1
        assert answers.offer(2, 0.25)
        assert answers.size == 2
        assert [n.position for n in answers.neighbors()] == [2, 0]
