"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, SeriesStore
from repro.core.queries import KnnQuery
from repro.workloads import random_walk_dataset, synth_rand_workload


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """A small random-walk dataset shared across tests (session scoped, read-only)."""
    return random_walk_dataset(400, 64, seed=11, name="small")


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """A very small dataset for the more expensive index builds."""
    return random_walk_dataset(120, 32, seed=13, name="tiny")


@pytest.fixture(scope="session")
def small_queries(small_dataset):
    """Five random-walk queries matching the small dataset's length."""
    return synth_rand_workload(small_dataset.length, count=5, seed=97)


@pytest.fixture(scope="session")
def tiny_queries(tiny_dataset):
    return synth_rand_workload(tiny_dataset.length, count=4, seed=101)


@pytest.fixture()
def store(small_dataset) -> SeriesStore:
    return SeriesStore(small_dataset)


@pytest.fixture()
def tiny_store(tiny_dataset) -> SeriesStore:
    return SeriesStore(tiny_dataset)


def _brute_force_knn(dataset: Dataset, query: np.ndarray, k: int = 1):
    """Ground-truth k-NN by full scan (squared distances, sorted ascending)."""
    diffs = dataset.values.astype(np.float64) - np.asarray(query, dtype=np.float64)
    distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
    order = np.argsort(distances, kind="stable")[:k]
    return order, distances[order]


@pytest.fixture(scope="session")
def brute_force_knn():
    """The ground-truth helper, shared as a fixture.

    Conftest helpers must reach test modules through fixtures (importing
    ``conftest`` directly is unsupported by pytest); the fixture returns the
    callable so call sites read exactly like a plain function.
    """
    return _brute_force_knn


@pytest.fixture(scope="session")
def ground_truth(small_dataset, small_queries):
    """Exact 1-NN answers for the small dataset / small queries pair."""
    answers = []
    for query in small_queries:
        positions, distances = _brute_force_knn(small_dataset, query.series, k=1)
        answers.append((int(positions[0]), float(distances[0])))
    return answers


def _make_query(series, k: int = 1) -> KnnQuery:
    return KnnQuery(series=np.asarray(series), k=k)


@pytest.fixture(scope="session")
def make_query():
    """Query-construction helper, shared as a fixture (see brute_force_knn)."""
    return _make_query
