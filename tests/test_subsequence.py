"""Tests for the subsequence-to-whole-matching conversion."""

import numpy as np
import pytest

from repro import SeriesStore, create_method
from repro.core.distance import squared_euclidean_batch
from repro.core.queries import KnnQuery
from repro.core.series import znormalize
from repro.workloads.subsequence import sliding_windows, subsequence_collection


class TestSlidingWindows:
    def test_count_and_content(self):
        series = np.arange(10.0)
        windows = sliding_windows(series, window=4)
        assert windows.shape == (7, 4)
        assert np.array_equal(windows[0], [0, 1, 2, 3])
        assert np.array_equal(windows[-1], [6, 7, 8, 9])

    def test_step(self):
        series = np.arange(10.0)
        windows = sliding_windows(series, window=4, step=3)
        assert windows.shape == (3, 4)
        assert np.array_equal(windows[1], [3, 4, 5, 6])

    def test_window_equals_length(self):
        series = np.arange(5.0)
        windows = sliding_windows(series, window=5)
        assert windows.shape == (1, 5)

    def test_errors(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(3.0), window=4)
        with pytest.raises(ValueError):
            sliding_windows(np.arange(8.0), window=0)
        with pytest.raises(ValueError):
            sliding_windows(np.zeros((2, 8)), window=4)


class TestSubsequenceCollection:
    def test_mapping_roundtrip(self):
        rng = np.random.default_rng(0)
        long_series = [rng.standard_normal(50), rng.standard_normal(80)]
        dataset, mapping = subsequence_collection(long_series, window=16, normalize=False)
        assert len(mapping) == dataset.count == (50 - 15) + (80 - 15)
        # The subsequence at any position matches the original slice.
        position = 40
        series_id, offset = mapping.locate(position)
        expected = long_series[series_id][offset : offset + 16]
        assert np.allclose(dataset.values[position], expected, atol=1e-6)

    def test_different_length_sources(self):
        long_series = [np.arange(20.0), np.arange(35.0)]
        dataset, mapping = subsequence_collection(long_series, window=10, normalize=False)
        ids = set(mapping.source_ids.tolist())
        assert ids == {0, 1}

    def test_normalization(self):
        rng = np.random.default_rng(1)
        dataset, _ = subsequence_collection([rng.standard_normal(64) * 5 + 2], window=16)
        assert np.allclose(dataset.values.mean(axis=1), 0.0, atol=1e-3)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            subsequence_collection([], window=8)

    def test_2d_array_input(self):
        arr = np.random.default_rng(2).standard_normal((3, 40))
        dataset, mapping = subsequence_collection(arr, window=20, step=5, normalize=False)
        assert dataset.count == 3 * len(range(0, 21, 5))

    def test_subsequence_search_finds_planted_match(self):
        """End to end: a query cut from a long series is found at the right offset."""
        rng = np.random.default_rng(3)
        long_series = [rng.standard_normal(300).cumsum() for _ in range(4)]
        window = 32
        dataset, mapping = subsequence_collection(long_series, window=window)

        method = create_method("dstree", SeriesStore(dataset), leaf_capacity=50)
        method.build()

        target_series, target_offset = 2, 117
        query = znormalize(long_series[target_series][target_offset : target_offset + window])
        result = method.knn_exact(KnnQuery(series=query, k=1))
        found_series, found_offset = mapping.locate(result.nearest.position)
        assert (found_series, found_offset) == (target_series, target_offset)
        assert result.nearest.distance == pytest.approx(0.0, abs=1e-4)

    def test_exactness_matches_brute_force_over_subsequences(self):
        rng = np.random.default_rng(4)
        long_series = [rng.standard_normal(200).cumsum() for _ in range(3)]
        dataset, mapping = subsequence_collection(long_series, window=24)
        method = create_method("va+file", SeriesStore(dataset), coefficients=8)
        method.build()
        query = znormalize(rng.standard_normal(24).cumsum())
        distances = np.sqrt(squared_euclidean_batch(query, dataset.values))
        best = int(np.argmin(distances))
        result = method.knn_exact(KnnQuery(series=query, k=1))
        assert result.nearest.distance == pytest.approx(float(distances[best]), abs=1e-4)
