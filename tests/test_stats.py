"""Tests for the accounting dataclasses."""

import pytest

from repro.core.stats import AccessCounter, IndexStats, QueryStats, aggregate_query_stats


class TestAccessCounter:
    def test_snapshot_diff_merge(self):
        counter = AccessCounter()
        counter.random_accesses = 3
        counter.sequential_pages = 10
        snap = counter.snapshot()
        counter.random_accesses = 8
        counter.sequential_pages = 12
        delta = counter.diff(snap)
        assert delta.random_accesses == 5
        assert delta.sequential_pages == 2
        other = AccessCounter(random_accesses=1)
        delta.merge(other)
        assert delta.random_accesses == 6

    def test_reset(self):
        counter = AccessCounter(sequential_pages=4, random_accesses=2, series_read=9)
        counter.reset()
        assert counter.sequential_pages == 0
        assert counter.random_accesses == 0
        assert counter.series_read == 0

    def test_bytes_written_tracked_through_snapshot_diff_merge(self):
        counter = AccessCounter(bytes_read=100, bytes_written=40)
        snap = counter.snapshot()
        assert snap.bytes_written == 40
        counter.bytes_written = 90
        counter.bytes_read = 150
        delta = counter.diff(snap)
        assert delta.bytes_written == 50
        assert delta.bytes_read == 50
        delta.merge(AccessCounter(bytes_written=10))
        assert delta.bytes_written == 60
        counter.reset()
        assert counter.bytes_written == 0


class TestQueryStats:
    def test_pruning_ratio(self):
        stats = QueryStats(series_examined=20, dataset_size=100)
        assert stats.pruning_ratio == pytest.approx(0.8)

    def test_pruning_ratio_zero_dataset(self):
        assert QueryStats().pruning_ratio == 0.0

    def test_pruning_ratio_clamped(self):
        stats = QueryStats(series_examined=200, dataset_size=100)
        assert stats.pruning_ratio == 0.0

    def test_total_seconds(self):
        stats = QueryStats(cpu_seconds=1.5, io_seconds=0.5)
        assert stats.total_seconds == pytest.approx(2.0)

    def test_merge(self):
        a = QueryStats(series_examined=5, random_accesses=2, cpu_seconds=1.0, dataset_size=50)
        b = QueryStats(series_examined=3, random_accesses=4, cpu_seconds=0.5, dataset_size=50)
        a.merge(b)
        assert a.series_examined == 8
        assert a.random_accesses == 6
        assert a.cpu_seconds == pytest.approx(1.5)

    def test_aggregate(self):
        stats = [
            QueryStats(series_examined=10, dataset_size=100),
            QueryStats(series_examined=30, dataset_size=100),
        ]
        total = aggregate_query_stats(stats)
        assert total.series_examined == 40
        assert total.dataset_size == 100

    def test_aggregate_empty(self):
        assert aggregate_query_stats([]).series_examined == 0


class TestIndexStats:
    def test_median_fill_factor_odd_even(self):
        stats = IndexStats(leaf_fill_factors=[0.2, 0.8, 0.5])
        assert stats.median_fill_factor == pytest.approx(0.5)
        stats = IndexStats(leaf_fill_factors=[0.2, 0.4, 0.6, 0.8])
        assert stats.median_fill_factor == pytest.approx(0.5)
        assert IndexStats().median_fill_factor == 0.0

    def test_max_leaf_depth(self):
        assert IndexStats(leaf_depths=[1, 5, 3]).max_leaf_depth == 5
        assert IndexStats().max_leaf_depth == 0

    def test_build_seconds(self):
        stats = IndexStats(build_cpu_seconds=2.0, build_io_seconds=1.0)
        assert stats.build_seconds == pytest.approx(3.0)
