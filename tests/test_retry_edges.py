"""RetryPolicy edge cases: zero-retry, backoff ceiling, mid-scan permanence.

Satellite coverage for the retry machinery around the storage read path —
the configurations the happy-path chaos tests never hit: a policy with no
retries at all, delays pinned at the ceiling, and permanent errors raised
from *inside* a ``scan_chunks`` generator (the generator must die cleanly,
already-scanned pages must be released, and the store must remain usable).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, SeriesStore
from repro.core.backends import MemoryBackend
from repro.core.faults import RetryPolicy, TransientIOError
from repro.core.integrity import CorruptionError


class ScriptedBackend(MemoryBackend):
    """Memory backend whose ``read_rows`` raises scripted exceptions.

    ``script(call_index, start, stop)`` returns an exception to raise or
    ``None`` to serve the read; every release is recorded so tests can assert
    scan hygiene after a failure.
    """

    def __init__(self, values, script) -> None:
        super().__init__(values)
        self.script = script
        self.read_calls = 0
        self.released: list[tuple[int, int]] = []

    def read_rows(self, start: int, stop: int) -> np.ndarray:
        exc = self.script(self.read_calls, start, stop)
        self.read_calls += 1
        if exc is not None:
            raise exc
        return super().read_rows(start, stop)

    def release(self, start: int = 0, stop: int | None = None) -> None:
        self.released.append((int(start), -1 if stop is None else int(stop)))
        super().release(start, stop)


def _store(script, retry, rows=40, length=8):
    rng = np.random.default_rng(0)
    values = rng.standard_normal((rows, length)).astype(np.float32)
    backend = ScriptedBackend(values, script)
    dataset = Dataset(values=values, name="scripted")
    return SeriesStore(dataset, backend=backend, retry=retry), backend, values


class TestPolicyEdges:
    def test_attempts_below_one_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            RetryPolicy(attempts=0)

    def test_zero_retry_policy_propagates_first_failure(self):
        # attempts=1 means one try, zero retries: even a transient error
        # must propagate immediately and charge no retry to the counter.
        script = lambda i, a, b: TransientIOError("blip") if i == 0 else None
        store, backend, values = _store(script, RetryPolicy(attempts=1))
        with pytest.raises(TransientIOError):
            store.read_contiguous(0, 10)
        assert store.counter.retries == 0
        # The failure consumed the scripted blip; the store still works.
        np.testing.assert_array_equal(store.read_contiguous(0, 10), values[:10])

    def test_backoff_hits_ceiling_and_stays_there(self):
        policy = RetryPolicy(
            attempts=10, base_delay=0.001, multiplier=4.0, max_delay=0.01, jitter=0.0
        )
        delays = [policy.delay_for(attempt) for attempt in range(1, 10)]
        assert delays[0] == pytest.approx(0.001)
        assert delays[1] == pytest.approx(0.004)
        # From attempt 3 on the exponential would exceed the cap.
        assert all(d == pytest.approx(0.01) for d in delays[2:])
        assert max(delays) <= policy.max_delay

    def test_jitter_only_shrinks_delays(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=1.0, jitter=0.5)
        for attempt in range(1, 6):
            delay = policy.delay_for(attempt)
            assert 0.005 <= delay <= 0.01

    def test_permanent_classification(self):
        policy = RetryPolicy()
        for exc in (
            CorruptionError("rot"),
            FileNotFoundError("gone"),
            PermissionError("denied"),
            IsADirectoryError("dir"),
            NotADirectoryError("file"),
        ):
            assert not policy.is_transient(exc), type(exc).__name__
        assert policy.is_transient(TransientIOError("blip"))
        assert policy.is_transient(OSError("hiccup"))
        assert policy.is_transient(TimeoutError("slow"))
        assert not policy.is_transient(ValueError("not io at all"))


class TestScanChunkPermanence:
    def test_permanent_error_mid_scan_propagates_without_retry(self):
        # CorruptionError on the third chunk: no retry (re-reading damaged
        # bytes cannot help), the generator dies on that chunk.
        script = lambda i, a, b: CorruptionError("rot") if a == 20 else None
        store, backend, values = _store(script, RetryPolicy(attempts=5))
        seen = []
        with pytest.raises(CorruptionError):
            for start, block in store.scan_chunks(chunk_rows=10):
                seen.append(start)
        assert seen == [0, 10]
        assert store.counter.retries == 0  # permanent = zero retry attempts

    def test_failed_scan_released_prior_pages_and_store_survives(self):
        yank = {"armed": True}

        def script(i, a, b):
            if a == 30 and yank.pop("armed", None):
                return PermissionError("yanked")
            return None

        store, backend, values = _store(script, RetryPolicy(attempts=3))
        generator = store.scan_chunks(chunk_rows=10)
        with pytest.raises(PermissionError):
            for _ in generator:
                pass
        # Chunks served before the failure were released behind the scan.
        assert (0, 10) in backend.released and (0, 20) in backend.released
        # The generator is spent, not wedged half-open.
        assert list(generator) == []
        # And the store remains fully usable once the fault clears.
        np.testing.assert_array_equal(
            np.vstack([b for _, b in store.scan_chunks(chunk_rows=10)]), values
        )

    def test_closing_generator_midway_leaves_store_usable(self):
        script = lambda i, a, b: None
        store, backend, values = _store(script, RetryPolicy(attempts=2))
        generator = store.scan_chunks(chunk_rows=10)
        start, block = next(generator)
        generator.close()
        np.testing.assert_array_equal(store.read_contiguous(0, 40), values)
        # A fresh scan starts from row zero, unaffected by the closed one.
        assert [s for s, _ in store.scan_chunks(chunk_rows=10)] == [0, 10, 20, 30]

    def test_transient_error_mid_scan_is_retried_in_place(self):
        # One blip on the second chunk: the scan recovers without skipping
        # or duplicating a single chunk.
        fails = {1}
        script = (
            lambda i, a, b: TransientIOError("blip")
            if a == 10 and i in fails and not fails.discard(i)
            else None
        )
        store, backend, values = _store(
            script, RetryPolicy(attempts=3, base_delay=1e-6, jitter=0.0)
        )
        chunks = list(store.scan_chunks(chunk_rows=10))
        assert [s for s, _ in chunks] == [0, 10, 20, 30]
        np.testing.assert_array_equal(np.vstack([b for _, b in chunks]), values)
        assert store.counter.retries == 1

    def test_transient_errors_exhaust_attempts_then_raise(self):
        script = lambda i, a, b: TransientIOError("always") if a == 0 else None
        store, backend, values = _store(
            script, RetryPolicy(attempts=3, base_delay=1e-6, jitter=0.0)
        )
        with pytest.raises(TransientIOError):
            next(iter(store.scan_chunks(chunk_rows=10)))
        assert store.counter.retries == 2  # attempts - 1 retries were charged
