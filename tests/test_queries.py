"""Tests for query objects and workloads."""

import numpy as np
import pytest

from repro.core.queries import KnnQuery, MatchingAccuracy, QueryWorkload, RangeQuery


class TestKnnQuery:
    def test_basic(self):
        query = KnnQuery(series=np.arange(8.0), k=3, label="easy")
        assert query.length == 8
        assert query.k == 3
        assert query.label == "easy"

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KnnQuery(series=np.arange(8.0), k=0)

    def test_rejects_2d_series(self):
        with pytest.raises(ValueError):
            KnnQuery(series=np.zeros((2, 8)))


class TestRangeQuery:
    def test_basic(self):
        query = RangeQuery(series=np.arange(8.0), radius=1.5)
        assert query.length == 8
        assert query.radius == 1.5

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            RangeQuery(series=np.arange(8.0), radius=-1.0)


class TestQueryWorkload:
    def test_from_array(self):
        arr = np.random.default_rng(0).standard_normal((10, 16))
        workload = QueryWorkload.from_array(arr, name="w", k=2)
        assert len(workload) == 10
        assert workload.length == 16
        assert workload[0].k == 2
        assert workload.name == "w"

    def test_iteration(self):
        arr = np.zeros((3, 4))
        workload = QueryWorkload.from_array(arr)
        assert sum(1 for _ in workload) == 3

    def test_labels(self):
        arr = np.zeros((2, 4))
        workload = QueryWorkload.from_array(arr, labels=["easy", "hard"])
        assert workload[1].label == "hard"

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            QueryWorkload.from_array(np.zeros((2, 4)), labels=["only-one"])

    def test_mixed_lengths_rejected(self):
        queries = [KnnQuery(series=np.zeros(4)), KnnQuery(series=np.zeros(8))]
        with pytest.raises(ValueError):
            QueryWorkload(name="bad", queries=queries)

    def test_empty_workload_length_raises(self):
        workload = QueryWorkload(name="empty")
        with pytest.raises(ValueError):
            _ = workload.length

    def test_normalize_option(self):
        arr = np.random.default_rng(1).standard_normal((4, 16)) * 5 + 3
        workload = QueryWorkload.from_array(arr, normalize=True)
        for query in workload:
            assert abs(float(np.mean(query.series))) < 1e-3


class TestMatchingAccuracy:
    def test_enum_values(self):
        assert MatchingAccuracy.EXACT.value == "exact"
        assert MatchingAccuracy.NG_APPROXIMATE.value == "ng-approximate"
        assert MatchingAccuracy("epsilon-approximate") is MatchingAccuracy.EPSILON_APPROXIMATE
