"""Tests for the growable structure-of-arrays payload storage."""

import pickle

import numpy as np
import pytest

from repro.core.soa import GrowableArray


class TestGrowableArray:
    def test_append_and_view(self):
        vec = GrowableArray(dtype=np.int64)
        for value in (3, 1, 4):
            vec.append(value)
        assert len(vec) == 3
        assert list(vec) == [3, 1, 4]
        np.testing.assert_array_equal(vec.data, [3, 1, 4])
        assert vec.data.dtype == np.int64

    def test_two_dimensional_rows(self):
        mat = GrowableArray(width=4)
        mat.append(np.arange(4.0))
        mat.append(np.arange(4.0) + 10)
        assert mat.data.shape == (2, 4)
        np.testing.assert_allclose(mat[1], [10, 11, 12, 13])

    def test_extend_block(self):
        vec = GrowableArray(dtype=np.int64)
        vec.extend(np.arange(100))
        vec.extend(np.arange(100, 130))
        assert len(vec) == 130
        np.testing.assert_array_equal(vec.data, np.arange(130))
        assert vec.data.flags["C_CONTIGUOUS"]

    def test_extend_empty_is_noop(self):
        vec = GrowableArray(dtype=np.int64)
        vec.extend(np.array([], dtype=np.int64))
        assert len(vec) == 0
        assert not vec

    def test_growth_preserves_contents(self):
        vec = GrowableArray(dtype=np.int64, capacity=2)
        for value in range(50):
            vec.append(value)
        np.testing.assert_array_equal(vec.data, np.arange(50))

    def test_data_view_is_read_only(self):
        vec = GrowableArray(dtype=np.int64)
        vec.extend([1, 2, 3])
        with pytest.raises(ValueError):
            vec.data[0] = 9
        vec.append(4)  # internal writes keep working
        assert list(vec) == [1, 2, 3, 4]

    def test_asarray_protocol(self):
        vec = GrowableArray(dtype=np.int64)
        vec.extend([7, 8, 9])
        arr = np.asarray(vec)
        np.testing.assert_array_equal(arr, [7, 8, 9])
        as_float = np.asarray(vec, dtype=np.float64)
        assert as_float.dtype == np.float64

    def test_bool_and_indexing(self):
        vec = GrowableArray(dtype=np.int64)
        assert not vec
        vec.append(5)
        assert vec
        assert vec[0] == 5
        np.testing.assert_array_equal(vec[np.array([0])], [5])

    def test_clear_releases_rows(self):
        vec = GrowableArray(dtype=np.int64)
        vec.extend(np.arange(10))
        view = vec.data
        vec.clear()
        assert len(vec) == 0
        # The snapshot taken before the clear stays valid.
        np.testing.assert_array_equal(view, np.arange(10))

    def test_pickle_roundtrip(self):
        mat = GrowableArray(width=3)
        mat.extend(np.arange(12.0).reshape(4, 3))
        clone = pickle.loads(pickle.dumps(mat))
        np.testing.assert_allclose(clone.data, mat.data)
        clone.append(np.zeros(3))
        assert len(clone) == 5 and len(mat) == 4

    def test_data_is_a_view_not_a_copy(self):
        vec = GrowableArray(dtype=np.int64)
        vec.extend(np.arange(5))
        assert vec.data.base is not None
