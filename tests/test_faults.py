"""Unit tests for the deterministic fault-injection layer (core.faults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, SeriesStore
from repro.core.backends import MemoryBackend
from repro.core.faults import (
    DEFAULT_RETRY_POLICY,
    FAULT_PLAN_ENV,
    FaultInjectingBackend,
    FaultPlan,
    RetryPolicy,
    TransientIOError,
)
from repro.core.integrity import CorruptionError


def _values(count=64, length=16, seed=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((count, length)).astype(np.float32)


class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec("seed=7, transient=0.2, latency=0.05")
        assert plan.seed == 7
        assert plan.transient == pytest.approx(0.2)
        assert plan.latency == pytest.approx(0.05)
        # Unset fields keep their defaults.
        assert plan.corrupt == 0.0
        assert plan.max_failures == 3

    def test_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault-plan key"):
            FaultPlan.from_spec("seed=1,explode=0.5")

    def test_spec_rejects_bad_item(self):
        with pytest.raises(ValueError, match="expected key=value"):
            FaultPlan.from_spec("transient")

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="transient"):
            FaultPlan(transient=1.5)
        with pytest.raises(ValueError, match="region_rows"):
            FaultPlan(region_rows=0)

    def test_roll_is_deterministic_and_seed_sensitive(self):
        a = FaultPlan(seed=1)
        b = FaultPlan(seed=2)
        assert a.roll("x", 3) == a.roll("x", 3)
        assert a.roll("x", 3) != b.roll("x", 3)
        assert 0.0 <= a.roll("anything") < 1.0

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=9,transient=0.1")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.seed == 9


class TestFaultInjectingBackend:
    def test_transient_fails_then_recovers(self):
        inner = MemoryBackend(_values())
        wrapper = FaultInjectingBackend(inner, FaultPlan(seed=0, transient=1.0))
        failures = 0
        for _ in range(wrapper.plan.max_failures + 1):
            try:
                data = wrapper.read_rows(0, 8)
            except TransientIOError:
                failures += 1
            else:
                break
        # A faulty site fails a bounded number of attempts, then serves the
        # true bytes.
        assert 1 <= failures <= wrapper.plan.max_failures
        np.testing.assert_array_equal(data, inner.read_rows(0, 8))

    def test_fork_rerolls_incarnation(self):
        inner = MemoryBackend(_values())
        plan = FaultPlan(seed=5, transient=0.5)
        wrapper = FaultInjectingBackend(inner, plan)
        forked = wrapper.fork()
        assert forked._incarnation != wrapper._incarnation
        # slice keeps the incarnation: a partition is not a retry.
        assert wrapper.slice(0, 10)._incarnation == wrapper._incarnation

    def test_never_stacks_injection_layers(self):
        inner = MemoryBackend(_values())
        once = FaultInjectingBackend(inner, FaultPlan())
        twice = FaultInjectingBackend(once, FaultPlan(seed=1))
        assert twice.inner is inner

    def test_corruption_is_damage_at_rest(self):
        inner = MemoryBackend(_values(count=256))
        plan = FaultPlan(seed=3, corrupt=1.0, region_rows=64)
        wrapper = FaultInjectingBackend(inner, plan)
        first = wrapper.read_rows(0, 256)
        second = wrapper.read_rows(0, 256)
        forked = wrapper.fork().read_rows(0, 256)
        # Same damage on every read and every fork (corruption ignores the
        # incarnation), and it differs from the true bytes.
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, forked)
        assert not np.array_equal(first, inner.read_rows(0, 256))
        # The inner backend's own array is untouched (copy-on-corrupt).
        assert np.isfinite(inner.read_rows(0, 256)).all()

    def test_truncate_returns_short_reads(self):
        inner = MemoryBackend(_values(count=128))
        wrapper = FaultInjectingBackend(inner, FaultPlan(seed=1, truncate=1.0))
        data = wrapper.read_rows(0, 100)
        assert data.shape[0] < 100

    def test_geometry_and_describe_delegate(self):
        inner = MemoryBackend(_values())
        wrapper = FaultInjectingBackend(inner, FaultPlan(seed=2, transient=0.1))
        assert wrapper.count == inner.count
        assert wrapper.length == inner.length
        assert wrapper.kind == "memory"
        assert "faults" in wrapper.describe()


class TestRetryPolicy:
    def test_transient_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransientIOError("x"))
        assert policy.is_transient(OSError("disk hiccup"))
        assert policy.is_transient(TimeoutError())
        assert not policy.is_transient(CorruptionError("bad block"))
        assert not policy.is_transient(FileNotFoundError("gone"))
        assert not policy.is_transient(ValueError("not io"))

    def test_delays_bounded_and_growing(self):
        policy = RetryPolicy(jitter=0.0)
        delays = [policy.delay_for(i) for i in range(1, 10)]
        assert delays == sorted(delays)
        assert max(delays) <= policy.max_delay

    def test_jitter_never_exceeds_nominal(self):
        policy = RetryPolicy(jitter=0.5)
        nominal = RetryPolicy(jitter=0.0).delay_for(2)
        for _ in range(20):
            assert 0.0 < policy.delay_for(2) <= nominal

    def test_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestStoreResilience:
    def test_store_retries_transparently(self):
        dataset = Dataset(values=_values(count=200), name="faulty")
        clean = SeriesStore(Dataset(values=_values(count=200), name="clean"))
        store = SeriesStore(dataset, faults=FaultPlan(seed=11, transient=1.0))
        chunks = [chunk for _, chunk in store.scan_chunks()]
        expected = [chunk for _, chunk in clean.scan_chunks()]
        np.testing.assert_array_equal(np.vstack(chunks), np.vstack(expected))
        assert store.counter.retries > 0

    def test_truncated_reads_are_retried_to_full_length(self):
        dataset = Dataset(values=_values(count=200), name="short-reads")
        store = SeriesStore(dataset, faults=FaultPlan(seed=4, truncate=0.9))
        data = store.read_contiguous(0, 200)
        assert data.shape == (200, 16)

    def test_fault_spec_string_accepted(self):
        store = SeriesStore(
            Dataset(values=_values(), name="spec"), faults="seed=3,transient=0.5"
        )
        assert store.faults is not None and store.faults.seed == 3

    def test_env_plan_applies_to_new_stores(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=21,transient=0.3")
        store = SeriesStore(Dataset(values=_values(), name="env-plan"))
        assert store.faults is not None and store.faults.seed == 21

    def test_retry_budget_exhaustion_raises_transient(self):
        dataset = Dataset(values=_values(count=64), name="hopeless")
        # max_failures beyond the retry budget: the typed error escapes.
        store = SeriesStore(
            dataset,
            faults=FaultPlan(seed=1, transient=1.0, max_failures=50),
            retry=RetryPolicy(attempts=2, base_delay=0.0001),
        )
        with pytest.raises(TransientIOError):
            store.read_contiguous(0, 32)

    def test_fork_and_slice_keep_the_plan(self):
        store = SeriesStore(
            Dataset(values=_values(count=100), name="lineage"),
            faults=FaultPlan(seed=2, transient=0.2),
        )
        assert store.fork().faults == store.faults
        assert store.slice(0, 50).faults == store.faults

    def test_default_policy_is_active(self):
        store = SeriesStore(Dataset(values=_values(), name="defaults"))
        assert store.retry == DEFAULT_RETRY_POLICY
        assert store.faults is None
