"""Build-equivalence suite for the bulk-load construction layer.

For every tree method, a bulk-built index (``build_mode="bulk"``, the default)
and a loop-built index (``build_mode="incremental"``) must return identical
``knn_exact``/``knn_exact_batch`` results — including ties — and respect the
leaf capacity.  The retained per-series ``_insert`` path is exercised through
``append`` after a bulk build.
"""

import numpy as np
import pytest

from repro import Dataset, SeriesStore, create_method
from repro.core.queries import KnnQuery
from repro.workloads import random_walk_dataset, synth_rand_workload

#: every method with a bulk loader, with small leaves to force deep trees.
TREE_METHOD_PARAMS = {
    "isax2+": {"leaf_capacity": 10},
    "ads+": {"leaf_capacity": 10},
    "dstree": {"leaf_capacity": 10},
    "sfa-trie": {"leaf_capacity": 15, "coefficients": 6},
}


@pytest.fixture(scope="module")
def tie_dataset():
    """Seeded dataset with exact duplicates so k-th answers tie exactly."""
    base = random_walk_dataset(160, 32, seed=101).values
    values = np.vstack([base, base[:24]])  # the first 24 series appear twice
    return Dataset(values=values, name="bulk-ties")


@pytest.fixture(scope="module")
def queries(tie_dataset):
    workload = synth_rand_workload(tie_dataset.length, count=4, seed=103)
    out = [np.asarray(q.series, dtype=np.float64) for q in workload]
    out.append(np.asarray(tie_dataset.values[3], dtype=np.float64))  # hits a tie pair
    return np.vstack(out)


def build_pair(method_name, dataset, **overrides):
    params = dict(TREE_METHOD_PARAMS[method_name])
    params.update(overrides)
    bulk = create_method(method_name, SeriesStore(dataset), build_mode="bulk", **params)
    loop = create_method(
        method_name, SeriesStore(dataset), build_mode="incremental", **params
    )
    bulk.build()
    loop.build()
    return bulk, loop


def assert_same_answers(a, b):
    """Distances must agree exactly; tied distances may permute positions.

    Two query-equivalent trees must return the same distance multiset.  Within
    one distance value the admitted positions must also match, except for the
    k-th (last) distance: when more candidates tie there than slots remain,
    either tree may legitimately admit a different member of the tie group
    (e.g. one copy of an exact-duplicate pair), so only the counts compare.
    """
    da, db = np.asarray(a.distances()), np.asarray(b.distances())
    assert da.shape == db.shape
    np.testing.assert_allclose(da, db, rtol=1e-9, atol=1e-9)
    groups_a, groups_b = {}, {}
    for p, d in zip(a.positions(), da):
        groups_a.setdefault(float(d), set()).add(p)
    for p, d in zip(b.positions(), db):
        groups_b.setdefault(float(d), set()).add(p)
    assert groups_a.keys() == groups_b.keys()
    boundary = float(da[-1]) if da.size else None
    for distance, members in groups_a.items():
        if distance == boundary:
            assert len(members) == len(groups_b[distance])
        else:
            assert members == groups_b[distance]


def collect_leaves(method):
    if method.name == "ads+":
        return method.tree.leaves()
    if method.name == "dstree":
        return method.root.leaves()
    return [
        leaf for child in method.root.children.values() for leaf in child.leaves()
    ]


class TestBuildEquivalence:
    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_knn_exact_matches(self, tie_dataset, queries, method_name):
        bulk, loop = build_pair(method_name, tie_dataset)
        for k in (1, 5, 12):
            for query in queries:
                assert_same_answers(
                    bulk.knn_exact(KnnQuery(series=query, k=k)),
                    loop.knn_exact(KnnQuery(series=query, k=k)),
                )

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_knn_exact_batch_matches(self, tie_dataset, queries, method_name):
        bulk, loop = build_pair(method_name, tie_dataset)
        for a, b in zip(
            bulk.knn_exact_batch(queries, k=5), loop.knn_exact_batch(queries, k=5)
        ):
            assert_same_answers(a, b)

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_every_position_in_exactly_one_leaf(self, tie_dataset, method_name):
        bulk, _ = build_pair(method_name, tie_dataset)
        positions = sorted(
            int(p) for leaf in collect_leaves(bulk) for p in leaf.position_block()
        )
        assert positions == list(range(tie_dataset.count))

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_leaf_capacity_respected(self, tie_dataset, method_name):
        bulk, loop = build_pair(method_name, tie_dataset)
        capacity = TREE_METHOD_PARAMS[method_name]["leaf_capacity"]
        for method in (bulk, loop):
            for leaf in collect_leaves(method):
                # Leaves at maximum resolution may legitimately overflow; the
                # random-walk data used here never exhausts the resolution.
                assert leaf.size <= capacity

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_footprint_stats_populated(self, tie_dataset, method_name):
        bulk, _ = build_pair(method_name, tie_dataset)
        assert bulk.index_stats.leaf_nodes == len(collect_leaves(bulk))
        assert bulk.index_stats.total_nodes > bulk.index_stats.leaf_nodes

    def test_incremental_mode_survives_describe(self, tie_dataset):
        _, loop = build_pair("isax2+", tie_dataset)
        assert loop.describe()["build_mode"] == "incremental"

    def test_rejects_unknown_build_mode(self, tie_dataset):
        with pytest.raises(ValueError):
            create_method(
                "isax2+", SeriesStore(tie_dataset), build_mode="eager", leaf_capacity=10
            )


class TestAppendAfterBulkBuild:
    """The per-series insert path must keep working after a bulk build."""

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_append_matches_full_build(self, method_name):
        values = random_walk_dataset(150, 32, seed=107).values
        initial, extra = 140, 10
        params = TREE_METHOD_PARAMS[method_name]

        # Bulk-build over the first 140 series, then append the remaining 10
        # through the retained incremental path (re-attaching a grown store,
        # the way persistence re-attaches stores on load).
        grown = create_method(
            method_name,
            SeriesStore(Dataset(values=values[:initial].copy(), name="prefix")),
            build_mode="bulk",
            **params,
        )
        grown.build()
        grown.store = SeriesStore(Dataset(values=values.copy(), name="full"))
        for position in range(initial, initial + extra):
            grown.append(position)

        # Reference: one build over the full collection.
        reference = create_method(
            method_name,
            SeriesStore(Dataset(values=values.copy(), name="full")),
            build_mode="bulk",
            **params,
        )
        reference.build()

        queries = np.vstack(
            [
                np.asarray(q.series, dtype=np.float64)
                for q in synth_rand_workload(32, count=3, seed=109)
            ]
            + [np.asarray(values[initial + 1], dtype=np.float64)]
        )
        for query in queries:
            assert_same_answers(
                grown.knn_exact(KnnQuery(series=query, k=5)),
                reference.knn_exact(KnnQuery(series=query, k=5)),
            )

        # Every appended position must be findable in some leaf.
        leaf_positions = {
            int(p) for leaf in collect_leaves(grown) for p in leaf.position_block()
        }
        assert set(range(initial + extra)) <= leaf_positions

    def test_queries_interleaved_with_appends_stay_exact(self):
        """Queries before an append populate the DSTree bound caches; the
        append must invalidate them or later queries over-prune (regression:
        26/80 queries returned wrong distances before the path invalidation).
        """
        rng = np.random.default_rng(307)
        base = random_walk_dataset(300, 32, seed=305).values
        # The appended series are shifted outliers: they widen the synopsis
        # ranges well past what the warmed caches recorded.
        outliers = (base[:40] * 0.5 + np.linspace(3, 6, 32)[None, :]).astype(
            base.dtype
        )
        values = np.vstack([base, outliers])
        initial = len(base)
        grown = create_method(
            "dstree",
            SeriesStore(Dataset(values=values[:initial].copy(), name="prefix")),
            leaf_capacity=5,
        )
        grown.build()
        # Queries near the outlier cluster: their true NNs are appended rows.
        queries = [outliers[i] + rng.normal(0, 0.8, 32) for i in range(0, 40, 2)]
        queries += [base[i] + rng.normal(0, 0.5, 32) for i in range(0, 40, 2)]
        queries = [np.asarray(q, dtype=np.float64) for q in queries]
        # Warm every node's cached bound matrices before appending.
        for query in queries:
            grown.knn_exact(KnnQuery(series=query, k=3))
        grown.store = SeriesStore(Dataset(values=values.copy(), name="full"))
        for position in range(initial, len(values)):
            grown.append(position)

        reference = create_method(
            "dstree",
            SeriesStore(Dataset(values=values.copy(), name="full")),
            leaf_capacity=5,
        )
        reference.build()
        for query in queries:
            assert_same_answers(
                grown.knn_exact(KnnQuery(series=query, k=5)),
                reference.knn_exact(KnnQuery(series=query, k=5)),
            )

    @pytest.mark.parametrize("method_name", ["isax2+", "dstree"])
    def test_append_spills_charge_the_live_store_counter(self, method_name):
        """After a store re-attachment, append-time spill I/O must land on the
        new store's counter, not the discarded one (regression)."""
        values = random_walk_dataset(120, 32, seed=217).values
        initial = 80
        method = create_method(
            method_name,
            SeriesStore(Dataset(values=values[:initial].copy(), name="prefix")),
            leaf_capacity=5,
            buffer_capacity=4,
        )
        method.build()
        old_store = method.store
        before = old_store.counter.snapshot()
        method.store = SeriesStore(Dataset(values=values.copy(), name="full"))
        for position in range(initial, len(values)):
            method.append(position)
        assert method._buffer.counter is method.store.counter
        assert method._buffer.in_memory_series == 0
        # The discarded store's counter saw none of the append traffic.
        delta = old_store.counter.diff(before)
        assert delta.bytes_written == 0
        assert delta.random_accesses == 0
        # The tight buffer must have actually spilled during the appends.
        assert method._buffer.stats.spills > 0
        assert method.store.counter.bytes_written > 0

    def test_append_requires_built_index(self):
        dataset = random_walk_dataset(40, 32, seed=111)
        method = create_method("isax2+", SeriesStore(dataset), leaf_capacity=10)
        with pytest.raises(RuntimeError):
            method.append(0)

    def test_ads_append_rejects_gaps(self):
        dataset = random_walk_dataset(40, 32, seed=113)
        method = create_method("ads+", SeriesStore(dataset), leaf_capacity=10)
        method.build()
        with pytest.raises(ValueError):
            method.append(dataset.count + 3)

    def test_methods_without_append_raise(self):
        # flat grew an append path with the live-ingest work; ucr-suite is
        # still a pure scan with no build-time state to extend.
        dataset = random_walk_dataset(40, 32, seed=115)
        method = create_method("ucr-suite", SeriesStore(dataset))
        method.build()
        with pytest.raises(NotImplementedError):
            method.append(0)
