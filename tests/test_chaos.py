"""Chaos suite: fault plans driven through every method (ISSUE acceptance).

Three guarantees, exercised with deterministic seeded fault plans:

(a) injected single-block corruption on checksummed storage surfaces as a
    typed :class:`CorruptionError` — never a silently wrong answer;
(b) transient-fault plans (I/O errors, short reads, latency) up to a 20%
    site rate yield **byte-identical** answers via the retry layer, for every
    registered method and the sharded wrapper;
(c) a killed shard worker is recovered by re-fork/re-execution to the exact
    answer, or — under ``allow_partial`` — the query returns a result
    explicitly flagged degraded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, SeriesStore
from repro.core.faults import FaultPlan, RetryPolicy
from repro.core.integrity import CorruptionError, invalidate_manifest_cache
from repro.core.queries import KnnQuery
from repro.core.registry import available_methods, create_method
from repro.workloads.generators import random_walk_dataset

#: fast build params per method (mirrors the CLI defaults, shrunk for tests).
_PARAMS = {
    "ads+": {"leaf_capacity": 50},
    "dstree": {"leaf_capacity": 50},
    "isax2+": {"leaf_capacity": 50},
    "sfa-trie": {"leaf_capacity": 100},
    "m-tree": {"node_capacity": 16},
    "r*-tree": {"leaf_capacity": 25},
}

#: a quick retry policy so chaos runs do not sleep through real backoffs.
#: A site can be transient-faulty AND truncate-faulty, so the worst case is
#: 2 * max_failures consecutive failures before it serves — budget past that.
_FAST_RETRY = RetryPolicy(attempts=8, base_delay=1e-5, max_delay=1e-4)

#: the two fixed transient plans exercised in CI (both at or under 20%).
TRANSIENT_PLANS = [
    FaultPlan(seed=7, transient=0.2, truncate=0.1),
    FaultPlan(seed=23, transient=0.15, truncate=0.2, latency=0.05, latency_seconds=0.0001),
]


@pytest.fixture(scope="module")
def chaos_dataset():
    return random_walk_dataset(240, 32, seed=5, name="chaos")


@pytest.fixture(scope="module")
def chaos_queries(chaos_dataset):
    rng = np.random.default_rng(17)
    return [
        KnnQuery(series=np.cumsum(rng.standard_normal(32)), k=3) for _ in range(3)
    ]


def _method(name, store, **extra):
    params = dict(_PARAMS.get(name.split(":", 1)[-1], {}))
    params.update(extra)
    method = create_method(name, store, **params)
    method.build()
    return method


def _answers(method, queries):
    out = []
    for query in queries:
        result = method.knn_exact(query)
        out.append([(n.position, n.distance) for n in result.neighbors])
    return out


# -- (b) transient faults: byte-identical answers through retries --------------


@pytest.mark.parametrize("name", available_methods() + ["sharded:flat", "sharded:dstree"])
def test_transient_plans_yield_identical_answers(name, chaos_dataset, chaos_queries):
    clean = _answers(_method(name, SeriesStore(chaos_dataset)), chaos_queries)
    for plan in TRANSIENT_PLANS:
        store = SeriesStore(chaos_dataset, faults=plan, retry=_FAST_RETRY)
        chaotic = _method(name, store)
        assert _answers(chaotic, chaos_queries) == clean, (
            f"{name} answers drifted under {plan.describe()}"
        )


def test_transient_plan_is_actually_firing(chaos_dataset):
    # Guard against the suite silently testing nothing: at 100% the plan must
    # produce retries on this dataset.
    store = SeriesStore(
        chaos_dataset, faults=FaultPlan(seed=1, transient=1.0), retry=_FAST_RETRY
    )
    store.read_contiguous(0, chaos_dataset.count)
    assert store.counter.retries > 0


# -- (a) corruption: typed error, never a wrong answer -------------------------


class TestCorruptionIsAlwaysCaught:
    def _corrupt_store(self, tmp_path, fmt):
        dataset = random_walk_dataset(600, 32, seed=9, name=f"corrupt-{fmt}")
        if fmt == "rcz":
            # The .rcz payload CRC guards the file bytes themselves, so the
            # corruption model for the compressed format is damage *in* the
            # file: flip a byte inside one stored block's payload.
            from repro.core.quantize import read_rcz_info

            dataset = dataset.to_compressed(tmp_path / "data.rcz")
            path = tmp_path / "data.rcz"
            info = read_rcz_info(path)
            with open(path, "r+b") as handle:
                handle.seek(int(info.table["offset"][0]) + 3)
                byte = handle.read(1)
                handle.seek(int(info.table["offset"][0]) + 3)
                handle.write(bytes([byte[0] ^ 0x10]))
            invalidate_manifest_cache()
            return SeriesStore(Dataset.from_file(path))
        if fmt == "npy":
            dataset = dataset.to_mmap(tmp_path / "data.npy")
        else:
            dataset.to_file(tmp_path / "data.f32")
            dataset = Dataset.from_file(tmp_path / "data.f32", length=32)
        invalidate_manifest_cache()
        # Damage-at-rest injected by the fault layer: every region of every
        # read comes back with a flipped bit, which the sidecar digests catch.
        return SeriesStore(
            dataset,
            faults=FaultPlan(seed=3, corrupt=1.0, region_rows=64),
            retry=_FAST_RETRY,
        )

    @pytest.mark.parametrize("fmt", ["rcz", "npy", "raw"])
    def test_scan_query_raises_corruption_error(self, tmp_path, fmt):
        store = self._corrupt_store(tmp_path, fmt)
        query = KnnQuery(series=np.zeros(32), k=3)
        # The typed error surfaces at the first read that touches the damaged
        # block — during the build scan or the query — never a wrong answer.
        with pytest.raises(CorruptionError):
            method = _method("flat", store)
            method.knn_exact(query)

    @pytest.mark.parametrize("fmt", ["npy", "raw"])
    def test_random_access_raises_corruption_error(self, tmp_path, fmt):
        store = self._corrupt_store(tmp_path, fmt)
        with pytest.raises(CorruptionError):
            store.read_block(np.arange(0, 600, 7))

    def test_corruption_is_permanent_not_retried_forever(self, tmp_path):
        store = self._corrupt_store(tmp_path, "raw")
        before = store.counter.retries
        with pytest.raises(CorruptionError):
            store.read_contiguous(0, 64)
        # CorruptionError is permanent: the retry loop must not have burned
        # its budget re-reading damaged bytes.
        assert store.counter.retries == before


# -- (c) shard-worker failure: recover exactly or degrade explicitly ----------


class TestShardWorkerRecovery:
    def _sharded(self, dataset, **extra):
        store = SeriesStore(dataset)
        return _method("sharded:flat", store, shards=3, workers=2, **extra)

    def _kill_next_calls(self, shard, count):
        """Make the shard's search raise for its next ``count`` calls."""
        original = shard.method._knn_exact
        state = {"left": count}

        def dying(query, k, stats):
            if state["left"] > 0:
                state["left"] -= 1
                raise RuntimeError("simulated killed shard worker")
            return original(query, k, stats)

        shard.method._knn_exact = dying
        return state

    def test_killed_worker_recovers_to_exact_answer(self, chaos_dataset, chaos_queries):
        baseline = _answers(self._sharded(chaos_dataset), chaos_queries[:1])
        method = self._sharded(chaos_dataset)
        self._kill_next_calls(method._shards[0], 1)
        result = method.knn_exact(chaos_queries[0])
        assert [(n.position, n.distance) for n in result.neighbors] == baseline[0]
        assert not result.stats.degraded
        assert result.stats.retries >= 1  # the re-executed shard is visible

    def test_permanent_failure_without_allow_partial_raises(
        self, chaos_dataset, chaos_queries
    ):
        method = self._sharded(chaos_dataset)
        self._kill_next_calls(method._shards[0], 10**6)
        with pytest.raises(RuntimeError, match="killed shard worker"):
            method.knn_exact(chaos_queries[0])

    def test_permanent_failure_with_allow_partial_degrades(
        self, chaos_dataset, chaos_queries
    ):
        method = self._sharded(chaos_dataset, allow_partial=True)
        dead = method._shards[0]
        self._kill_next_calls(dead, 10**6)
        result = method.knn_exact(chaos_queries[0])
        assert result.stats.degraded
        assert result.stats.shards_failed == 1
        # The answer is correct for the data examined: it equals brute force
        # over the surviving shards' rows.
        survivors = np.arange(dead.store.count, chaos_dataset.count)
        values = chaos_dataset.values[survivors].astype(np.float64)
        diffs = values - np.asarray(chaos_queries[0].series, dtype=np.float64)
        distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        order = np.argsort(distances, kind="stable")[:3]
        expected = [
            (int(survivors[i]), pytest.approx(float(distances[i]))) for i in order
        ]
        got = [(n.position, n.distance) for n in result.neighbors]
        assert got == expected

    def test_batch_path_flags_degraded_queries(self, chaos_dataset, chaos_queries):
        method = self._sharded(chaos_dataset, allow_partial=True)
        # The batch fan-out runs the shard's vectorized batch path, so the
        # killed worker must die there; every query in the affected (shard,
        # chunk) task degrades.
        broken = method._shards[1]

        def dying_batch(queries, k):
            raise RuntimeError("simulated killed shard worker")

        broken.method._batch_answer_sets = dying_batch
        stacked = np.vstack(
            [np.asarray(q.series, dtype=np.float64) for q in chaos_queries]
        )
        results = method.knn_exact_batch(stacked, k=3)
        assert all(r.stats.degraded for r in results)
        assert all(r.stats.shards_failed == 1 for r in results)

    def test_deadline_requires_allow_partial(self, chaos_dataset):
        store = SeriesStore(chaos_dataset)
        with pytest.raises(ValueError, match="allow_partial"):
            create_method(
                "sharded:flat", store, shards=2, workers=2, deadline_seconds=0.5
            )

    def test_deadline_drops_stragglers_as_degraded(self, chaos_dataset, chaos_queries):
        import time as _time

        method = self._sharded(
            chaos_dataset, allow_partial=True, deadline_seconds=0.15
        )
        slow = method._shards[0]
        original = slow.method._knn_exact

        def sleepy(query, k, stats):
            _time.sleep(1.0)
            return original(query, k, stats)

        slow.method._knn_exact = sleepy
        start = _time.monotonic()
        result = method.knn_exact(chaos_queries[0])
        elapsed = _time.monotonic() - start
        assert result.stats.degraded
        assert result.stats.shards_failed >= 1
        assert elapsed < 0.9  # did not wait for the sleeping worker
        method.close()

    def test_transient_faults_in_shard_stores_recover(self, chaos_dataset, chaos_queries):
        clean = _answers(self._sharded(chaos_dataset), chaos_queries)
        store = SeriesStore(
            chaos_dataset, faults=TRANSIENT_PLANS[0], retry=_FAST_RETRY
        )
        chaotic = _method("sharded:flat", store, shards=3, workers=2)
        assert _answers(chaotic, chaos_queries) == clean
