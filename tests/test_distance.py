"""Tests for the shared distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import (
    dynamic_time_warping,
    early_abandon_reordered,
    early_abandon_squared,
    euclidean,
    reorder_by_query,
    squared_euclidean,
    squared_euclidean_batch,
)

series_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=64),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestSquaredEuclidean:
    def test_known_value(self):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([1.0, 2.0, 2.0])
        assert squared_euclidean(a, b) == pytest.approx(9.0)
        assert euclidean(a, b) == pytest.approx(3.0)

    def test_identity(self):
        a = np.arange(10.0)
        assert squared_euclidean(a, a) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal(32), rng.standard_normal(32)
        assert squared_euclidean(a, b) == pytest.approx(squared_euclidean(b, a))

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        query = rng.standard_normal(16)
        candidates = rng.standard_normal((20, 16))
        batch = squared_euclidean_batch(query, candidates)
        scalar = np.array([squared_euclidean(query, c) for c in candidates])
        assert np.allclose(batch, scalar)

    def test_batch_single_row(self):
        query = np.zeros(4)
        candidate = np.ones(4)
        assert squared_euclidean_batch(query, candidate).shape == (1,)


class TestEarlyAbandoning:
    def test_exact_when_below_threshold(self):
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal(64), rng.standard_normal(64)
        exact = squared_euclidean(a, b)
        assert early_abandon_squared(a, b, threshold=exact + 1) == pytest.approx(exact)

    def test_abandons_above_threshold(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal(256), rng.standard_normal(256) + 10
        exact = squared_euclidean(a, b)
        result = early_abandon_squared(a, b, threshold=exact / 100)
        assert result > exact / 100

    def test_reordered_exact_when_below_threshold(self):
        rng = np.random.default_rng(4)
        a, b = rng.standard_normal(64), rng.standard_normal(64)
        exact = squared_euclidean(a, b)
        order = reorder_by_query(a)
        assert early_abandon_reordered(a, b, exact + 1, order) == pytest.approx(exact)

    def test_reorder_by_query_is_permutation(self):
        query = np.array([0.1, -3.0, 2.0, 0.0])
        order = reorder_by_query(query)
        assert sorted(order.tolist()) == [0, 1, 2, 3]
        assert order[0] == 1  # largest |value| first

    @given(series_strategy, st.floats(0.0, 1e6))
    @settings(max_examples=60, deadline=None)
    def test_property_never_underestimates_below_threshold(self, series, threshold):
        """If the early-abandoning result is <= threshold, it equals the true distance."""
        rng = np.random.default_rng(7)
        other = rng.standard_normal(series.shape[0])
        exact = squared_euclidean(series, other)
        result = early_abandon_squared(series, other, threshold)
        if result <= threshold:
            assert result == pytest.approx(exact, rel=1e-9, abs=1e-9)
        else:
            assert exact > threshold or result == pytest.approx(exact, rel=1e-9, abs=1e-9)


class TestDynamicTimeWarping:
    def test_identical_series(self):
        a = np.sin(np.linspace(0, 4, 32))
        assert dynamic_time_warping(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_dtw_no_greater_than_euclidean(self):
        rng = np.random.default_rng(5)
        a, b = rng.standard_normal(32), rng.standard_normal(32)
        assert dynamic_time_warping(a, b) <= euclidean(a, b) + 1e-9

    def test_window_constrained(self):
        rng = np.random.default_rng(6)
        a, b = rng.standard_normal(32), rng.standard_normal(32)
        unconstrained = dynamic_time_warping(a, b)
        constrained = dynamic_time_warping(a, b, window=2)
        assert constrained >= unconstrained - 1e-9

    def test_different_lengths(self):
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([0.0, 1.0, 1.5, 2.0])
        assert dynamic_time_warping(a, b) >= 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dynamic_time_warping(np.array([]), np.array([1.0]))
