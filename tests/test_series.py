"""Tests for repro.core.series (Dataset container and z-normalization)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.series import SERIES_DTYPE, Dataset, is_znormalized, znormalize


class TestZnormalize:
    def test_single_series_mean_and_std(self):
        series = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        normalized = znormalize(series)
        assert abs(normalized.mean()) < 1e-5
        assert abs(normalized.std() - 1.0) < 1e-5

    def test_batch_normalization(self):
        rng = np.random.default_rng(0)
        batch = rng.standard_normal((10, 32)) * 5 + 3
        normalized = znormalize(batch)
        assert normalized.shape == batch.shape
        assert np.allclose(normalized.mean(axis=1), 0.0, atol=1e-5)
        assert np.allclose(normalized.std(axis=1), 1.0, atol=1e-4)

    def test_constant_series_becomes_zero(self):
        series = np.full(16, 7.0)
        normalized = znormalize(series)
        assert np.all(normalized == 0.0)

    def test_constant_rows_in_batch(self):
        batch = np.vstack([np.full(8, 3.0), np.arange(8, dtype=float)])
        normalized = znormalize(batch)
        assert np.all(normalized[0] == 0.0)
        assert abs(normalized[1].std() - 1.0) < 1e-4

    def test_output_dtype_is_single_precision(self):
        assert znormalize(np.arange(10.0)).dtype == SERIES_DTYPE

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            znormalize(np.zeros((2, 3, 4)))

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=4, max_value=64),
            elements=st.floats(-1e3, 1e3, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_normalized_output(self, series):
        normalized = znormalize(series)
        # Either the series was (near) constant and maps to zeros, or the
        # output has mean ~0 and std ~1.
        if np.all(normalized == 0.0):
            assert np.std(series) < 1e-6 or np.allclose(series, series[0], atol=1e-6)
        else:
            assert abs(float(normalized.mean())) < 1e-3
            assert abs(float(normalized.std()) - 1.0) < 1e-2


class TestIsZnormalized:
    def test_detects_normalized(self):
        rng = np.random.default_rng(1)
        batch = znormalize(rng.standard_normal((5, 64)))
        assert is_znormalized(batch)

    def test_detects_unnormalized(self):
        batch = np.random.default_rng(2).standard_normal((5, 64)) * 10 + 4
        assert not is_znormalized(batch)


class TestDataset:
    def test_basic_properties(self):
        values = np.zeros((10, 16), dtype=np.float32)
        values[:, 0] = np.arange(10)
        ds = Dataset(values=values, name="test")
        assert ds.count == 10
        assert ds.length == 16
        assert len(ds) == 10
        assert ds.nbytes == 10 * 16 * 4

    def test_rejects_wrong_dimensionality(self):
        with pytest.raises(ValueError):
            Dataset(values=np.zeros(10))

    def test_accepts_zero_rows(self):
        # Zero-row collections are valid (a streamed writer may finalize
        # before any chunk arrives); zero-length series are not.
        ds = Dataset(values=np.zeros((0, 5)))
        assert (ds.count, ds.length) == (0, 5)

    def test_rejects_zero_length_series(self):
        with pytest.raises(ValueError):
            Dataset(values=np.zeros((3, 0)))

    def test_from_array_normalizes(self):
        rng = np.random.default_rng(3)
        raw = rng.standard_normal((20, 32)) * 4 + 2
        ds = Dataset.from_array(raw, normalize=True)
        assert ds.normalized
        assert np.allclose(ds.values.mean(axis=1), 0.0, atol=1e-4)

    def test_getitem_and_iteration(self):
        values = np.arange(40, dtype=np.float32).reshape(8, 5)
        ds = Dataset(values=values)
        assert np.array_equal(ds[3], values[3])
        assert sum(1 for _ in ds.iter_series()) == 8

    def test_sample_without_replacement(self):
        values = np.arange(100, dtype=np.float32).reshape(20, 5)
        ds = Dataset(values=values)
        sample = ds.sample(20, rng=np.random.default_rng(0))
        assert sample.shape == (20, 5)
        # sampling all rows without replacement covers every series
        assert len({tuple(row) for row in sample}) == 20

    def test_sample_too_many_raises(self):
        ds = Dataset(values=np.zeros((5, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            ds.sample(6)

    def test_paper_equivalent_gb(self):
        ds = Dataset(values=np.zeros((1024, 256), dtype=np.float32))
        expected = 1024 * 256 * 4 / 1024**3
        assert ds.paper_equivalent_gb == pytest.approx(expected)
