"""Unit tests for the internal node structures of the tree indexes."""

import numpy as np
import pytest

from repro.indexes.ads.tree import AdsTree
from repro.indexes.dstree.node import DsTreeNode, SplitPolicy
from repro.indexes.isax.node import IsaxNode
from repro.indexes.rstartree.index import RStarNode, _enlargement, _overlap
from repro.indexes.sfa_trie.index import SfaTrieNode
from repro.summarization.sax import IsaxSummarizer, SaxWord
from repro.workloads import random_walk_dataset


class TestIsaxNode:
    def test_payload_and_traversal(self):
        root = IsaxNode(word=None, is_leaf=False)
        child = IsaxNode(
            word=SaxWord(symbols=(0, 1), cardinalities=(2, 2)), depth=1, parent=root
        )
        root.children[(0, 1)] = child
        child.add(4, np.zeros(2))
        child.add(7, np.ones(2))
        assert child.size == 2
        assert [node for node in root.iter_nodes()] != []
        assert root.leaves() == [child]
        child.clear_payload()
        assert child.size == 0


class TestAdsTree:
    def test_bulk_insert_and_leaf_lookup(self):
        dataset = random_walk_dataset(200, 32, seed=17)
        summarizer = IsaxSummarizer(32, segments=8, cardinality=16)
        tree = AdsTree(summarizer, leaf_capacity=20)
        paa = summarizer.paa.transform_batch(dataset.values)
        tree.bulk_insert(paa)
        # Every series is in exactly one leaf.
        positions = [p for leaf in tree.leaves() for p in leaf.positions]
        assert sorted(positions) == list(range(200))
        # Leaf lookup routes to a leaf containing similar series.
        leaf = tree.leaf_for(paa[0])
        assert leaf is not None and leaf.is_leaf
        assert tree.node_count() >= len(tree.leaves())

    def test_rejects_bad_capacity(self):
        summarizer = IsaxSummarizer(32, segments=8)
        with pytest.raises(ValueError):
            AdsTree(summarizer, leaf_capacity=0)


class TestDsTreeNode:
    def test_horizontal_routing_on_mean(self):
        boundaries = np.array([0, 4, 8])
        node = DsTreeNode(boundaries=boundaries, is_leaf=False)
        node.policy = SplitPolicy(kind="mean", segment=0, threshold=0.0)
        node.left = DsTreeNode(boundaries=boundaries)
        node.right = DsTreeNode(boundaries=boundaries)
        low_series = np.concatenate([np.full(4, -1.0), np.zeros(4)])
        high_series = np.concatenate([np.full(4, 2.0), np.zeros(4)])
        assert node.route(low_series) is node.left
        assert node.route(high_series) is node.right

    def test_std_routing(self):
        boundaries = np.array([0, 4, 8])
        node = DsTreeNode(boundaries=boundaries, is_leaf=False)
        node.policy = SplitPolicy(kind="std", segment=1, threshold=0.5)
        node.left = DsTreeNode(boundaries=boundaries)
        node.right = DsTreeNode(boundaries=boundaries)
        flat = np.zeros(8)
        noisy = np.concatenate([np.zeros(4), np.array([3.0, -3.0, 3.0, -3.0])])
        assert node.route(flat) is node.left
        assert node.route(noisy) is node.right

    def test_vertical_policy_uses_child_boundaries(self):
        boundaries = np.array([0, 8])
        refined = np.array([0, 4, 8])
        node = DsTreeNode(boundaries=boundaries, is_leaf=False)
        node.policy = SplitPolicy(
            kind="mean", segment=0, threshold=0.0, vertical=True, child_boundaries=refined
        )
        node.left = DsTreeNode(boundaries=refined)
        node.right = DsTreeNode(boundaries=refined)
        series = np.concatenate([np.full(4, -2.0), np.full(4, 5.0)])
        # The split feature is the mean of the refined first half (-2), not the
        # whole-segment mean (+1.5).
        assert node.policy_value(series) == pytest.approx(-2.0)
        assert node.route(series) is node.left

    def test_describe(self):
        policy = SplitPolicy(kind="mean", segment=2, threshold=1.5)
        assert "seg=2" in policy.describe()
        assert policy.describe().startswith("H-split")
        vertical = SplitPolicy(kind="std", segment=0, threshold=0.1, vertical=True)
        assert vertical.describe().startswith("V-split")


class TestRStarGeometry:
    def test_mbr_recompute_leaf(self):
        node = RStarNode(is_leaf=True)
        node.positions = [0, 1]
        node.points = [np.array([0.0, 1.0]), np.array([2.0, -1.0])]
        node.recompute_mbr()
        assert np.allclose(node.lower, [0.0, -1.0])
        assert np.allclose(node.upper, [2.0, 1.0])
        assert node.margin == pytest.approx(4.0)
        assert node.area == pytest.approx(4.0)

    def test_extend(self):
        node = RStarNode(is_leaf=True)
        point = np.array([1.0, 1.0])
        node.extend(point, point)
        node.extend(np.array([-1.0, 2.0]), np.array([-1.0, 2.0]))
        assert np.allclose(node.lower, [-1.0, 1.0])
        assert np.allclose(node.upper, [1.0, 2.0])

    def test_enlargement_zero_inside(self):
        lower, upper = np.array([0.0, 0.0]), np.array([2.0, 2.0])
        assert _enlargement(lower, upper, np.array([1.0, 1.0])) == pytest.approx(0.0)
        assert _enlargement(lower, upper, np.array([3.0, 1.0])) > 0

    def test_overlap(self):
        assert _overlap(
            np.array([0.0, 0.0]), np.array([2.0, 2.0]),
            np.array([1.0, 1.0]), np.array([3.0, 3.0]),
        ) == pytest.approx(1.0)
        assert _overlap(
            np.array([0.0, 0.0]), np.array([1.0, 1.0]),
            np.array([2.0, 2.0]), np.array([3.0, 3.0]),
        ) == pytest.approx(0.0)

    def test_empty_mbr(self):
        node = RStarNode(is_leaf=True)
        node.recompute_mbr()
        assert node.lower is None
        assert node.area == 0.0


class TestSfaTrieNode:
    def test_prefix_tree_traversal(self):
        root = SfaTrieNode(prefix=(), depth=0, is_leaf=False)
        child = SfaTrieNode(prefix=(3,), depth=1)
        grandchild = SfaTrieNode(prefix=(3, 1), depth=2)
        child.is_leaf = False
        child.children[(3, 1)] = grandchild
        root.children[(3,)] = child
        grandchild.positions = [1, 2, 3]
        assert grandchild.size == 3
        leaves = [leaf for node in root.children.values() for leaf in node.leaves()]
        assert leaves == [grandchild]
