"""Tests for end-to-end data integrity: sidecars, .rcz CRCs, atomic writes."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import Dataset, SeriesStore
from repro.core.integrity import (
    CRC_SUFFIX,
    ChecksumAccumulator,
    CorruptionError,
    checksum,
    invalidate_manifest_cache,
    load_manifest,
    manifest_for,
)
from repro.core.persistence import (
    DatasetFileError,
    load_method,
    save_method,
)
from repro.core.quantize import read_rcz_info
from repro.core.registry import create_method
from repro.core.series import SeriesFileWriter


@pytest.fixture(autouse=True)
def _fresh_manifest_cache():
    # Manifests are cached process-wide by (path, mtime, size); tests that
    # corrupt files in place must never see a stale verified-set.
    invalidate_manifest_cache()
    yield
    invalidate_manifest_cache()


def _rows(count=300, length=32, seed=7):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((count, length)).astype(np.float32)


def _flip_byte(path, offset):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0x40]))


class TestChecksumPrimitives:
    def test_checksum_matches_zlib_semantics(self):
        data = b"hello blocks"
        assert checksum(data) == checksum(data)
        assert checksum(data) != checksum(b"hello block!")

    def test_accumulator_is_chunking_invariant(self):
        rows = _rows(count=2500)
        whole = ChecksumAccumulator(block_rows=1024)
        whole.update(rows)
        pieces = ChecksumAccumulator(block_rows=1024)
        for start in range(0, 2500, 333):
            pieces.update(rows[start : start + 333])
        assert whole.digests() == pieces.digests()
        # Three blocks for 2500 rows at 1024 rows/block.
        assert len(whole.digests()) == 3


class TestSidecarManifests:
    def test_writer_emits_sidecar(self, tmp_path):
        rows = _rows()
        path = tmp_path / "data.f32"
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(rows)
        sidecar = path.with_name(path.name + CRC_SUFFIX)
        assert sidecar.exists()
        manifest = load_manifest(path)
        assert manifest.count == 300
        assert manifest.length == 32

    def test_manifest_for_missing_sidecar_is_none(self, tmp_path):
        path = tmp_path / "bare.f32"
        _rows().tofile(path)
        assert manifest_for(path) is None

    def test_rewritten_sidecar_with_same_mtime_and_size_is_not_cached(
        self, tmp_path
    ):
        # Regression: the manifest cache used to key on (path, mtime, size)
        # only.  A sidecar regenerated within the filesystem's mtime
        # granularity at the same byte size collided with the stale cache
        # entry — its verified-set then vouched for the *old* data.  The key
        # now folds in the sidecar's trailing self-CRC, so same-second
        # rewrites miss the cache.
        import os

        path = tmp_path / "data.f32"
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(_rows(seed=1))
        sidecar = path.with_name(path.name + CRC_SUFFIX)
        stat = sidecar.stat()
        stale = manifest_for(path)
        assert stale is not None

        # Rewrite data + sidecar (same geometry => same sidecar size), then
        # force the sidecar's mtime back to the first generation's.
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(_rows(seed=2))
        os.utime(sidecar, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        fresh_stat = sidecar.stat()
        assert fresh_stat.st_mtime_ns == stat.st_mtime_ns
        assert fresh_stat.st_size == stat.st_size

        fresh = manifest_for(path)
        assert fresh is not None and fresh is not stale
        assert not np.array_equal(fresh.crcs, stale.crcs)
        # The fresh manifest verifies the fresh bytes end to end.
        store = SeriesStore(Dataset.from_file(path, length=32))
        np.testing.assert_allclose(
            store.read_contiguous(0, 300), _rows(seed=2)
        )

    def test_corrupt_sidecar_is_rejected(self, tmp_path):
        rows = _rows()
        path = tmp_path / "data.f32"
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(rows)
        sidecar = path.with_name(path.name + CRC_SUFFIX)
        _flip_byte(sidecar, sidecar.stat().st_size - 2)  # break the self-digest
        with pytest.raises(CorruptionError):
            load_manifest(path)

    def test_scan_detects_flipped_bit_in_raw_file(self, tmp_path):
        path = tmp_path / "data.f32"
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(_rows())
        _flip_byte(path, 5000)
        store = SeriesStore(Dataset.from_file(path, length=32))
        with pytest.raises(CorruptionError) as excinfo:
            for _ in store.scan_chunks():
                pass
        assert excinfo.value.block is not None

    def test_scan_detects_flipped_bit_in_npy_file(self, tmp_path):
        dataset = Dataset(values=_rows(), name="npy-case")
        dataset = dataset.to_mmap(tmp_path / "data.npy")
        # Flip a data byte well past the .npy header.
        _flip_byte(tmp_path / "data.npy", 4096)
        store = SeriesStore(Dataset.from_file(tmp_path / "data.npy"))
        with pytest.raises(CorruptionError):
            for _ in store.scan_chunks():
                pass

    def test_random_access_reads_detect_corruption(self, tmp_path):
        path = tmp_path / "data.f32"
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(_rows())
        _flip_byte(path, 128 * 10)  # a byte inside row 10
        store = SeriesStore(Dataset.from_file(path, length=32))
        with pytest.raises(CorruptionError):
            store.read_block(np.array([5, 10, 20]))
        invalidate_manifest_cache()
        with pytest.raises(CorruptionError):
            store.read_one(10)

    def test_verification_passes_on_healthy_file_and_caches(self, tmp_path):
        path = tmp_path / "data.f32"
        rows = _rows()
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(rows)
        store = SeriesStore(Dataset.from_file(path, length=32))
        data = store.read_contiguous(0, 300)
        np.testing.assert_allclose(data, rows)
        manifest = manifest_for(path)
        assert manifest is not None and manifest.verified
        # A fork shares the same manifest object (one verified-set/process).
        assert store.fork().read_contiguous(0, 300).shape == (300, 32)

    def test_verify_false_opts_out(self, tmp_path):
        path = tmp_path / "data.f32"
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(_rows())
        _flip_byte(path, 5000)
        store = SeriesStore(Dataset.from_file(path, length=32), verify=False)
        # No verification: the corrupt bytes flow through (caller's choice).
        for _ in store.scan_chunks():
            pass

    def test_stale_sidecar_geometry_is_rejected(self, tmp_path):
        path = tmp_path / "data.f32"
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(_rows())
        # Grow the data file after the sidecar was written.
        with open(path, "ab") as handle:
            handle.write(b"\0" * 128 * 4)
        with pytest.raises(CorruptionError, match="sidecar"):
            SeriesStore(Dataset.from_file(path, length=32)).read_contiguous(0, 10)


class TestCompressedChecksums:
    def test_rcz_v2_records_checksums(self, tmp_path):
        dataset = Dataset(values=_rows(), name="rcz-case")
        dataset.to_compressed(tmp_path / "data.rcz")
        info = read_rcz_info(tmp_path / "data.rcz")
        assert info.has_checksums

    def test_rcz_block_corruption_detected(self, tmp_path):
        dataset = Dataset(values=_rows(count=2000), name="rcz-corrupt")
        dataset.to_compressed(tmp_path / "data.rcz")
        info = read_rcz_info(tmp_path / "data.rcz")
        # Flip a byte inside the first block's payload.
        _flip_byte(tmp_path / "data.rcz", int(info.table["offset"][0]) + 3)
        store = SeriesStore(Dataset.from_file(tmp_path / "data.rcz"))
        with pytest.raises(CorruptionError) as excinfo:
            store.read_contiguous(0, 100)
        assert excinfo.value.block == 0


class TestAtomicWriters:
    def test_series_writer_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "data.f32"
        with SeriesFileWriter(path, length=32) as writer:
            writer.append(_rows())
        assert path.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_series_writer_abandons_on_error(self, tmp_path):
        path = tmp_path / "data.f32"
        with pytest.raises(RuntimeError):
            with SeriesFileWriter(path, length=32) as writer:
                writer.append(_rows(count=10))
                raise RuntimeError("interrupted")
        # The target path never appeared, and the temp file is gone.
        assert not path.exists()
        assert not list(tmp_path.glob("*"))

    def test_compressed_writer_abandons_on_error(self, tmp_path):
        from repro.core.quantize import CompressedFileWriter

        path = tmp_path / "data.rcz"
        with pytest.raises(RuntimeError):
            with CompressedFileWriter(path, length=32) as writer:
                writer.append(_rows(count=10))
                raise RuntimeError("interrupted")
        assert not path.exists()
        assert not list(tmp_path.glob("*"))


class TestPersistenceIntegrity:
    def _saved(self, tmp_path):
        dataset = Dataset(values=_rows(count=200), name="persist")
        store = SeriesStore(dataset)
        method = create_method("flat", store)
        method.build()
        path = tmp_path / "index.bin"
        save_method(method, path)
        return dataset, path

    def test_round_trip_still_works(self, tmp_path):
        dataset, path = self._saved(tmp_path)
        method = load_method(path, dataset=dataset)
        assert method.is_built

    def test_truncated_index_file_is_refused(self, tmp_path):
        dataset, path = self._saved(tmp_path)
        envelope = pickle.loads(path.read_bytes())
        envelope.method_state = envelope.method_state[:-16]
        path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(CorruptionError, match="checksum mismatch"):
            load_method(path, dataset=dataset)

    def test_missing_dataset_file_is_typed(self, tmp_path):
        source = tmp_path / "data.f32"
        with SeriesFileWriter(source, length=32) as writer:
            writer.append(_rows())
        store = SeriesStore(Dataset.from_file(source, length=32))
        method = create_method("flat", store)
        method.build()
        index_path = tmp_path / "index.bin"
        save_method(method, index_path)
        source.unlink()
        source.with_name(source.name + CRC_SUFFIX).unlink()
        with pytest.raises(DatasetFileError) as excinfo:
            load_method(index_path)
        assert excinfo.value.path == str(source)
        assert excinfo.value.kind == "mmap"

    def test_truncated_dataset_file_is_typed(self, tmp_path):
        source = tmp_path / "data.f32"
        with SeriesFileWriter(source, length=32) as writer:
            writer.append(_rows())
        store = SeriesStore(Dataset.from_file(source, length=32))
        method = create_method("flat", store)
        method.build()
        index_path = tmp_path / "index.bin"
        save_method(method, index_path)
        with open(source, "r+b") as handle:
            handle.truncate(source.stat().st_size // 2)
        with pytest.raises(DatasetFileError, match="truncated"):
            load_method(index_path)
