"""Tests for the Haar wavelet (DHWT) and VA+ summarizations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import euclidean
from repro.summarization.dhwt import (
    DhwtSummarizer,
    haar_transform,
    inverse_haar_transform,
    level_slices,
)
from repro.summarization.vaplus import (
    VaPlusSummarizer,
    allocate_bits,
    lloyd_max_boundaries,
)


class TestHaar:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        series = rng.standard_normal(64)
        coeffs = haar_transform(series)
        restored = inverse_haar_transform(coeffs, original_length=64)
        assert np.allclose(restored, series, atol=1e-9)

    def test_roundtrip_non_power_of_two(self):
        rng = np.random.default_rng(1)
        series = rng.standard_normal(48)
        coeffs = haar_transform(series)
        restored = inverse_haar_transform(coeffs, original_length=48)
        assert np.allclose(restored, series, atol=1e-9)

    def test_orthonormal_distance_preservation(self):
        rng = np.random.default_rng(2)
        a, b = rng.standard_normal(128), rng.standard_normal(128)
        da = haar_transform(a) - haar_transform(b)
        assert np.sqrt(np.dot(da, da)) == pytest.approx(euclidean(a, b), rel=1e-9)

    def test_first_coefficient_is_scaled_mean(self):
        series = np.arange(8.0)
        coeffs = haar_transform(series)
        assert coeffs[0] == pytest.approx(series.sum() / np.sqrt(8))

    def test_level_slices_cover_all(self):
        slices = level_slices(16)
        covered = sum(s.stop - s.start for s in slices)
        assert covered == 16
        assert slices[0] == slice(0, 1)

    @given(
        hnp.arrays(np.float64, 64, elements=st.floats(-100, 100, allow_nan=False)),
        hnp.arrays(np.float64, 64, elements=st.floats(-100, 100, allow_nan=False)),
        st.sampled_from([1, 2, 4, 8, 16, 32]),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_prefix_lower_bounds(self, a, b, coefficients):
        summarizer = DhwtSummarizer(64, coefficients)
        bound = summarizer.lower_bound(summarizer.transform(a), summarizer.transform(b))
        assert bound <= euclidean(a, b) + 1e-6

    def test_prefix_bounds_bracket_distance(self):
        rng = np.random.default_rng(3)
        a, b = rng.standard_normal(64), rng.standard_normal(64)
        qa, qb = haar_transform(a), haar_transform(b)
        true = euclidean(a, b)
        for prefix in (1, 4, 16, 64):
            lower, upper = DhwtSummarizer.prefix_bounds(qa, qb, prefix)
            assert lower <= true + 1e-9
            assert upper >= true - 1e-9

    def test_lower_bound_batch(self):
        summarizer = DhwtSummarizer(32, 8)
        rng = np.random.default_rng(4)
        q = summarizer.transform(rng.standard_normal(32))
        cands = summarizer.transform_batch(rng.standard_normal((5, 32)))
        batch = summarizer.lower_bound_batch(q, cands)
        scalar = [summarizer.lower_bound(q, c) for c in cands]
        assert np.allclose(batch, scalar)


class TestBitAllocation:
    def test_total_budget_respected(self):
        energies = np.array([10.0, 5.0, 1.0, 0.1])
        bits = allocate_bits(energies, 12)
        assert bits.sum() == 12

    def test_high_energy_gets_more_bits(self):
        energies = np.array([100.0, 1.0, 1.0, 1.0])
        bits = allocate_bits(energies, 8)
        assert bits[0] == bits.max()

    def test_zero_energy_gets_none(self):
        energies = np.array([1.0, 0.0])
        bits = allocate_bits(energies, 4)
        assert bits[1] == 0

    def test_zero_budget(self):
        assert allocate_bits(np.array([1.0, 2.0]), 0).sum() == 0


class TestLloydMax:
    def test_boundaries_increasing(self):
        rng = np.random.default_rng(5)
        values = rng.standard_normal(500)
        boundaries = lloyd_max_boundaries(values, 8)
        assert boundaries.shape == (7,)
        assert np.all(np.diff(boundaries) >= 0)

    def test_degenerate_sample(self):
        boundaries = lloyd_max_boundaries(np.array([1.0, 1.0, 1.0]), 4)
        assert boundaries.shape == (3,)

    def test_single_level(self):
        assert lloyd_max_boundaries(np.arange(10.0), 1).shape == (0,)


class TestVaPlus:
    @pytest.fixture()
    def fitted(self):
        rng = np.random.default_rng(6)
        sample = np.cumsum(rng.standard_normal((256, 64)), axis=1)
        summarizer = VaPlusSummarizer(64, coefficients=8, bits_per_dimension=3)
        return summarizer.fit(sample), sample

    def test_requires_fit(self):
        summarizer = VaPlusSummarizer(64, 8)
        with pytest.raises(RuntimeError):
            summarizer.transform(np.zeros(64))

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            VaPlusSummarizer(64, 8, bits_per_dimension=0)

    def test_cells_in_range(self, fitted):
        summarizer, sample = fitted
        cells = summarizer.transform_batch(sample)
        for j, quantizer in enumerate(summarizer.quantizers):
            assert cells[:, j].max() < quantizer.levels
            assert cells[:, j].min() >= 0

    def test_non_uniform_allocation(self, fitted):
        summarizer, _ = fitted
        bits = summarizer.bit_allocation
        # Random-walk energy concentrates in low frequencies, so the allocation
        # must not be flat.
        assert bits.max() > bits.min()

    def test_lower_bound_is_valid(self, fitted):
        summarizer, sample = fitted
        rng = np.random.default_rng(7)
        query = rng.standard_normal(64)
        q_dft = summarizer.dft_of(query)
        for row in sample[:20]:
            bound = summarizer.lower_bound(q_dft, summarizer.transform(row))
            assert bound <= euclidean(query, row) + 1e-6

    def test_upper_bound_dominates_lower(self, fitted):
        summarizer, sample = fitted
        rng = np.random.default_rng(8)
        query = rng.standard_normal(64)
        q_dft = summarizer.dft_of(query)
        for row in sample[:20]:
            cells = summarizer.transform(row)
            assert summarizer.upper_bound(q_dft, cells) >= summarizer.lower_bound(
                q_dft, cells
            )

    def test_lower_bound_batch_matches_scalar(self, fitted):
        summarizer, sample = fitted
        rng = np.random.default_rng(9)
        query = rng.standard_normal(64)
        q_dft = summarizer.dft_of(query)
        cells = summarizer.transform_batch(sample[:15])
        batch = summarizer.lower_bound_batch(q_dft, cells)
        scalar = [summarizer.lower_bound(q_dft, c) for c in cells]
        assert np.allclose(batch, scalar, atol=1e-9)

    @given(st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_property_lower_bounds_euclidean(self, seed):
        rng = np.random.default_rng(seed)
        sample = np.cumsum(rng.standard_normal((64, 32)), axis=1)
        summarizer = VaPlusSummarizer(32, coefficients=8, bits_per_dimension=2).fit(sample)
        a, b = rng.standard_normal(32), rng.standard_normal(32)
        bound = summarizer.lower_bound(summarizer.dft_of(a), summarizer.transform(b))
        assert bound <= euclidean(a, b) + 1e-6
