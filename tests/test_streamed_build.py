"""Streamed-build equivalence suite.

The tree bulk builds (iSAX2+ / ADS+ / DSTree / SFA-trie) stream the
collection over ``SeriesStore.scan_blocks``/``peek_chunks`` instead of
materializing full-collection float64 temporaries.  The contract under test:
the chunk size is *invisible* — a build streamed in small chunks (including
sizes that do not divide the collection) yields a tree identical to the
in-RAM single-chunk build, node for node and value for value, with identical
build counters and identical query answers and accounting, on the memory and
mmap backends alike, including through the ``sharded:*`` wrappers.
"""

import numpy as np
import pytest

from repro import Dataset, SeriesStore, create_method
from repro.core.queries import KnnQuery
from repro.workloads import random_walk_dataset, synth_rand_workload

#: every tree method with small leaves, so chunked streams cross many splits.
TREE_METHOD_PARAMS = {
    "isax2+": {"leaf_capacity": 12},
    "ads+": {"leaf_capacity": 12},
    "dstree": {"leaf_capacity": 12},
    "sfa-trie": {"leaf_capacity": 18, "coefficients": 6, "sample_size": 128},
}

#: chunk sizes that do not divide the 430-row collection.
ODD_CHUNKS = (37, 97)

COUNT, LENGTH = 430, 48


@pytest.fixture(scope="module")
def dataset():
    return random_walk_dataset(COUNT, LENGTH, seed=71)


@pytest.fixture(scope="module")
def mmap_dataset(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("streamed-build") / "walks.npy"
    dataset.to_file(path)
    return Dataset.from_file(path)


def norm(arr) -> bytes:
    """Value bytes of an array, invariant to integer storage width."""
    arr = np.asarray(arr)
    if np.issubdtype(arr.dtype, np.integer):
        arr = arr.astype(np.int64)
    return arr.tobytes()


def tree_fingerprint(method) -> list:
    """Every structural and numeric fact of a built tree, traversal-ordered."""
    name = method.name.split(":", 1)[-1]
    out: list = []
    if name == "isax2+":
        roots = [method.root]
    elif name == "ads+":
        out.append(("paa", norm(method._paa)))
        out.append(("symbols", norm(method._symbols)))
        roots = [method.tree.root]
    elif name == "dstree":
        roots = [method.root]
    elif name == "sfa-trie":
        out.append(("breakpoints", norm(method.summarizer.breakpoints)))
        out.append(("words", norm(method._words)))
        roots = [method.root]
    else:  # pragma: no cover - guard against new methods
        raise AssertionError(f"no fingerprint for {name}")

    stack = list(roots)
    while stack:
        node = stack.pop()
        if name == "dstree":
            entry = [
                node.boundaries.tolist(),
                node.depth,
                node.is_leaf,
                node.position_block().tolist(),
            ]
            if node.policy is not None:
                p = node.policy
                entry.append(
                    (
                        p.kind,
                        p.segment,
                        p.threshold,
                        p.vertical,
                        None if p.child_boundaries is None else p.child_boundaries.tolist(),
                    )
                )
            if node.synopsis is not None:
                entry.append(
                    [
                        (s.mean_min, s.mean_max, s.std_min, s.std_max, s.width)
                        for s in node.synopsis.segments
                    ]
                )
            out.append(tuple(entry))
            stack.extend(c for c in (node.left, node.right) if c is not None)
        elif name == "sfa-trie":
            out.append((node.prefix, node.is_leaf, node.position_block().tolist()))
            stack.extend(node.children[k] for k in sorted(node.children))
        else:  # the iSAX family
            word = None
            if node.word is not None:
                word = (node.word.symbols, node.word.cardinalities)
            out.append(
                (
                    word,
                    node.depth,
                    node.is_leaf,
                    node.split_segment,
                    node.position_block().tolist(),
                    norm(node.paa_block()),
                )
            )
            stack.extend(node.children[k] for k in sorted(node.children))
    return out


def build(method_name, dataset, backend=None, **overrides):
    params = dict(TREE_METHOD_PARAMS[method_name])
    params.update(overrides)
    method = create_method(method_name, SeriesStore(dataset, backend=backend), **params)
    stats = method.build()
    return method, stats


def query_facts(method, queries, k=5):
    """Answers plus access accounting for a query batch (exact positions)."""
    facts = []
    for result in method.knn_exact_batch(queries, k=k):
        s = result.stats
        facts.append(
            (
                result.positions(),
                result.distances(),
                s.series_examined,
                s.random_accesses,
                s.sequential_pages,
                s.bytes_read,
            )
        )
    return facts


@pytest.fixture(scope="module")
def queries(dataset):
    workload = synth_rand_workload(LENGTH, count=4, seed=73)
    return np.vstack([np.asarray(q.series, dtype=np.float64) for q in workload])


class TestStreamedEqualsInRam:
    """Small odd chunks == one whole-collection chunk (the in-RAM build)."""

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    @pytest.mark.parametrize("chunk", ODD_CHUNKS)
    def test_tree_identical_on_memory_backend(self, dataset, method_name, chunk):
        inram, inram_stats = build(method_name, dataset, build_chunk_rows=COUNT)
        streamed, streamed_stats = build(method_name, dataset, build_chunk_rows=chunk)
        assert tree_fingerprint(streamed) == tree_fingerprint(inram)
        assert streamed_stats.sequential_pages == inram_stats.sequential_pages
        assert streamed_stats.random_accesses == inram_stats.random_accesses

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_tree_identical_on_mmap_backend(self, dataset, mmap_dataset, method_name):
        inram, inram_stats = build(method_name, dataset, build_chunk_rows=COUNT)
        streamed, streamed_stats = build(
            method_name, mmap_dataset, backend="mmap", build_chunk_rows=ODD_CHUNKS[1]
        )
        assert tree_fingerprint(streamed) == tree_fingerprint(inram)
        assert streamed_stats.sequential_pages == inram_stats.sequential_pages
        assert streamed_stats.random_accesses == inram_stats.random_accesses

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_answers_and_counters_identical(
        self, dataset, mmap_dataset, queries, method_name
    ):
        inram, _ = build(method_name, dataset, build_chunk_rows=COUNT)
        streamed, _ = build(method_name, dataset, build_chunk_rows=ODD_CHUNKS[0])
        mmap_streamed, _ = build(
            method_name, mmap_dataset, backend="mmap", build_chunk_rows=ODD_CHUNKS[0]
        )
        expected = query_facts(inram, queries)
        assert query_facts(streamed, queries) == expected
        assert query_facts(mmap_streamed, queries) == expected

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_knn_exact_identical(self, dataset, queries, method_name):
        inram, _ = build(method_name, dataset, build_chunk_rows=COUNT)
        streamed, _ = build(method_name, dataset, build_chunk_rows=ODD_CHUNKS[0])
        for query in queries:
            a = inram.knn_exact(KnnQuery(series=query, k=3))
            b = streamed.knn_exact(KnnQuery(series=query, k=3))
            assert a.positions() == b.positions()
            assert a.distances() == b.distances()

    def test_chunk_default_matches_explicit(self, dataset):
        default, _ = build("isax2+", dataset)  # store-default chunking
        explicit, _ = build("isax2+", dataset, build_chunk_rows=COUNT)
        assert tree_fingerprint(default) == tree_fingerprint(explicit)


class TestShardedStreamedBuilds:
    """build_chunk_rows flows through the sharded wrapper to every shard."""

    @pytest.mark.parametrize("method_name", ["isax2+", "dstree"])
    def test_sharded_memory_vs_mmap_byte_identical(
        self, dataset, mmap_dataset, queries, method_name
    ):
        # workers=1 runs the identical fan-out sequentially, which keeps the
        # counters deterministic (with concurrent workers the cross-shard
        # shared radius makes pruning work timing-dependent; answers are
        # byte-identical either way and covered by the test below).
        params = dict(TREE_METHOD_PARAMS[method_name])
        params.update(build_chunk_rows=ODD_CHUNKS[0], shards=2, workers=1)
        mem = create_method(f"sharded:{method_name}", SeriesStore(dataset), **params)
        mm = create_method(
            f"sharded:{method_name}",
            SeriesStore(mmap_dataset, backend="mmap"),
            **params,
        )
        mem.build()
        mm.build()
        try:
            assert query_facts(mem, queries) == query_facts(mm, queries)
            for shard_mem, shard_mm in zip(mem._shards, mm._shards):
                assert tree_fingerprint(shard_mem.method) == tree_fingerprint(
                    shard_mm.method
                )
        finally:
            mem.close()
            mm.close()

    def test_sharded_matches_unsharded_answers(self, dataset, queries):
        plain, _ = build("isax2+", dataset, build_chunk_rows=ODD_CHUNKS[0])
        sharded = create_method(
            "sharded:isax2+",
            SeriesStore(dataset),
            leaf_capacity=12,
            build_chunk_rows=ODD_CHUNKS[0],
            shards=2,
            workers=2,
        )
        sharded.build()
        try:
            for a, b in zip(
                plain.knn_exact_batch(queries, k=5),
                sharded.knn_exact_batch(queries, k=5),
            ):
                assert a.positions() == b.positions()
                assert a.distances() == b.distances()
        finally:
            sharded.close()


class TestAppendAfterStreamedBuild:
    """The per-series insert path must keep working after a streamed build."""

    @pytest.mark.parametrize("method_name", sorted(TREE_METHOD_PARAMS))
    def test_append_after_streamed_build(self, method_name):
        values = random_walk_dataset(150, 32, seed=11).values
        head = Dataset(values=values[:140].copy(), name="head")
        full = Dataset(values=values.copy(), name="full")

        grown, _ = build(method_name, head, build_chunk_rows=29)
        grown.store = SeriesStore(full)
        for position in range(140, 150):
            grown.append(position)

        reference, _ = build(method_name, full, build_chunk_rows=29)
        workload = synth_rand_workload(32, count=3, seed=13)
        for q in workload:
            a = grown.knn_exact(KnnQuery(series=q.series, k=5))
            b = reference.knn_exact(KnnQuery(series=q.series, k=5))
            # Appends route through the incremental machinery, which is
            # query-equivalent (not structurally identical): distances match.
            np.testing.assert_allclose(a.distances(), b.distances(), rtol=1e-9)
        # Every appended position must be findable.
        for position in range(140, 150):
            probe = np.asarray(values[position], dtype=np.float64)
            result = grown.knn_exact(KnnQuery(series=probe, k=1))
            assert result.distances()[0] == pytest.approx(0.0, abs=1e-6)

    def test_dstree_append_invalidates_bound_caches_after_streamed_build(self):
        """Queries warm the cached child-bound matrices; appends through the
        streamed-build state must still invalidate them along the insert path."""
        rng = np.random.default_rng(5)
        base = random_walk_dataset(120, 32, seed=17).values
        outliers = (rng.standard_normal((8, 32)) * 0.2 + 4.0).astype(np.float32)
        head = Dataset(values=base.copy(), name="head")
        full = Dataset(values=np.vstack([base, outliers]), name="full")

        method, _ = build("dstree", head, build_chunk_rows=23)
        probes = outliers.astype(np.float64)
        for probe in probes:  # warm every node's cached bound matrices
            method.knn_exact(KnnQuery(series=probe, k=2))
        method.store = SeriesStore(full)
        for position in range(120, 128):
            method.append(position)
        for i, probe in enumerate(probes):
            result = method.knn_exact(KnnQuery(series=probe, k=1))
            assert result.positions()[0] == 120 + i
            assert result.distances()[0] == pytest.approx(0.0, abs=1e-6)

    def test_append_after_streamed_build_on_mmap(self, tmp_path):
        values = random_walk_dataset(90, 24, seed=23).values
        head_path = tmp_path / "head.npy"
        Dataset(values=values[:80].copy()).to_file(head_path)
        full_path = tmp_path / "full.npy"
        Dataset(values=values.copy()).to_file(full_path)

        method, _ = build(
            "isax2+", Dataset.from_file(head_path), backend="mmap", build_chunk_rows=13
        )
        method.store = SeriesStore(Dataset.from_file(full_path), backend="mmap")
        for position in range(80, 90):
            method.append(position)
        probe = np.asarray(values[85], dtype=np.float64)
        result = method.knn_exact(KnnQuery(series=probe, k=1))
        assert result.positions()[0] == 85


class TestStreamedSummarizers:
    """The chunked drivers must match their whole-collection counterparts."""

    @staticmethod
    def blocks_of(values, chunk):
        arr = np.asarray(values, dtype=np.float64)
        for start in range(0, arr.shape[0], chunk):
            stop = min(start + chunk, arr.shape[0])
            yield slice(start, stop), arr[start:stop]

    def test_summarize_stream_matches_transform_batch(self, dataset):
        from repro.summarization.sax import IsaxSummarizer, summarize_stream

        summarizer = IsaxSummarizer(LENGTH, segments=8, cardinality=64)
        paa, symbols = summarize_stream(
            summarizer, self.blocks_of(dataset.values, 37), COUNT, symbols=True
        )
        np.testing.assert_array_equal(
            paa, summarizer.paa.transform_batch(dataset.values)
        )
        np.testing.assert_array_equal(
            np.asarray(symbols, dtype=np.int64),
            summarizer.transform_batch(dataset.values),
        )

    def test_group_root_words_matches_group_rows(self, dataset):
        from repro.summarization.sax import (
            IsaxSummarizer,
            group_root_words,
            group_rows,
            symbolize_batch,
        )

        paa = IsaxSummarizer(LENGTH, segments=8).paa.transform_batch(dataset.values)
        packed = [(key, idx.tolist()) for key, idx in group_root_words(paa)]
        plain = [
            (key, idx.tolist()) for key, idx in group_rows(symbolize_batch(paa, 2))
        ]
        assert packed == plain

    def test_synopsis_builders_match_from_series(self, dataset):
        from repro.summarization.eapca import (
            NodeSynopsis,
            batch_segment_statistics,
            synopsis_from_statistics,
            synopsis_from_stream,
        )

        boundaries = np.array([0, 16, 32, LENGTH], dtype=np.int64)
        block = np.asarray(dataset.values, dtype=np.float64)
        expected = NodeSynopsis.from_series(block, boundaries)
        streamed = synopsis_from_stream(self.blocks_of(block, 41), boundaries)
        means, stds = batch_segment_statistics(block, boundaries)
        assembled = synopsis_from_statistics(boundaries, means, stds)
        for built in (streamed, assembled):
            for got, exp in zip(built.segments, expected.segments):
                assert (got.mean_min, got.mean_max) == (exp.mean_min, exp.mean_max)
                assert (got.std_min, got.std_max) == (exp.std_min, exp.std_max)
                assert got.width == exp.width

    def test_words_stream_matches_transform_batch(self, dataset):
        from repro.summarization.sfa import SfaSummarizer, words_stream

        summarizer = SfaSummarizer(LENGTH, coefficients=6, alphabet_size=8)
        summarizer.fit(dataset.values[:100])
        words = words_stream(summarizer, self.blocks_of(dataset.values, 37), COUNT)
        np.testing.assert_array_equal(
            np.asarray(words, dtype=np.int64),
            summarizer.transform_batch(dataset.values),
        )

    def test_base_transform_stream_covers_any_summarizer(self, dataset):
        from repro.summarization.dft import DftSummarizer

        summarizer = DftSummarizer(LENGTH, coefficients=8)
        streamed = summarizer.transform_stream(self.blocks_of(dataset.values, 53), COUNT)
        np.testing.assert_array_equal(
            streamed, summarizer.transform_batch(dataset.values)
        )
