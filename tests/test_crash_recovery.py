"""Process-kill crash tests: SIGKILL a live ingest, audit what survives.

These tests spawn real ``python -m repro ingest`` children and SIGKILL them
from inside via seeded crash points (see ``repro.core.faults.CRASH_POINTS``),
then reopen the store and assert the durability contract: every acked row
survives, nothing fabricated appears, recovery lands on a record boundary
bit-identical to what the child sent, and the survivor keeps working.
"""

from __future__ import annotations

import pytest

from repro.core.crash_harness import (
    CrashOutcome,
    ingest_child_argv,
    run_crash_cell,
)
from repro.core.faults import CRASH_POINTS

_CELL = dict(seed=7, count=96, length=16, batch_rows=16, checkpoint_every=2)


@pytest.mark.parametrize("crash_point", CRASH_POINTS)
def test_acked_rows_survive_sigkill(crash_point, tmp_path):
    outcome = run_crash_cell(
        tmp_path / "store", crash_point=crash_point, crash_hit=3, **_CELL
    )
    assert outcome.killed, f"{crash_point}: crash point never fired"
    assert outcome.ok, outcome.failures
    assert outcome.recovered_rows >= outcome.acked_rows


@pytest.mark.parametrize(
    "crash_point", ["kill_after_wal_write", "kill_mid_checkpoint"]
)
def test_lying_fsync_still_recovers_consistent_prefix(crash_point, tmp_path):
    """A disk that drops unsynced writes can lose acked rows — but recovery
    must still produce a bit-exact record-boundary prefix and a usable store."""
    outcome = run_crash_cell(
        tmp_path / "store",
        crash_point=crash_point,
        crash_hit=3,
        lie_fsync=True,
        **_CELL,
    )
    assert outcome.killed
    assert outcome.ok, outcome.failures


def test_first_batch_kill_recovers_empty_or_one_record(tmp_path):
    outcome = run_crash_cell(
        tmp_path / "store",
        crash_point="kill_before_wal_fsync",
        crash_hit=1,
        seed=3,
        count=64,
        length=16,
        batch_rows=32,
    )
    assert outcome.killed and outcome.acked_rows == 0
    assert outcome.ok, outcome.failures
    assert outcome.recovered_rows in (0, 32)


def test_unknown_crash_point_rejected(tmp_path):
    with pytest.raises(ValueError, match="crash point"):
        run_crash_cell(tmp_path / "store", crash_point="kill_the_gpu")


def test_child_argv_is_a_repro_ingest_invocation(tmp_path):
    argv = ingest_child_argv(
        tmp_path / "s",
        count=10,
        length=8,
        seed=1,
        batch_rows=5,
        checkpoint_every=2,
        fault_spec="crash=kill_after_wal_write:1",
    )
    assert argv[1:4] == ["-m", "repro", "ingest"]
    assert "--fault-plan" in argv and "--checkpoint-every" in argv


def test_outcome_summary_round_trips():
    outcome = CrashOutcome(
        crash_point="kill_mid_checkpoint",
        seed=1,
        killed=True,
        acked_rows=10,
        recovered_rows=10,
        sent_rows=20,
        torn_bytes=0,
    )
    summary = outcome.summary()
    assert summary["ok"] and summary["acked"] == summary["recovered"] == 10


def test_uninterrupted_ingest_completes_cleanly(tmp_path):
    """crash_hit beyond the number of fault arrivals: the child runs to the
    end, checkpoints, and the harness verdict is still computed coherently."""
    outcome = run_crash_cell(
        tmp_path / "store",
        crash_point="kill_after_wal_write",
        crash_hit=1000,
        seed=5,
        count=48,
        length=16,
        batch_rows=16,
    )
    assert not outcome.killed
    assert outcome.ok, outcome.failures
    assert outcome.recovered_rows == outcome.sent_rows == 48
