"""Tests for the simulated storage layer and its accounting."""

import numpy as np
import pytest

from repro import Dataset, SeriesStore


@pytest.fixture()
def dataset():
    values = np.arange(64 * 32, dtype=np.float32).reshape(64, 32)
    return Dataset(values=values, name="storage-test")


class TestGeometry:
    def test_series_bytes_and_pages(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        assert store.series_bytes == 32 * 4
        assert store.series_per_page == 1024 // 128
        assert store.total_pages == 64 // 8

    def test_pages_for_series(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        assert store.pages_for_series(0) == 0
        assert store.pages_for_series(1) == 1
        assert store.pages_for_series(8) == 1
        assert store.pages_for_series(9) == 2

    def test_rejects_bad_page_size(self, dataset):
        with pytest.raises(ValueError):
            SeriesStore(dataset, page_bytes=0)


class TestAccounting:
    def test_scan_counts_full_file(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        data = store.scan()
        assert data.shape == (64, 32)
        assert store.counter.random_accesses == 1
        assert store.counter.sequential_pages == store.total_pages
        assert store.counter.series_read == 64

    def test_read_block_counts_one_seek(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        block = store.read_block([3, 5, 7])
        assert block.shape == (3, 32)
        assert store.counter.random_accesses == 1
        assert store.counter.sequential_pages == 1

    def test_read_block_empty(self, dataset):
        store = SeriesStore(dataset)
        block = store.read_block([])
        assert block.shape == (0, 32)
        assert store.counter.random_accesses == 0

    def test_read_contiguous(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        block = store.read_contiguous(10, 30)
        assert block.shape == (20, 32)
        assert store.counter.random_accesses == 1
        assert store.counter.sequential_pages == store.pages_for_series(20)
        assert store.read_contiguous(5, 5).shape == (0, 32)

    def test_read_one(self, dataset):
        store = SeriesStore(dataset)
        series = store.read_one(7)
        assert np.array_equal(series, dataset.values[7])
        assert store.counter.random_accesses == 1
        assert store.counter.series_read == 1

    def test_peek_does_not_count(self, dataset):
        store = SeriesStore(dataset)
        store.peek([1, 2, 3])
        assert store.counter.random_accesses == 0
        assert store.counter.sequential_pages == 0

    def test_snapshot_and_diff(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        store.scan()
        before = store.snapshot()
        store.read_block([1, 2])
        delta = store.since(before)
        assert delta.random_accesses == 1
        assert delta.series_read == 2

    def test_reset(self, dataset):
        store = SeriesStore(dataset)
        store.scan()
        store.reset_counters()
        assert store.counter.random_accesses == 0
        assert store.counter.bytes_read == 0


class TestReadOnlyViews:
    """Reads return views into the dataset; callers must never mutate them."""

    def test_scan_returns_read_only_array(self, dataset):
        store = SeriesStore(dataset)
        data = store.scan()
        with pytest.raises(ValueError):
            data[0, 0] = 99.0

    def test_read_contiguous_view_is_read_only(self, dataset):
        store = SeriesStore(dataset)
        block = store.read_contiguous(3, 8)
        assert block.base is not None  # a view, not a copy
        with pytest.raises(ValueError):
            block[0, 0] = 99.0

    def test_read_one_view_is_read_only(self, dataset):
        store = SeriesStore(dataset)
        series = store.read_one(5)
        with pytest.raises(ValueError):
            series[0] = 99.0

    def test_slice_peek_is_read_only(self, dataset):
        store = SeriesStore(dataset)
        block = store.peek(slice(0, 4))
        with pytest.raises(ValueError):
            block[0, 0] = 99.0

    def test_dataset_array_is_frozen_by_the_store(self, dataset):
        SeriesStore(dataset)
        assert not dataset.values.flags.writeable

    def test_scan_chunks_accounts_exactly_like_scan(self, dataset):
        whole = SeriesStore(dataset, page_bytes=1024)
        chunked = SeriesStore(dataset, page_bytes=1024)
        whole.scan()
        blocks = [block for _, block in chunked.scan_chunks(chunk_rows=7)]
        assert whole.counter == chunked.counter
        np.testing.assert_array_equal(np.vstack(blocks), dataset.values)

    def test_scan_chunks_yields_positioned_blocks(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        starts = [start for start, _ in store.scan_chunks(chunk_rows=10)]
        assert starts == list(range(0, 64, 10))

    def test_slice_store_is_zero_copy_with_private_counters(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        sub = store.slice(8, 24)
        assert sub.count == 16
        assert sub.page_bytes == store.page_bytes
        assert np.shares_memory(sub.dataset.values, dataset.values)
        sub.scan()
        assert store.counter.random_accesses == 0  # parent untouched
        np.testing.assert_array_equal(sub.dataset.values, dataset.values[8:24])

    def test_values_survive_unchanged_after_queries(self, dataset):
        from repro.core.queries import KnnQuery
        from repro import create_method

        original = dataset.values.copy()
        store = SeriesStore(dataset)
        method = create_method("isax2+", store, leaf_capacity=8)
        method.build()
        method.knn_exact(KnnQuery(series=np.asarray(dataset.values[0], dtype=np.float64), k=3))
        np.testing.assert_array_equal(dataset.values, original)
