"""Tests for the simulated storage layer and its accounting."""

import numpy as np
import pytest

from repro import Dataset, SeriesStore


@pytest.fixture()
def dataset():
    values = np.arange(64 * 32, dtype=np.float32).reshape(64, 32)
    return Dataset(values=values, name="storage-test")


class TestGeometry:
    def test_series_bytes_and_pages(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        assert store.series_bytes == 32 * 4
        assert store.series_per_page == 1024 // 128
        assert store.total_pages == 64 // 8

    def test_pages_for_series(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        assert store.pages_for_series(0) == 0
        assert store.pages_for_series(1) == 1
        assert store.pages_for_series(8) == 1
        assert store.pages_for_series(9) == 2

    def test_rejects_bad_page_size(self, dataset):
        with pytest.raises(ValueError):
            SeriesStore(dataset, page_bytes=0)


class TestAccounting:
    def test_scan_counts_full_file(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        data = store.scan()
        assert data.shape == (64, 32)
        assert store.counter.random_accesses == 1
        assert store.counter.sequential_pages == store.total_pages
        assert store.counter.series_read == 64

    def test_read_block_counts_one_seek(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        block = store.read_block([3, 5, 7])
        assert block.shape == (3, 32)
        assert store.counter.random_accesses == 1
        assert store.counter.sequential_pages == 1

    def test_read_block_empty(self, dataset):
        store = SeriesStore(dataset)
        block = store.read_block([])
        assert block.shape == (0, 32)
        assert store.counter.random_accesses == 0

    def test_read_contiguous(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        block = store.read_contiguous(10, 30)
        assert block.shape == (20, 32)
        assert store.counter.random_accesses == 1
        assert store.counter.sequential_pages == store.pages_for_series(20)
        assert store.read_contiguous(5, 5).shape == (0, 32)

    def test_read_one(self, dataset):
        store = SeriesStore(dataset)
        series = store.read_one(7)
        assert np.array_equal(series, dataset.values[7])
        assert store.counter.random_accesses == 1
        assert store.counter.series_read == 1

    def test_peek_does_not_count(self, dataset):
        store = SeriesStore(dataset)
        store.peek([1, 2, 3])
        assert store.counter.random_accesses == 0
        assert store.counter.sequential_pages == 0

    def test_snapshot_and_diff(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        store.scan()
        before = store.counter_snapshot()
        store.read_block([1, 2])
        delta = store.since(before)
        assert delta.random_accesses == 1
        assert delta.series_read == 2

    def test_reset(self, dataset):
        store = SeriesStore(dataset)
        store.scan()
        store.reset_counters()
        assert store.counter.random_accesses == 0
        assert store.counter.bytes_read == 0


class TestReadOnlyViews:
    """Reads return views into the dataset; callers must never mutate them."""

    def test_scan_returns_read_only_array(self, dataset):
        store = SeriesStore(dataset)
        data = store.scan()
        with pytest.raises(ValueError):
            data[0, 0] = 99.0

    def test_read_contiguous_view_is_read_only(self, dataset):
        store = SeriesStore(dataset)
        block = store.read_contiguous(3, 8)
        assert block.base is not None  # a view, not a copy
        with pytest.raises(ValueError):
            block[0, 0] = 99.0

    def test_read_one_view_is_read_only(self, dataset):
        store = SeriesStore(dataset)
        series = store.read_one(5)
        with pytest.raises(ValueError):
            series[0] = 99.0

    def test_slice_peek_is_read_only(self, dataset):
        store = SeriesStore(dataset)
        block = store.peek(slice(0, 4))
        with pytest.raises(ValueError):
            block[0, 0] = 99.0

    def test_dataset_array_is_frozen_by_the_store(self, dataset):
        SeriesStore(dataset)
        assert not dataset.values.flags.writeable

    def test_scan_chunks_accounts_exactly_like_scan(self, dataset):
        whole = SeriesStore(dataset, page_bytes=1024)
        chunked = SeriesStore(dataset, page_bytes=1024)
        whole.scan()
        blocks = [block for _, block in chunked.scan_chunks(chunk_rows=7)]
        assert whole.counter == chunked.counter
        np.testing.assert_array_equal(np.vstack(blocks), dataset.values)

    def test_scan_chunks_yields_positioned_blocks(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        starts = [start for start, _ in store.scan_chunks(chunk_rows=10)]
        assert starts == list(range(0, 64, 10))

    def test_slice_store_is_zero_copy_with_private_counters(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        sub = store.slice(8, 24)
        assert sub.count == 16
        assert sub.page_bytes == store.page_bytes
        assert np.shares_memory(sub.dataset.values, dataset.values)
        sub.scan()
        assert store.counter.random_accesses == 0  # parent untouched
        np.testing.assert_array_equal(sub.dataset.values, dataset.values[8:24])

    def test_values_survive_unchanged_after_queries(self, dataset):
        from repro.core.queries import KnnQuery
        from repro import create_method

        original = dataset.values.copy()
        store = SeriesStore(dataset)
        method = create_method("isax2+", store, leaf_capacity=8)
        method.build()
        method.knn_exact(KnnQuery(series=np.asarray(dataset.values[0], dtype=np.float64), k=3))
        np.testing.assert_array_equal(dataset.values, original)


class TestBuilderStreams:
    """scan_blocks / peek_chunks: the chunked reads behind streamed builds."""

    def test_scan_blocks_yields_float64_slices_with_scan_accounting(self, dataset):
        whole = SeriesStore(dataset, page_bytes=1024)
        chunked = SeriesStore(dataset, page_bytes=1024)
        whole.scan()
        pieces = list(chunked.scan_blocks(chunk_rows=7))
        assert whole.counter == chunked.counter
        for rows, block in pieces:
            assert isinstance(rows, slice)
            assert block.dtype == np.float64
        assembled = np.vstack([block for _, block in pieces])
        np.testing.assert_array_equal(assembled, dataset.values.astype(np.float64))
        covered = [r for rows, _ in pieces for r in range(rows.start, rows.stop)]
        assert covered == list(range(dataset.count))

    def test_peek_chunks_moves_no_counters(self, dataset):
        store = SeriesStore(dataset, page_bytes=1024)
        positions = np.array([1, 5, 6, 30, 31, 40], dtype=np.int64)
        blocks = list(store.peek_chunks(positions, chunk_rows=2))
        assert store.counter.random_accesses == 0
        assert store.counter.sequential_pages == 0
        assert store.counter.bytes_read == 0
        assembled = np.vstack([block for _, block in blocks])
        np.testing.assert_array_equal(
            assembled, dataset.values[positions].astype(np.float64)
        )

    def test_peek_chunks_slices_index_the_position_vector(self, dataset):
        store = SeriesStore(dataset)
        positions = np.array([3, 9, 27], dtype=np.int64)
        for rows, block in store.peek_chunks(positions, chunk_rows=2):
            np.testing.assert_array_equal(
                block, dataset.values[positions[rows]].astype(np.float64)
            )

    def test_peek_chunks_caps_chunks_by_row_span(self, dataset):
        # Scattered positions: the span cap must cut chunks so no single read
        # covers more than chunk_rows of store rows (bounded page residency).
        store = SeriesStore(dataset)
        positions = np.array([0, 1, 2, 60, 61], dtype=np.int64)
        chunks = list(store.peek_chunks(positions, chunk_rows=4))
        assert len(chunks) == 2  # the gap forces a cut despite count <= chunk_rows
        spans = [int(positions[r.stop - 1]) - int(positions[r.start]) for r, _ in chunks]
        assert all(span < 4 for span in spans)

    def test_peek_chunks_empty_positions(self, dataset):
        store = SeriesStore(dataset)
        assert list(store.peek_chunks(np.array([], dtype=np.int64))) == []

    def test_peek_chunks_duplicate_positions(self, dataset):
        """The same position may appear twice (degenerate split nodes): each
        occurrence must come back as its own row, once, in order — the span
        cap must neither drop nor double the duplicated rows."""
        store = SeriesStore(dataset)
        positions = np.array([5, 5, 6, 30, 30, 30], dtype=np.int64)
        chunks = list(store.peek_chunks(positions, chunk_rows=2))
        assembled = np.vstack([block for _, block in chunks])
        assert assembled.shape[0] == positions.size
        np.testing.assert_array_equal(
            assembled, dataset.values[positions].astype(np.float64)
        )
        # the yielded slices tile [0, len(positions)) exactly: no overlap, no gap
        covered = [i for rows, _ in chunks for i in range(rows.start, rows.stop)]
        assert covered == list(range(positions.size))
        assert store.counter.bytes_read == 0  # peek stays unaccounted

    def test_peek_chunks_positions_straddling_chunk_boundary(self, tmp_path, dataset):
        """Adjacent sorted positions that fall on either side of a chunk cut
        must each be read exactly once, and the release lookback must not make
        the straddled rows unreadable afterwards (mmap drops pages)."""
        path = tmp_path / "walks.npy"
        dataset.to_file(path)
        store = SeriesStore(Dataset.from_file(path), backend="mmap")
        # chunk_rows=3 puts the cut between 30 and 31 (adjacent rows)
        positions = np.array([28, 29, 30, 31, 32, 33], dtype=np.int64)
        chunks = list(store.peek_chunks(positions, chunk_rows=3))
        assert len(chunks) == 2
        assembled = np.vstack([block for _, block in chunks])
        np.testing.assert_array_equal(
            assembled, dataset.values[positions].astype(np.float64)
        )
        covered = [i for rows, _ in chunks for i in range(rows.start, rows.stop)]
        assert covered == list(range(positions.size))
        # the released rows are still servable on the next pass
        again = np.vstack([b for _, b in store.peek_chunks(positions, chunk_rows=3)])
        np.testing.assert_array_equal(again, assembled)

    def test_scan_blocks_matches_scan_chunks_on_mmap(self, tmp_path, dataset):
        path = tmp_path / "walks.npy"
        dataset.to_file(path)
        mm = SeriesStore(Dataset.from_file(path), backend="mmap")
        assembled = np.vstack([b for _, b in mm.scan_blocks(chunk_rows=9)])
        np.testing.assert_array_equal(assembled, dataset.values.astype(np.float64))
