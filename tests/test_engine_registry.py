"""Tests for the public engine, registry and access-path advisor."""

import numpy as np
import pytest

from repro import (
    METHOD_NAMES,
    SimilaritySearchEngine,
    available_methods,
    create_method,
    recommend_method,
    register_method,
)
from repro.core.registry import _FACTORIES
from repro.core.storage import SeriesStore
from repro.workloads import random_walk_dataset


class TestRegistry:
    def test_all_paper_methods_registered(self):
        names = available_methods()
        for name in METHOD_NAMES:
            assert name in names

    def test_unknown_method_raises(self, small_dataset):
        with pytest.raises(KeyError):
            create_method("nonexistent", SeriesStore(small_dataset))

    def test_create_method_forwards_params(self, small_dataset):
        method = create_method("isax2+", SeriesStore(small_dataset), leaf_capacity=33)
        assert method.leaf_capacity == 33

    def test_register_custom_method(self, small_dataset):
        class Dummy:
            name = "dummy"

            def __init__(self, store):
                self.store = store

        register_method("dummy-method", Dummy)
        try:
            method = create_method("dummy-method", SeriesStore(small_dataset))
            assert method.name == "dummy"
        finally:
            _FACTORIES.pop("dummy-method", None)


class TestRecommendation:
    def test_in_memory_short_series(self):
        advice = recommend_method(dataset_gb=25, series_length=256)
        assert advice.method == "isax2+"

    def test_disk_resident_long_series(self):
        advice = recommend_method(dataset_gb=500, series_length=16384)
        assert advice.method == "va+file"

    def test_disk_resident_short_series(self):
        advice = recommend_method(dataset_gb=500, series_length=256)
        assert advice.method == "dstree"

    def test_low_pruning_falls_back_to_scan(self):
        advice = recommend_method(dataset_gb=100, series_length=96, expected_pruning=0.05)
        assert advice.method == "ucr-suite"

    def test_tiny_workload_prefers_ads(self):
        advice = recommend_method(dataset_gb=100, series_length=256, workload_queries=10)
        assert advice.method == "ads+"

    def test_reason_is_informative(self):
        advice = recommend_method(dataset_gb=25, series_length=256)
        assert len(advice.reason) > 10


class TestEngine:
    @pytest.fixture()
    def engine(self):
        dataset = random_walk_dataset(300, 48, seed=3)
        return SimilaritySearchEngine(dataset)

    def test_search_requires_build(self, engine):
        with pytest.raises(RuntimeError):
            engine.search(np.zeros(48))

    def test_build_and_search(self, engine):
        engine.build("dstree", leaf_capacity=30)
        query = engine.dataset[5]
        result = engine.search(query, k=3)
        assert result.positions()[0] == 5
        assert result.distances()[0] == pytest.approx(0.0, abs=1e-4)

    def test_search_matches_brute_force(self, engine):
        engine.build("isax2+", leaf_capacity=30)
        rng = np.random.default_rng(9)
        query = rng.standard_normal(48)
        truth = engine.brute_force(query, k=4)
        result = engine.search(query, k=4)
        assert result.positions() == [n.position for n in truth]

    def test_auto_build_uses_recommendation(self, engine):
        engine.build()  # advisor picks something sensible for a tiny dataset
        assert engine.method_name in METHOD_NAMES

    def test_approximate_search(self, engine):
        engine.build("isax2+", leaf_capacity=30)
        result = engine.search(engine.dataset[0], k=1, exact=False)
        assert result.neighbors

    def test_normalize_flag(self, engine):
        engine.build("ucr-suite")
        raw_query = engine.dataset[3].astype(np.float64) * 10 + 5
        result = engine.search(raw_query, k=1, normalize=True)
        assert result.positions()[0] == 3

    def test_last_build_stats(self, engine):
        engine.build("dstree", leaf_capacity=30)
        stats = engine.last_build_stats()
        assert stats.method == "dstree"
        assert stats.total_nodes > 0

    def test_describe(self, engine):
        engine.build("va+file")
        info = engine.describe()
        assert info["series"] == 300
        assert info["method"]["name"] == "va+file"

    def test_last_build_stats_requires_build(self, engine):
        with pytest.raises(RuntimeError):
            engine.last_build_stats()
