"""Rule engine for the ``repro lint`` invariant checker.

The engine is deliberately small: a rule registry, a per-file
:class:`ModuleContext` (parsed AST, source lines, a parent map for
enclosing-scope questions, and the path of the module *inside* the
``repro`` package so rules can scope themselves to subsystems), inline
suppression handling, and text/JSON reporting.  The actual invariants
live in :mod:`repro.analysis.rules`, one module per rule family.

Suppressions
------------
A finding is waived by a ``# repro-lint: disable=<rule>[,<rule>...]``
comment either trailing the flagged line or on a comment line directly
above it (``disable=all`` waives every rule for that line).  Suppressions
are counted and reported — a waiver is a reviewed decision, not a silent
hole — and the project convention (see CONTRIBUTING.md) is that every
suppression carries a one-line justification in the same comment.
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "LintReport",
    "Linter",
    "ModuleContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "register_rule",
]

SEVERITIES = ("error", "warning")

#: matches the inline waiver comment anywhere in a line.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.severity}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


class ModuleContext:
    """Everything a rule needs to inspect one parsed module."""

    def __init__(self, path: str | Path, source: str) -> None:
        self.path = Path(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.rel = _package_relative(self.path)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- path scoping ---------------------------------------------------------
    def in_package(self, *prefix: str) -> bool:
        """Whether the module lives under ``repro/<prefix...>/``."""
        return self.rel[: len(prefix)] == prefix

    def module_is(self, *rel: str) -> bool:
        """Whether the module *is* ``repro/<rel...>`` exactly."""
        return self.rel == rel

    # -- tree navigation ------------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def enclosing(self, node: ast.AST, kinds: tuple[type, ...]) -> ast.AST | None:
        """The nearest ancestor of ``node`` matching one of ``kinds``."""
        current = self._parents.get(node)
        while current is not None and not isinstance(current, kinds):
            current = self._parents.get(current)
        return current

    def enclosing_function(self, node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        found = self.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        return found  # type: ignore[return-value]

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        found = self.enclosing(node, (ast.ClassDef,))
        return found  # type: ignore[return-value]


def _package_relative(path: Path) -> tuple[str, ...]:
    """The module path inside the ``repro`` package, as parts.

    ``.../src/repro/indexes/isax/index.py`` becomes
    ``("indexes", "isax", "index.py")``.  Files outside any ``repro``
    directory fall back to their bare filename, which keeps path-scoped
    rules (they all scope *inside* the package) from misfiring on
    arbitrary scripts while still letting fixtures opt in by living under
    a ``repro/`` directory.
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1 :])
    return (path.name,)


class Rule(abc.ABC):
    """One invariant check.  Subclasses register via :func:`register_rule`."""

    #: unique rule id used in reports and ``disable=`` comments.
    name: str = ""
    severity: str = "error"
    #: one-line summary shown by ``repro lint --list-rules``.
    description: str = ""
    #: the design contract being enforced, with a pointer to where it came from.
    invariant: str = ""

    def applies_to(self, module: ModuleContext) -> bool:
        return True

    @abc.abstractmethod
    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for ``module`` (already filtered by ``applies_to``)."""

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=self.severity,
        )


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a rule instance under its ``name``."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"{cls.__name__} must set a rule name")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"{cls.__name__}: unknown severity {rule.severity!r}")
    if rule.name in _RULES:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _RULES[rule.name] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    """Every registered rule, loading the built-in rule modules on first use."""
    from . import rules as _rules  # noqa: F401  (import populates the registry)

    return dict(_RULES)


def _suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Map of 1-based line number -> rule names waived on that line.

    A trailing directive waives its own line; a directive inside a comment
    block waives the next *code* line (blank and comment lines in between
    are skipped), so a justification can span several comment lines.
    """
    waived: dict[int, set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        names = {part.strip() for part in match.group(1).split(",") if part.strip()}
        waived.setdefault(number, set()).update(names)
        if text.lstrip().startswith("#"):
            for following in range(number + 1, len(lines) + 1):
                stripped = lines[following - 1].strip()
                if not stripped or stripped.startswith("#"):
                    continue
                waived.setdefault(following, set()).update(names)
                break
    return waived


@dataclasses.dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    findings: list[Finding] = dataclasses.field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    rules: list[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.rule] = tally.get(finding.rule, 0) + 1
        return dict(sorted(tally.items()))

    def to_json(self) -> dict:
        return {
            "version": 1,
            "tool": "repro-lint",
            "files_scanned": self.files_scanned,
            "rules": self.rules,
            "suppressed": self.suppressed,
            "counts": self.counts(),
            "findings": [finding.to_json() for finding in self.findings],
        }

    def render_text(self) -> str:
        out = [finding.render() for finding in self.findings]
        summary = (
            f"repro lint: {len(self.findings)} finding(s) in "
            f"{self.files_scanned} file(s)"
        )
        if self.suppressed:
            summary += f", {self.suppressed} suppressed"
        if self.clean:
            summary = (
                f"repro lint: clean ({self.files_scanned} file(s), "
                f"{len(self.rules)} rule(s)"
                + (f", {self.suppressed} suppressed)" if self.suppressed else ")")
            )
        out.append(summary)
        return "\n".join(out)


class Linter:
    """Runs a rule set over files and directories."""

    def __init__(self, rules: Iterable[Rule] | None = None) -> None:
        if rules is None:
            rules = all_rules().values()
        self.rules = list(rules)

    def lint_source(self, source: str, path: str | Path) -> tuple[list[Finding], int]:
        """Lint one module's source; returns (findings, suppressed count)."""
        try:
            module = ModuleContext(path, source)
        except SyntaxError as exc:
            return (
                [
                    Finding(
                        rule="syntax-error",
                        path=str(path),
                        line=exc.lineno or 1,
                        col=(exc.offset or 0) + 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                ],
                0,
            )
        raw: list[Finding] = []
        for rule in self.rules:
            if rule.applies_to(module):
                raw.extend(rule.check(module))
        waived = _suppressions(module.lines)
        findings: list[Finding] = []
        suppressed = 0
        for finding in raw:
            names = waived.get(finding.line, set())
            if finding.rule in names or "all" in names:
                suppressed += 1
            else:
                findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings, suppressed

    def lint_file(self, path: str | Path) -> tuple[list[Finding], int]:
        text = Path(path).read_text(encoding="utf-8")
        return self.lint_source(text, path)

    def run(self, paths: Iterable[str | Path]) -> LintReport:
        report = LintReport(rules=sorted(rule.name for rule in self.rules))
        for path in _expand(paths):
            findings, suppressed = self.lint_file(path)
            report.findings.extend(findings)
            report.suppressed += suppressed
            report.files_scanned += 1
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report


def _expand(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(paths: Iterable[str | Path], rules: Iterable[Rule] | None = None) -> LintReport:
    """Lint ``paths`` (files or directories) with ``rules`` (default: all)."""
    return Linter(rules).run(paths)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=False)
