"""no-bare-except: failures are classified and surfaced, never swallowed.

PR 7 built the whole resilience story on *typed* failure classification:
``RetryPolicy.is_transient`` decides what is worth retrying,
``CorruptionError`` must always propagate (a wrong answer is never
acceptable), and the sharded engine re-executes or degrades only on known
shard failures.  A bare ``except:`` (which also eats ``KeyboardInterrupt``
and ``SystemExit``) or an ``except Exception:`` that swallows without
re-raising punches a hole in that classification — a corruption or a
deadline signal silently becomes "fine".

Broad handlers that clean up and re-raise (e.g. abandoning a half-written
segment file before propagating) are the sanctioned pattern and pass this
rule; broad handlers with no ``raise`` in their body are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..linter import Finding, ModuleContext, Rule, register_rule

_BROAD = {"Exception", "BaseException"}


def _names(node: ast.expr | None) -> set[str]:
    if node is None:
        return set()
    if isinstance(node, ast.Name):
        return {node.id}
    if isinstance(node, ast.Tuple):
        collected: set[str] = set()
        for element in node.elts:
            collected |= _names(element)
        return collected
    return set()


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register_rule
class NoBareExceptRule(Rule):
    name = "no-bare-except"
    severity = "error"
    description = (
        "no bare except:, and no except Exception/BaseException that "
        "swallows without re-raising"
    )
    invariant = (
        "Typed failure classification (PR 7): transient faults retry, "
        "CorruptionError always propagates, everything else is a real error "
        "— a swallowed broad except silently reclassifies all three as OK."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare 'except:' catches KeyboardInterrupt/SystemExit too; "
                    "name the exception types this site can actually handle",
                )
                continue
            broad = _names(node.type) & _BROAD
            if broad and not _reraises(node):
                caught = sorted(broad)[0]
                yield self.finding(
                    module,
                    node,
                    f"'except {caught}:' without a re-raise swallows "
                    "CorruptionError and every other typed failure; narrow "
                    "the type or clean up and re-raise",
                )
