"""no-wall-clock: core kernels must not read the wall clock.

The evaluation layer *simulates* I/O time from counters and a calibrated
hardware model precisely so results are machine-independent and replayable;
the only sanctioned wall-clock reads are duration measurements via the
monotonic ``time.perf_counter()`` (CPU-seconds shape signals, opt-in
``measure_io`` timing) and the calibration probes in
``evaluation/hardware.py``.  ``time.time()`` / ``datetime.now()`` inside
``core/`` leak nondeterministic wall-clock values into kernels — worse,
the civil clock can jump (NTP, DST), so durations derived from it are
simply wrong.

Legitimate wall-clock uses in ``core/`` (comparing file *mtimes* during
orphan sweeps, say) are expected to carry a justified inline suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..linter import Finding, ModuleContext, Rule, register_rule


def _dotted(node: ast.expr) -> str | None:
    """Render a Name/Attribute chain like ``datetime.datetime.now``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


@register_rule
class NoWallClockRule(Rule):
    name = "no-wall-clock"
    severity = "error"
    description = (
        "time.time()/datetime.now() are forbidden in core/ kernels; use "
        "time.perf_counter() for durations (measure_io) or simulate from "
        "counters"
    )
    invariant = (
        "Machine-independent, replayable evaluation (PR 4): I/O time is "
        "simulated from counters + a calibrated HardwareModel; measured "
        "timing uses the monotonic perf_counter, never the civil clock."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_package("core")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            flagged = dotted == "time.time" or (
                dotted.endswith((".now", ".utcnow")) and "datetime" in dotted.split(".")
            )
            if not flagged:
                continue
            function = module.enclosing_function(node)
            if function is not None and "measure" in function.name:
                continue  # measure_io-style calibration helpers are sanctioned
            yield self.finding(
                module,
                node,
                f"{dotted}() reads the civil wall clock inside core/; use "
                "time.perf_counter() for durations or derive time from the "
                "simulated cost model",
            )
