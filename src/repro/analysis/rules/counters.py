"""counter-conservation: every accounted read primitive moves the counters.

The paper's evaluation is counter-driven (random accesses, sequential
pages, bytes), and PRs 3–9 hardened a conservation law around it: the
counters for a piece of work are identical whatever backend, chunk size,
worker count, or executor performed it.  That only holds because every
read primitive on ``SeriesStore`` charges the counters exactly once —
directly, via ``_account_scan``, or by delegating to another accounted
primitive.  ``peek``/``peek_chunks`` are exempt *by design*: they re-read
rows a build pass already paid for with its explicit scan.

A read primitive that forgets its accounting silently breaks every
cross-backend and thread-vs-process equality suite downstream, so this
rule checks the method bodies statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..linter import Finding, ModuleContext, Rule, register_rule

#: SeriesStore methods that must account (peek/peek_chunks exempt by design).
READ_PRIMITIVES = {
    "scan",
    "scan_chunks",
    "scan_blocks",
    "scan_quantized_chunks",
    "read_block",
    "read_contiguous",
    "read_one",
}


def _is_self_attribute(node: ast.expr, attribute: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == attribute
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _accounts(method: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(method):
        # self._account_*(...)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                if func.attr.startswith("_account"):
                    return True
                # delegation to another accounted primitive
                if func.attr in READ_PRIMITIVES and func.attr != method.name:
                    return True
        # self.counter.<field> += ... (or an explicit assignment)
        if isinstance(node, (ast.AugAssign, ast.Assign)):
            targets = [node.target] if isinstance(node, ast.AugAssign) else node.targets
            for target in targets:
                if isinstance(target, ast.Attribute) and _is_self_attribute(
                    target.value, "counter"
                ):
                    return True
    return False


@register_rule
class CounterConservationRule(Rule):
    name = "counter-conservation"
    severity = "error"
    description = (
        "SeriesStore read primitives must charge the access counters "
        "(peek/peek_chunks exempt by design)"
    )
    invariant = (
        "Counter conservation (PRs 3-9): identical counters for identical "
        "work on any backend/chunk size/worker count/executor — every read "
        "primitive accounts exactly once, directly or by delegation."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.module_is("core", "storage.py")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.ClassDef) and node.name == "SeriesStore"):
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name not in READ_PRIMITIVES:
                    continue
                if not _accounts(item):
                    yield self.finding(
                        module,
                        item,
                        f"read primitive {item.name}() moves no access "
                        "counters: charge self.counter (or delegate to an "
                        "accounted primitive) so counter conservation holds "
                        "across backends and executors",
                    )
