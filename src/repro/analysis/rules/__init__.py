"""Built-in rule families; importing this package registers every rule."""

from . import (  # noqa: F401  (imports register the rules)
    atomic,
    counters,
    defaults,
    excepts,
    pickle_boundary,
    pruning,
    rng,
    wallclock,
)

__all__ = [
    "atomic",
    "counters",
    "defaults",
    "excepts",
    "pickle_boundary",
    "pruning",
    "rng",
    "wallclock",
]
