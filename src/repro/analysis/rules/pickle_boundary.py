"""pickle-boundary: no raw series data ever crosses the process boundary.

PR 9's process executor ships *plans*, not data: a shard task carries a
method name, params, and a store handle that pickles by (backend path, row
range) — the worker reopens the bytes on its side.  Two classes of mistake
reintroduce raw-array shipping:

* a store/backend class without an explicit ``__getstate__``/``__reduce__``
  falls back to default ``__dict__`` pickling, which drags mapped pages,
  live counters, or cached arrays across the boundary (and double-counts
  the counters on merge);
* a task-plan dataclass growing an ``ndarray``-typed field ships the
  collection itself inside every task.

The allowlists below name the classes that cross the boundary today; a
new boundary class must be added here *with* its ``__getstate__``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..linter import Finding, ModuleContext, Rule, register_rule

#: classes pickled across the process boundary: must control their state.
STATE_CLASSES = {
    "SeriesStore",
    "MmapBackend",
    "CompressedBackend",
    "GrowableBackend",
    "FaultInjectingBackend",
    "BufferPool",
}

#: task-plan classes: picklable by design, but must never carry arrays.
PLAN_CLASSES = {"_ShardTask"}

_STATE_METHODS = {"__getstate__", "__reduce__", "__reduce_ex__", "__getnewargs__"}


def _annotation_mentions_ndarray(annotation: ast.expr) -> bool:
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "ndarray":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "ndarray":
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if "ndarray" in node.value:
                return True
    return False


@register_rule
class PickleBoundaryRule(Rule):
    name = "pickle-boundary"
    severity = "error"
    description = (
        "process-boundary classes must define __getstate__/__reduce__, and "
        "task plans must not carry ndarray-typed fields"
    )
    invariant = (
        "Plans, never data, across the process boundary (PR 9): stores "
        "pickle by (backend path, row range) with a fresh counter; shipping "
        "arrays or live counters breaks both memory bounds and counter "
        "conservation."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in STATE_CLASSES:
                defined = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                if not (defined & _STATE_METHODS):
                    yield self.finding(
                        module,
                        node,
                        f"{node.name} crosses the process boundary but defines "
                        "no __getstate__/__reduce__: default __dict__ pickling "
                        "ships raw arrays and live counters",
                    )
            if node.name in PLAN_CLASSES:
                for item in node.body:
                    if isinstance(item, ast.AnnAssign) and _annotation_mentions_ndarray(
                        item.annotation
                    ):
                        yield self.finding(
                            module,
                            item,
                            f"{node.name} is a process task plan; an "
                            "ndarray-typed field ships raw data with every "
                            "task — ship a by-path store handle instead",
                        )
