"""mutable-default-args: default values must not be shared mutable state.

A ``def f(items=[])`` default is evaluated once and shared by every call —
state leaks between calls, and in this codebase between *queries* and
between *shards*, which is exactly the kind of cross-call coupling the
byte-identity suites exist to rule out.  Dataclasses raise on mutable
defaults at class-creation time; plain functions fail silently, so the
linter covers them.  Use ``None`` + an inside-the-body default instead
(the convention everywhere in the package, e.g. ``inner_params=None``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..linter import Finding, ModuleContext, Rule, register_rule

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "OrderedDict", "defaultdict", "deque"}


def _is_mutable(default: ast.expr) -> bool:
    if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(default, ast.Call):
        func = default.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        return name in _MUTABLE_CALLS
    return False


@register_rule
class MutableDefaultArgsRule(Rule):
    name = "mutable-default-args"
    severity = "error"
    description = "no list/dict/set (literal or constructor) default argument values"
    invariant = (
        "No shared state between calls: a mutable default is evaluated once "
        "and couples every caller — use None and default inside the body."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            arguments = node.args
            defaults = list(arguments.defaults) + [
                default for default in arguments.kw_defaults if default is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module,
                        default,
                        f"{label}() has a mutable default argument, shared "
                        "across every call; default to None and build the "
                        "value inside the body",
                    )
