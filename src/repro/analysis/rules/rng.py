"""no-unseeded-rng: randomness flows through passed Generators, never globals.

Everything in this codebase that consumes randomness — dataset synthesis,
fault plans, query workloads — is seeded, which is what makes builds
bitwise-reproducible at any chunk size, chaos runs replayable from a seed,
and cross-backend equivalence suites meaningful.  Module-level calls like
``np.random.random()`` or ``random.randint()`` mutate interpreter-global
RNG state: they are unseeded in production, and worse, they *de-seed*
everything else sharing the global stream.  Constructing a generator
(``np.random.default_rng(seed)``) is the sanctioned entry point; consuming
code must take a ``Generator`` argument.

``workloads/`` is the designated seeding boundary, so this rule applies
everywhere else in the package.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..linter import Finding, ModuleContext, Rule, register_rule

#: np.random attributes that are fine: generator/seed construction, types.
_NUMPY_ALLOWED = {"default_rng", "Generator", "BitGenerator", "SeedSequence", "PCG64"}

#: stdlib random module functions that draw from (or reseed) the global state.
_STDLIB_GLOBAL = {
    "betavariate",
    "choice",
    "choices",
    "expovariate",
    "gauss",
    "getrandbits",
    "normalvariate",
    "paretovariate",
    "randbytes",
    "randint",
    "random",
    "randrange",
    "sample",
    "seed",
    "shuffle",
    "triangular",
    "uniform",
    "vonmisesvariate",
}


@register_rule
class NoUnseededRngRule(Rule):
    name = "no-unseeded-rng"
    severity = "error"
    description = (
        "module-level np.random.* / random.* calls are forbidden outside "
        "workloads/; take a seeded np.random.Generator instead"
    )
    invariant = (
        "Bitwise-reproducible builds and replayable chaos runs: all "
        "randomness is seeded at the workload boundary and passed down as a "
        "Generator (seed conventions from PR 1; fault-plan seeding from PR 7)."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.in_package("workloads")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
            ):
                if func.attr not in _NUMPY_ALLOWED:
                    yield self.finding(
                        module,
                        node,
                        f"np.random.{func.attr}() draws from interpreter-global "
                        "RNG state; accept a seeded np.random.Generator "
                        "(np.random.default_rng(seed)) instead",
                    )
            # random.<fn>(...) on the stdlib module.
            elif (
                isinstance(value, ast.Name)
                and value.id == "random"
                and func.attr in _STDLIB_GLOBAL
            ):
                yield self.finding(
                    module,
                    node,
                    f"random.{func.attr}() uses the global stdlib RNG; use a "
                    "seeded np.random.Generator (or random.Random(seed)) "
                    "passed in by the caller",
                )
