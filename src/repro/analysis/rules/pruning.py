"""strict-pruning: best-so-far comparisons must never discard distance ties.

PR 3 made sharded answers byte-identical to the unsharded method by keying
answer sets on ``(distance, position)`` and relaxing *every* best-so-far
pruning comparison to the strict form: a candidate is pruned only when its
lower bound is strictly greater than the pruning threshold (``bound >
threshold``), and survives when ``bound <= threshold``.  The non-strict
forms (``bound >= threshold`` to prune, ``bound < threshold`` to survive)
drop distance-tied candidates, which breaks tie-breaking — the smallest
tied *position* must win regardless of shard layout or visit order.

This rule flags comparisons in ``indexes/`` and ``sequential/`` where a
bound is tested against a pruning-threshold variable (``threshold``,
``radius``, ``bsf``, ``best_distance``, ``best_so_far``) with the
tie-dropping orientation.  Comparisons against constants (input
validation like ``radius < 0``) are exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..linter import Finding, ModuleContext, Rule, register_rule

#: variable / attribute names that denote a pruning threshold.
_GUARD_RE = re.compile(r"(?:^|_)(?:bsf|radius|threshold)(?:_|$)|best_so_far|best_distance")


def _guard_name(node: ast.expr) -> str | None:
    """The threshold-ish name a bare variable or attribute refers to."""
    if isinstance(node, ast.Name) and _GUARD_RE.search(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and _GUARD_RE.search(node.attr):
        return node.attr
    return None


@register_rule
class StrictPruningRule(Rule):
    name = "strict-pruning"
    severity = "error"
    description = (
        "best-so-far pruning must use strict > (prune) / <= (survive); "
        ">= or < against a threshold discards distance ties"
    )
    invariant = (
        "Byte-identical answers at any shard/worker count (PR 3): distance-tied "
        "candidates are never pruned, so (distance, position) tie-breaking "
        "always sees them."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return module.in_package("indexes") or module.in_package("sequential")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                yield from self._check_pair(module, node, left, op, right)
                left = right

    def _check_pair(
        self,
        module: ModuleContext,
        node: ast.Compare,
        left: ast.expr,
        op: ast.cmpop,
        right: ast.expr,
    ) -> Iterator[Finding]:
        left_guard = _guard_name(left)
        right_guard = _guard_name(right)
        # Two thresholds compared with each other, or a comparison against a
        # literal (validation like `radius < 0`), is not a pruning decision.
        if left_guard and right_guard:
            return
        if isinstance(left, ast.Constant) or isinstance(right, ast.Constant):
            return
        if right_guard:
            if isinstance(op, ast.GtE):
                yield self.finding(
                    module,
                    node,
                    f"non-strict prune 'bound >= {right_guard}' discards "
                    f"distance ties; use strict 'bound > {right_guard}'",
                )
            elif isinstance(op, ast.Lt):
                yield self.finding(
                    module,
                    node,
                    f"non-strict survivor test 'bound < {right_guard}' drops "
                    f"tied candidates; use 'bound <= {right_guard}'",
                )
        elif left_guard:
            if isinstance(op, ast.LtE):
                yield self.finding(
                    module,
                    node,
                    f"non-strict prune '{left_guard} <= bound' discards "
                    f"distance ties; use strict '{left_guard} < bound' "
                    "(i.e. bound > threshold)",
                )
            elif isinstance(op, ast.Gt):
                yield self.finding(
                    module,
                    node,
                    f"non-strict survivor test '{left_guard} > bound' drops "
                    f"tied candidates; use '{left_guard} >= bound' "
                    "(i.e. bound <= threshold)",
                )
