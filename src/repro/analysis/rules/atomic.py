"""atomic-writes: data files are finalized with tmp + os.replace, never in place.

PR 7 made every data-file writer atomic: stream into a uniquified
``*.tmp``, fsync, then ``os.replace`` into the final name — so a crash at
any point leaves either the old complete file or no file, never a
half-written one (and the orphan sweep of PR 8 collects the debris).  A
plain ``open(path, "w"/"wb")`` on a data path reintroduces the torn-file
window.

This rule flags write-mode ``open()`` calls in the storage-owning core
modules unless they occur inside one of the sanctioned atomic-writer
implementations (which are exactly the places that own the tmp+replace
dance).  The write-ahead log is the one principled exception — an
append-only log is made crash-consistent by CRC framing + fsync + replay,
not by rename — and carries inline suppressions with that justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..linter import Finding, ModuleContext, Rule, register_rule

#: core modules whose file writes must be atomic.
_SCOPED_MODULES = (
    ("core", "backends.py"),
    ("core", "growable.py"),
    ("core", "wal.py"),
    ("core", "persistence.py"),
    ("core", "storage.py"),
)

#: functions that *implement* the tmp + os.replace protocol.
_WRITER_FUNCTIONS = {"_atomic_write_json", "_atomic_write_bytes", "write_sidecar"}

#: classes that *implement* the tmp + os.replace protocol.
_WRITER_CLASSES = {"SeriesFileWriter", "CompressedFileWriter"}


def _write_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open()`` call, if it is a literal write mode."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return None  # default "r"
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return None  # dynamic mode: not decidable statically
    value = mode.value
    if any(flag in value for flag in ("w", "a", "+", "x")):
        return value
    return None


@register_rule
class AtomicWritesRule(Rule):
    name = "atomic-writes"
    severity = "error"
    description = (
        "write-mode open() in core storage modules must go through the "
        "atomic writer helpers (tmp + os.replace)"
    )
    invariant = (
        "Crash consistency (PR 7/8): a data file is either its old complete "
        "self or absent, never torn — writers stream to *.tmp, fsync, and "
        "os.replace into place; recovery sweeps orphaned tmp files."
    )

    def applies_to(self, module: ModuleContext) -> bool:
        return any(module.module_is(*scoped) for scoped in _SCOPED_MODULES)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
                continue
            mode = _write_mode(node)
            if mode is None:
                continue
            function = module.enclosing_function(node)
            if function is not None and function.name in _WRITER_FUNCTIONS:
                continue
            enclosing_class = module.enclosing_class(node)
            if enclosing_class is not None and enclosing_class.name in _WRITER_CLASSES:
                continue
            yield self.finding(
                module,
                node,
                f"open(..., {mode!r}) writes a data file in place; stream to "
                "a *.tmp and os.replace() it via the atomic writer helpers "
                "so a crash can never leave a torn file",
            )
