"""Project-specific static analysis: the ``repro lint`` invariant checker.

The paper's central claim is *exactness* — byte-identical answers regardless
of backend, worker count, or executor.  The conventions that make that true
(strict-inequality pruning, deterministic tie-breaking, no raw arrays across
the process boundary, atomic file finalization, counter conservation) are
cross-cutting and easy to violate in review.  This package encodes them as
AST-based lint rules so a diff that breaks a contract fails CI instead of
waiting for a runtime test to trip it.

Use :func:`lint_paths` programmatically, or the ``repro lint`` CLI
subcommand (text and ``--json`` output; nonzero exit on findings).
Individual findings can be waived inline with a justified
``# repro-lint: disable=<rule>`` comment on (or immediately above) the
flagged line.
"""

from .linter import (
    Finding,
    LintReport,
    Linter,
    Rule,
    all_rules,
    lint_paths,
    register_rule,
)

__all__ = [
    "Finding",
    "LintReport",
    "Linter",
    "Rule",
    "all_rules",
    "lint_paths",
    "register_rule",
]
