"""Plain-text rendering of the tables and figure series produced by the benches.

The benchmark harness regenerates the paper's tables and figures as text: each
figure becomes a table of the series that would be plotted.  Keeping the
renderer here (rather than in each benchmark) keeps output formats consistent.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["render_table", "render_series", "format_seconds", "format_bytes"]


def format_seconds(value: float) -> str:
    """Human-friendly duration."""
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    if value < 120.0:
        return f"{value:.2f}s"
    if value < 7200.0:
        return f"{value / 60.0:.1f}min"
    return f"{value / 3600.0:.2f}h"


def format_bytes(value: int | float) -> str:
    """Human-friendly byte count (binary units, matching the benches)."""
    value = float(value)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0:
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.2f}TiB"


def render_table(rows: Iterable[dict], title: str = "", floatfmt: str = "{:.4g}") -> str:
    """Render a list of dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)"
    columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                rendered.append(floatfmt.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [
        max(len(str(col)), max(len(r[i]) for r in rendered_rows))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append(" | ".join(rendered[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def render_series(series: dict, title: str = "", x_label: str = "x") -> str:
    """Render ``{series_name: [(x, y), ...]}`` as a text table, one row per x."""
    xs = sorted({x for points in series.values() for x, _ in points})
    rows = []
    for x in xs:
        row = {x_label: x}
        for name, points in series.items():
            lookup = dict(points)
            value = lookup.get(x)
            row[name] = value if value is not None else ""
        rows.append(row)
    return render_table(rows, title=title)
