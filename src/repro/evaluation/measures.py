"""Implementation-independent quality measures: pruning ratio, TLB, footprint.

These are the measures the paper uses to explain *why* methods behave the way
they do, independently of hardware or implementation quality (§4.2, Figures 8
and 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.distance import squared_euclidean_batch
from ..core.queries import QueryWorkload
from ..core.stats import IndexStats, QueryStats

__all__ = [
    "pruning_ratio",
    "average_pruning_ratio",
    "FootprintReport",
    "footprint_report",
    "tlb_for_method",
]


def pruning_ratio(stats: QueryStats) -> float:
    """Pruning ratio of one query (1 - fraction of raw series examined)."""
    return stats.pruning_ratio


def average_pruning_ratio(stats_list: list[QueryStats]) -> float:
    """Mean pruning ratio across a workload."""
    if not stats_list:
        return 0.0
    return float(np.mean([s.pruning_ratio for s in stats_list]))


@dataclass
class FootprintReport:
    """Index footprint measures (paper Figure 8 a-e)."""

    method: str
    total_nodes: int
    leaf_nodes: int
    memory_bytes: int
    disk_bytes: int
    fill_factor_median: float
    fill_factor_values: list = field(default_factory=list)
    leaf_depth_max: int = 0

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "nodes": self.total_nodes,
            "leaves": self.leaf_nodes,
            "memory_mb": self.memory_bytes / (1024 * 1024),
            "disk_mb": self.disk_bytes / (1024 * 1024),
            "fill_factor_median": self.fill_factor_median,
            "max_leaf_depth": self.leaf_depth_max,
        }


def footprint_report(stats: IndexStats) -> FootprintReport:
    """Summarize an index's footprint from its build stats."""
    return FootprintReport(
        method=stats.method,
        total_nodes=stats.total_nodes,
        leaf_nodes=stats.leaf_nodes,
        memory_bytes=stats.memory_bytes,
        disk_bytes=stats.disk_bytes,
        fill_factor_median=stats.median_fill_factor,
        fill_factor_values=list(stats.leaf_fill_factors),
        leaf_depth_max=stats.max_leaf_depth,
    )


def tlb_for_method(method, workload: QueryWorkload, max_leaves: int = 50) -> float:
    """Tightness of the lower bound of an index (paper §4.2).

    For every query and every sampled leaf, the TLB is the ratio of the
    lower-bounding distance between the query and the leaf to the *average*
    true Euclidean distance between the query and the series in that leaf.
    The reported value is the mean over leaves and queries.

    The method must expose leaves with ``positions`` and a way to compute the
    leaf-level lower bound; the computation below covers the index families in
    this library (iSAX-based, DSTree, SFA trie, R*-tree) and falls back to a
    summary-level TLB for the flat methods (VA+file).
    """
    leaves = _collect_leaves(method)
    ratios: list[float] = []
    data = method.store.dataset.values
    for query in workload:
        q = np.asarray(query.series, dtype=np.float64)
        if leaves:
            for leaf, bound_fn in leaves[:max_leaves]:
                positions = np.asarray(leaf_positions(leaf))
                if positions.size == 0:
                    continue
                true = np.sqrt(squared_euclidean_batch(q, data[positions]))
                avg_true = float(true.mean())
                if avg_true <= 0:
                    continue
                ratios.append(bound_fn(q, leaf) / avg_true)
        else:
            bounds, true = _flat_bounds(method, q, data)
            mask = true > 0
            if np.any(mask):
                ratios.append(float(np.mean(bounds[mask] / true[mask])))
    return float(np.mean(ratios)) if ratios else 0.0


def leaf_positions(leaf) -> list[int]:
    """Positions stored in a leaf, across the different node classes."""
    if hasattr(leaf, "positions"):
        return list(leaf.positions)
    if hasattr(leaf, "entries"):
        return [entry.position for entry in leaf.entries]
    return []


def _collect_leaves(method):
    """(leaf, bound_fn) pairs for tree-based methods; empty list otherwise."""
    name = getattr(method, "name", "")
    if name in ("isax2+",):
        leaves = []
        for child in method.root.children.values():
            leaves.extend(child.leaves())
        fn = lambda q, leaf: method.summarizer.mindist_paa_to_word(  # noqa: E731
            method.summarizer.paa.transform(q), leaf.word
        )
        return [(leaf, fn) for leaf in leaves if leaf.size > 0]
    if name == "ads+":
        leaves = method.tree.leaves()
        fn = lambda q, leaf: method.summarizer.mindist_paa_to_word(  # noqa: E731
            method.summarizer.paa.transform(q), leaf.word
        )
        return [(leaf, fn) for leaf in leaves if leaf.size > 0]
    if name == "dstree":
        leaves = method.root.leaves()
        fn = lambda q, leaf: (  # noqa: E731
            leaf.synopsis.lower_bound(q) if leaf.synopsis is not None else 0.0
        )
        return [(leaf, fn) for leaf in leaves if leaf.size > 0]
    if name == "sfa-trie":
        leaves = []
        for child in method.root.children.values():
            leaves.extend(child.leaves())
        fn = lambda q, leaf: method._prefix_lower_bound(  # noqa: E731
            method.summarizer.dft_of(q), leaf
        )
        return [(leaf, fn) for leaf in leaves if leaf.size > 0]
    if name == "r*-tree":
        leaves = method.root.leaves()
        fn = lambda q, leaf: method._mindist(method.summarizer.transform(q), leaf)  # noqa: E731
        return [(leaf, fn) for leaf in leaves if leaf.size > 0]
    return []


def _flat_bounds(method, query: np.ndarray, data: np.ndarray):
    """Per-series lower bounds and true distances for flat methods (VA+file)."""
    name = getattr(method, "name", "")
    if name == "va+file":
        query_dft = method.summarizer.dft_of(query)
        bounds = method.summarizer.lower_bound_batch(query_dft, method._cells)
        true = np.sqrt(squared_euclidean_batch(query, data))
        return bounds, true
    # Unknown method: report a zero lower bound (trivially valid).
    true = np.sqrt(squared_euclidean_batch(query, data))
    return np.zeros_like(true), true
