"""Experiment runner: build a method, run a workload, collect every measure.

This is the machinery shared by every benchmark in ``benchmarks/``: it mirrors
the paper's procedure (§4.2) — build (or preprocess), then answer the workload
with warm caches, recording per-query wall-clock CPU time and the simulated
I/O derived from the access accounting and the chosen hardware model.

Exact workloads are dispatched through the methods' batch API by default.
For tree indexes the batch path *is* the per-query loop, so their accounting
is the paper's query-by-query measurement unchanged; scan methods with a true
vectorized batch path (flat, MASS) share one data pass across the workload
and report per-query numbers amortized over the batch.  Pass ``batch=False``
to :func:`run_experiment` to force the per-query procedure everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.parallel import parallel_batch_search
from ..core.queries import QueryWorkload
from ..core.registry import create_method
from ..core.series import Dataset
from ..core.stats import IndexStats, QueryStats
from ..core.storage import SeriesStore
from ..workloads.workload import extrapolate_total
from .hardware import HDD, HardwareModel
from .measures import average_pruning_ratio

__all__ = ["ExperimentResult", "run_experiment", "run_comparison"]


@dataclass
class ExperimentResult:
    """Everything measured for one (method, dataset, workload, platform) cell."""

    method: str
    dataset: str
    workload: str
    platform: str
    index_stats: IndexStats
    query_stats: list[QueryStats] = field(default_factory=list)
    answers: list[list] = field(default_factory=list)

    # -- derived measures -----------------------------------------------------
    @property
    def build_seconds(self) -> float:
        return self.index_stats.build_cpu_seconds + self.index_stats.build_io_seconds

    @property
    def query_cpu_seconds(self) -> float:
        return float(sum(s.cpu_seconds for s in self.query_stats))

    @property
    def query_io_seconds(self) -> float:
        return float(sum(s.io_seconds for s in self.query_stats))

    @property
    def query_seconds(self) -> float:
        return self.query_cpu_seconds + self.query_io_seconds

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.query_seconds

    @property
    def pruning_ratio(self) -> float:
        return average_pruning_ratio(self.query_stats)

    @property
    def random_accesses(self) -> int:
        return int(sum(s.random_accesses for s in self.query_stats))

    @property
    def sequential_pages(self) -> int:
        return int(sum(s.sequential_pages for s in self.query_stats))

    @property
    def bytes_read(self) -> int:
        """Logical bytes of raw data touched by the workload (float32 terms)."""
        return int(sum(s.bytes_read for s in self.query_stats))

    @property
    def physical_bytes_read(self) -> int:
        """Stored bytes actually fetched; smaller than :attr:`bytes_read` on
        the compressed backend (quantized + compressed blocks), equal on
        memory/mmap."""
        return int(sum(s.physical_bytes_read for s in self.query_stats))

    @property
    def retries(self) -> int:
        """Backend reads and shard executions retried after transient faults."""
        return int(sum(s.retries for s in self.query_stats))

    @property
    def degraded_queries(self) -> int:
        """Queries answered without consulting the full collection
        (``allow_partial`` dropped one or more failed shards)."""
        return int(sum(1 for s in self.query_stats if s.degraded))

    def per_query_seconds(self) -> np.ndarray:
        return np.array([s.total_seconds for s in self.query_stats])

    def extrapolated_total_seconds(self, target_queries: int = 10_000) -> float:
        """Build time plus the extrapolated cost of a large query workload."""
        return self.build_seconds + extrapolate_total(
            self.per_query_seconds(), target_queries=target_queries
        )

    def scenario_seconds(self, scenario: str) -> float:
        """Total time of one of the paper's scenarios (see evaluation.scenarios)."""
        from .scenarios import scenario_seconds

        return scenario_seconds(self, scenario)

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "dataset": self.dataset,
            "workload": self.workload,
            "platform": self.platform,
            "build_s": round(self.build_seconds, 4),
            "query_s": round(self.query_seconds, 4),
            "query_cpu_s": round(self.query_cpu_seconds, 4),
            "query_io_s": round(self.query_io_seconds, 4),
            "pruning": round(self.pruning_ratio, 4),
            "random_io": self.random_accesses,
            "sequential_pages": self.sequential_pages,
            "mb_read": round(self.bytes_read / (1024 * 1024), 3),
            "phys_mb_read": round(self.physical_bytes_read / (1024 * 1024), 3),
            "retries": self.retries,
            "degraded": self.degraded_queries,
        }


def run_experiment(
    dataset: Dataset,
    workload: QueryWorkload,
    method_name: str,
    platform: HardwareModel = HDD,
    method_params: dict | None = None,
    exact: bool = True,
    page_bytes: int | None = None,
    batch: bool = True,
    workers: int | None = None,
    backend=None,
    measure_io: bool = False,
    faults=None,
    retry=None,
    executor: str | None = None,
) -> ExperimentResult:
    """Build ``method_name`` over ``dataset`` and answer ``workload``.

    The simulated I/O cost of both the build and every query is priced with
    ``platform``; caches are considered warm between indexing and querying (the
    paper's procedure).

    Exact workloads whose queries share one ``k`` are dispatched through the
    method's :meth:`~repro.indexes.base.SearchMethod.knn_exact_batch` batch
    path (disable with ``batch=False``).  Methods without a vectorized batch
    implementation answer query by query as before; scan-based methods
    amortize one data pass over the whole workload.

    ``workers=N`` adds inter-query parallelism: the batch is chunked across a
    thread pool with worker-local accounting (answers are byte-identical for
    any worker count).  Combine with ``method_name="sharded:<m>"`` for
    intra-query shard parallelism as well.

    ``backend`` selects the storage backend (``"memory"``/``"mmap"``/an
    instance; ``None`` follows the dataset, so file-backed datasets run
    out-of-core automatically), and ``measure_io=True`` records measured
    wall-clock I/O per query next to the simulated accounting.

    ``faults`` injects storage faults for chaos experiments (a
    :class:`~repro.core.faults.FaultPlan` or its string spec, e.g.
    ``"seed=7,transient=0.1"``) and ``retry`` overrides the store's
    :class:`~repro.core.faults.RetryPolicy`; retry counts and degraded-query
    flags surface in the result rows.

    ``executor`` selects the shard fan-out backend for sharded methods
    (``"thread"``/``"process"``; ``None`` defers to ``REPRO_EXECUTOR``) —
    rejected for unsharded methods, where it has nothing to parallelize.
    """
    store = SeriesStore(
        dataset,
        page_bytes=page_bytes or platform.page_bytes,
        backend=backend,
        measure_io=measure_io,
        faults=faults,
        retry=retry,
    )
    params = dict(method_params or {})
    if executor is not None:
        if not str(method_name).startswith("sharded"):
            raise ValueError(
                "executor= only applies to sharded methods "
                "(method_name='sharded:<inner>')"
            )
        params.setdefault("executor", executor)
    method = create_method(method_name, store, **params)
    index_stats = method.build()
    index_stats.build_io_seconds = platform.io_seconds(
        index_stats.sequential_pages, index_stats.random_accesses
    )

    result = ExperimentResult(
        method=method.name,
        dataset=dataset.name,
        workload=workload.name,
        platform=platform.name,
        index_stats=index_stats,
    )
    queries = list(workload)
    shared_k = {q.k for q in queries}
    if batch and exact and queries and len(shared_k) == 1:
        stacked = np.vstack([np.asarray(q.series, dtype=np.float64) for q in queries])
        if workers is not None and workers != 1:
            answers = parallel_batch_search(
                method, stacked, k=shared_k.pop(), workers=workers
            )
        else:
            answers = method.knn_exact_batch(stacked, k=shared_k.pop())
    else:
        answers = [
            method.knn_exact(query) if exact else method.knn_approximate(query)
            for query in queries
        ]
    for answer in answers:
        result.query_stats.append(platform.price(answer.stats))
        result.answers.append(answer.neighbors)
    return result


def run_comparison(
    dataset: Dataset,
    workload: QueryWorkload,
    methods: dict,
    platform: HardwareModel = HDD,
) -> dict:
    """Run several methods on the same dataset/workload.

    ``methods`` maps method names to parameter dicts; returns a dict of
    :class:`ExperimentResult` keyed by method name.
    """
    results = {}
    for name, params in methods.items():
        results[name] = run_experiment(
            dataset, workload, name, platform=platform, method_params=params
        )
    return results
