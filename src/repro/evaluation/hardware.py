"""Hardware cost models: turn access counts into simulated I/O time.

The paper runs every experiment on two servers — one with a RAID0 array of 10K
RPM SAS hard drives (high sequential throughput, expensive seeks) and one with
SATA SSDs (lower sequential throughput in their setup, but cheap random
accesses).  The relative performance of the methods flips between the two
machines (e.g. ADS+ and VA+file win on SSD, lose to scans on the HDD box), so
this module models both devices plus an in-memory baseline.  The constants are
calibrated to the figures reported in §4.1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.stats import QueryStats
from ..core.storage import SeriesStore

__all__ = [
    "HardwareModel",
    "HDD",
    "SSD",
    "IN_MEMORY",
    "PLATFORMS",
    "measure_platform",
]


@dataclass(frozen=True)
class HardwareModel:
    """A simple storage device model.

    Attributes
    ----------
    name:
        Platform label used in reports.
    sequential_mb_per_s:
        Sustained sequential read throughput in MB/s.
    random_access_ms:
        Average cost of one random access (seek + rotational latency for HDDs,
        request latency for SSDs) in milliseconds.
    page_bytes:
        Page size assumed when converting sequential page counts to bytes.
    """

    name: str
    sequential_mb_per_s: float
    random_access_ms: float
    page_bytes: int = 65536

    def io_seconds(self, sequential_pages: int, random_accesses: int) -> float:
        """Simulated I/O time for the given access counts."""
        sequential_bytes = sequential_pages * self.page_bytes
        seq_seconds = sequential_bytes / (self.sequential_mb_per_s * 1024 * 1024)
        rand_seconds = random_accesses * (self.random_access_ms / 1000.0)
        return seq_seconds + rand_seconds

    def io_seconds_for(self, stats: QueryStats) -> float:
        """Simulated I/O time for a query's accounted accesses."""
        return self.io_seconds(stats.sequential_pages, stats.random_accesses)

    def price(self, stats: QueryStats) -> QueryStats:
        """Return ``stats`` with :attr:`QueryStats.io_seconds` filled in."""
        stats.io_seconds = self.io_seconds_for(stats)
        return stats


#: the paper's HDD server: 6x10K RPM SAS in RAID0, 1290 MB/s sequential.
HDD = HardwareModel(name="hdd", sequential_mb_per_s=1290.0, random_access_ms=6.0)

#: the paper's SSD server: 2xSATA2 SSD in RAID0, 330 MB/s sequential, fast seeks.
SSD = HardwareModel(name="ssd", sequential_mb_per_s=330.0, random_access_ms=0.15)

#: an in-memory platform (no I/O cost) for the smallest datasets.
IN_MEMORY = HardwareModel(name="memory", sequential_mb_per_s=10_000.0, random_access_ms=0.001)

PLATFORMS = {"hdd": HDD, "ssd": SSD, "memory": IN_MEMORY}


def measure_platform(
    store,
    name: str = "measured",
    max_sequential_rows: int = 1 << 16,
    random_probes: int = 64,
    seed: int = 0,
) -> HardwareModel:
    """Calibrate a :class:`HardwareModel` from *measured* wall-clock I/O.

    Instead of the paper's published device constants, this probes the actual
    storage serving ``store``: a streamed sequential pass (capped at
    ``max_sequential_rows`` rows) yields the sustained sequential throughput,
    and ``random_probes`` scattered single-series reads yield the average
    random-access latency.  Probing happens through a fork of the store with
    measurement enabled, so the store's own counters are untouched; on the
    mmap backend, each probed region's pages are dropped first so the numbers
    reflect page-fault-driven reads rather than a warm private cache (the OS
    page cache still applies — this calibrates the deployed configuration,
    not cold hardware).

    The returned model plugs into everything that accepts a platform
    (:func:`repro.evaluation.runner.run_experiment`, the CLI's cost
    reporting), putting *measured* time behind the same page-granular counts.
    """
    reader = SeriesStore(
        store.dataset,
        page_bytes=store.page_bytes,
        backend=store.backend.fork(),
        measure_io=True,
    )
    rows = min(reader.count, max(1, int(max_sequential_rows)))

    reader.backend.release(0, rows)
    before = reader.counter.measured_io_seconds
    scanned = 0
    for start, block in reader.scan_chunks():
        scanned += block.shape[0]
        if scanned >= rows:
            break
    seq_seconds = max(reader.counter.measured_io_seconds - before, 1e-9)
    seq_mb_per_s = (scanned * reader.series_bytes) / (1024 * 1024) / seq_seconds

    rng = np.random.default_rng(seed)
    probes = rng.integers(0, reader.count, size=max(1, int(random_probes)))
    before = reader.counter.measured_io_seconds
    for position in probes:
        reader.backend.release(int(position), int(position) + 1)
        reader.read_one(int(position))
    rand_seconds = max(reader.counter.measured_io_seconds - before, 1e-12)
    rand_ms = rand_seconds / len(probes) * 1000.0

    return HardwareModel(
        name=name,
        sequential_mb_per_s=max(seq_mb_per_s, 1e-6),
        random_access_ms=max(rand_ms, 1e-9),
        page_bytes=store.page_bytes,
    )
