"""Evaluation scenarios: the columns of the paper's Table 2.

The paper compares methods under six scenarios: indexing alone (Idx), the cost
of 100 exact queries (Exact100), indexing plus 100 queries (Idx+Exact100),
indexing plus an extrapolated 10,000-query workload (Idx+Exact10K), and the
average time of the 20 easiest / 20 hardest queries (Easy-20 / Hard-20), where
difficulty is defined by the average pruning ratio across methods.
"""

from __future__ import annotations

import numpy as np

from ..workloads.workload import extrapolate_total

__all__ = [
    "SCENARIOS",
    "scenario_seconds",
    "best_method_per_scenario",
    "easy_hard_indices",
]

SCENARIOS = (
    "Idx",
    "Exact100",
    "Idx+Exact100",
    "Idx+Exact10K",
    "Easy-20",
    "Hard-20",
)


def easy_hard_indices(results: dict, easiest: int = 20, hardest: int = 20) -> dict:
    """Classify the workload's queries as easy or hard from the average pruning.

    The paper computes each query's average pruning ratio *across methods* and
    labels the highest-pruning queries easy and the lowest-pruning ones hard.
    ``results`` maps method name to :class:`ExperimentResult` (same workload).
    """
    per_method = []
    for result in results.values():
        per_method.append([s.pruning_ratio for s in result.query_stats])
    ratios = np.mean(np.asarray(per_method), axis=0)
    order = np.argsort(-ratios, kind="stable")
    easiest = min(easiest, order.shape[0])
    hardest = min(hardest, order.shape[0])
    return {"easy": order[:easiest].tolist(), "hard": order[-hardest:].tolist()}


def scenario_seconds(result, scenario: str, query_subset: list[int] | None = None) -> float:
    """Total cost of one scenario for one experiment result."""
    per_query = result.per_query_seconds()
    if scenario == "Idx":
        return result.build_seconds
    if scenario == "Exact100":
        return float(per_query.sum())
    if scenario == "Idx+Exact100":
        return result.build_seconds + float(per_query.sum())
    if scenario == "Idx+Exact10K":
        return result.build_seconds + extrapolate_total(per_query, target_queries=10_000)
    if scenario in ("Easy-20", "Hard-20"):
        if query_subset is None:
            raise ValueError(f"{scenario} requires the easy/hard query subset")
        subset = per_query[np.asarray(query_subset, dtype=np.int64)]
        return float(subset.mean()) if subset.size else 0.0
    raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")


def best_method_per_scenario(results: dict) -> dict:
    """The winning method under every scenario (one row of the paper's Table 2).

    ``results`` maps method name to :class:`ExperimentResult` over the same
    dataset, workload and platform.
    """
    subsets = easy_hard_indices(results)
    winners = {}
    for scenario in SCENARIOS:
        best_name = None
        best_value = None
        for name, result in results.items():
            if scenario == "Easy-20":
                value = scenario_seconds(result, scenario, subsets["easy"])
            elif scenario == "Hard-20":
                value = scenario_seconds(result, scenario, subsets["hard"])
            else:
                value = scenario_seconds(result, scenario)
            if best_value is None or value < best_value:
                best_value = value
                best_name = name
        winners[scenario] = best_name
    return winners
