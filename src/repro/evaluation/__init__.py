"""Evaluation framework: hardware models, measures, scenarios, runner, reports."""

from .hardware import HDD, IN_MEMORY, PLATFORMS, SSD, HardwareModel, measure_platform
from .measures import (
    FootprintReport,
    average_pruning_ratio,
    footprint_report,
    pruning_ratio,
    tlb_for_method,
)
from .reporting import format_seconds, render_series, render_table
from .runner import ExperimentResult, run_comparison, run_experiment
from .scenarios import (
    SCENARIOS,
    best_method_per_scenario,
    easy_hard_indices,
    scenario_seconds,
)

__all__ = [
    "HardwareModel",
    "HDD",
    "SSD",
    "IN_MEMORY",
    "PLATFORMS",
    "measure_platform",
    "FootprintReport",
    "footprint_report",
    "pruning_ratio",
    "average_pruning_ratio",
    "tlb_for_method",
    "render_table",
    "render_series",
    "format_seconds",
    "ExperimentResult",
    "run_experiment",
    "run_comparison",
    "SCENARIOS",
    "scenario_seconds",
    "best_method_per_scenario",
    "easy_hard_indices",
]
