"""M-tree metric access method."""

from .index import MTreeIndex, MTreeNode

__all__ = ["MTreeIndex", "MTreeNode"]
