"""M-tree: a metric access method over raw series.

The M-tree partitions objects into nested hyper-spheres.  Internal nodes store
*routing objects* with a covering radius; leaves store the data objects and
their distance to the parent routing object.  Query answering prunes subtrees
with the triangle inequality: a subtree rooted at routing object ``r`` with
radius ``rad`` cannot contain anything closer to the query than
``d(q, r) - rad``.  The tree works directly in the original high-dimensional
space, which is why (as the paper observes) it struggles at data series scale.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ...core.answers import KnnAnswerSet, RangeAnswerSet
from ...core.distance import euclidean
from ...core.queries import KnnQuery
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ..base import SearchMethod

__all__ = ["MTreeIndex", "MTreeNode"]


@dataclass
class _Entry:
    """One entry of an M-tree node (data object or routing object)."""

    position: int
    vector: np.ndarray
    distance_to_parent: float = 0.0
    radius: float = 0.0
    subtree: "MTreeNode | None" = None


@dataclass
class MTreeNode:
    """One M-tree node."""

    is_leaf: bool = True
    entries: list = field(default_factory=list)
    parent: "MTreeNode | None" = None
    parent_entry: _Entry | None = None

    @property
    def size(self) -> int:
        return len(self.entries)

    def iter_nodes(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(e.subtree for e in node.entries if e.subtree is not None)

    def leaves(self):
        return [node for node in self.iter_nodes() if node.is_leaf]


class MTreeIndex(SearchMethod):
    """M-tree metric index.

    Parameters
    ----------
    store:
        The raw-data store.
    node_capacity:
        Maximum entries per node (the paper's tuned leaf size for the M-tree is
        very small — 1 at 50GB scale — reflecting how poorly large metric leaves
        behave for data series; the default here is a small value too).
    """

    name = "m-tree"
    supports_approximate = True

    def __init__(self, store: SeriesStore, node_capacity: int = 16) -> None:
        super().__init__(store)
        if node_capacity < 2:
            raise ValueError("node_capacity must be at least 2")
        self.node_capacity = node_capacity
        self.root = MTreeNode(is_leaf=True)
        self._distance_computations = 0

    # -- construction -------------------------------------------------------------
    def _build(self) -> None:
        data = self.store.scan()
        for position in range(self.store.count):
            self._insert(position, data[position].astype(np.float64))

    def _insert(self, position: int, vector: np.ndarray) -> None:
        node = self._choose_leaf(self.root, vector)
        parent_entry = node.parent_entry
        dist = (
            euclidean(vector, parent_entry.vector) if parent_entry is not None else 0.0
        )
        node.entries.append(
            _Entry(position=position, vector=vector, distance_to_parent=dist)
        )
        self._propagate_radius(node, vector)
        if node.size > self.node_capacity:
            self._split(node)

    def _choose_leaf(self, node: MTreeNode, vector: np.ndarray) -> MTreeNode:
        while not node.is_leaf:
            best = None
            best_key = None
            for entry in node.entries:
                dist = euclidean(vector, entry.vector)
                self._distance_computations += 1
                # Prefer subtrees that need no radius enlargement, then closest.
                enlargement = max(0.0, dist - entry.radius)
                key = (enlargement, dist)
                if best_key is None or key < best_key:
                    best_key = key
                    best = entry
            node = best.subtree
        return node

    def _propagate_radius(self, node: MTreeNode, vector: np.ndarray) -> None:
        """Grow covering radii up the tree to keep them valid after an insert."""
        current = node
        while current.parent_entry is not None:
            entry = current.parent_entry
            dist = euclidean(vector, entry.vector)
            if dist > entry.radius:
                entry.radius = dist
            current = current.parent
            if current is None:
                break

    def _split(self, node: MTreeNode) -> None:
        entries = node.entries
        # Promotion: pick the two entries farthest apart (mM_RAD-style heuristic
        # on a sample to keep construction tractable).
        sample = entries if len(entries) <= 32 else entries[:: max(1, len(entries) // 32)]
        best_pair = None
        best_distance = -1.0
        for i in range(len(sample)):
            for j in range(i + 1, len(sample)):
                dist = euclidean(sample[i].vector, sample[j].vector)
                self._distance_computations += 1
                if dist > best_distance:
                    best_distance = dist
                    best_pair = (sample[i], sample[j])
        first, second = best_pair

        left = MTreeNode(is_leaf=node.is_leaf)
        right = MTreeNode(is_leaf=node.is_leaf)
        left_entry = _Entry(position=first.position, vector=first.vector, subtree=left)
        right_entry = _Entry(position=second.position, vector=second.vector, subtree=right)

        # Generalized hyperplane partition.
        for entry in entries:
            d_left = euclidean(entry.vector, first.vector)
            d_right = euclidean(entry.vector, second.vector)
            self._distance_computations += 2
            if d_left <= d_right:
                target, target_entry, dist = left, left_entry, d_left
            else:
                target, target_entry, dist = right, right_entry, d_right
            entry.distance_to_parent = dist
            target.entries.append(entry)
            target_entry.radius = max(target_entry.radius, dist + entry.radius)
            if not node.is_leaf and entry.subtree is not None:
                entry.subtree.parent = target
                entry.subtree.parent_entry = entry

        for child, child_entry in ((left, left_entry), (right, right_entry)):
            child.parent_entry = child_entry
            for entry in child.entries:
                if entry.subtree is not None:
                    entry.subtree.parent = child

        parent = node.parent
        if parent is None:
            new_root = MTreeNode(is_leaf=False)
            new_root.entries = [left_entry, right_entry]
            left.parent = new_root
            right.parent = new_root
            left_entry.distance_to_parent = 0.0
            right_entry.distance_to_parent = 0.0
            self.root = new_root
        else:
            parent.entries.remove(node.parent_entry)
            parent.entries.extend([left_entry, right_entry])
            left.parent = parent
            right.parent = parent
            grand = parent.parent_entry
            if grand is not None:
                left_entry.distance_to_parent = euclidean(left_entry.vector, grand.vector)
                right_entry.distance_to_parent = euclidean(right_entry.vector, grand.vector)
                grand.radius = max(
                    grand.radius,
                    left_entry.distance_to_parent + left_entry.radius,
                    right_entry.distance_to_parent + right_entry.radius,
                )
            if parent.size > self.node_capacity:
                self._split(parent)

    def _collect_footprint(self) -> None:
        leaves = self.root.leaves()
        self.index_stats.total_nodes = sum(1 for _ in self.root.iter_nodes())
        self.index_stats.leaf_nodes = len(leaves)
        self.index_stats.leaf_fill_factors = [
            leaf.size / self.node_capacity for leaf in leaves
        ]
        depths = []
        for leaf in leaves:
            depth = 0
            node = leaf
            while node.parent is not None:
                depth += 1
                node = node.parent
            depths.append(depth)
        self.index_stats.leaf_depths = depths
        # The M-tree stores full vectors in every node: memory-resident index.
        vector_bytes = self.store.length * 8
        entry_count = sum(node.size for node in self.root.iter_nodes())
        self.index_stats.memory_bytes = entry_count * (vector_bytes + 32)
        self.index_stats.disk_bytes = 0

    # -- search ---------------------------------------------------------------------
    def _scan_leaf(
        self,
        node: MTreeNode,
        query: np.ndarray,
        answers: KnnAnswerSet,
        stats: QueryStats,
        query_parent_distance: float | None = None,
    ) -> None:
        positions = [entry.position for entry in node.entries]
        if not positions:
            return
        self.store.read_block(np.asarray(positions))
        stats.leaves_visited += 1
        stats.nodes_visited += 1
        for entry in node.entries:
            if query_parent_distance is not None and answers.is_full:
                # Triangle-inequality pre-filter using stored parent distances.
                gap = abs(query_parent_distance - entry.distance_to_parent)
                if gap * gap > answers.worst_squared_distance:
                    continue
            diff = query - entry.vector
            distance = float(np.dot(diff, diff))
            stats.series_examined += 1
            answers.offer(entry.position, distance)

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        answers = KnnAnswerSet(k)
        node = self.root
        while not node.is_leaf:
            best = min(node.entries, key=lambda e: euclidean(query, e.vector))
            stats.nodes_visited += 1
            node = best.subtree
        self._scan_leaf(node, query, answers, stats)
        return answers

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = self._make_answer_set(k)
        counter = itertools.count()
        heap: list[tuple[float, int, MTreeNode, float]] = []
        heapq.heappush(heap, (0.0, next(counter), self.root, 0.0))
        while heap:
            bound, _, node, parent_distance = heapq.heappop(heap)
            # Strict >: equality must not prune (positional tie-break).
            if bound * bound > answers.worst_squared_distance:
                break
            if node.is_leaf:
                self._scan_leaf(node, query, answers, stats, parent_distance)
                continue
            stats.nodes_visited += 1
            for entry in node.entries:
                dist = euclidean(query, entry.vector)
                stats.lower_bounds_computed += 1
                lower = max(0.0, dist - entry.radius)
                if lower * lower <= answers.worst_squared_distance:
                    heapq.heappush(heap, (lower, next(counter), entry.subtree, dist))
        return answers

    def knn_epsilon(self, query: KnnQuery, epsilon: float = 0.0):
        """Epsilon-approximate k-NN search (Definition 5 in the paper).

        Every returned distance is guaranteed to be at most ``(1 + epsilon)``
        times the exact k-th nearest-neighbor distance.  With ``epsilon = 0``
        this is the exact algorithm; larger values prune more aggressively
        (subtrees are discarded when even an ``epsilon``-deflated best-so-far
        cannot be improved).  The M-tree is the one method in the paper's
        Table 1 offering this guarantee natively.
        """
        self._require_built()
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        before = self.store.counter_snapshot()
        stats = QueryStats(dataset_size=self.store.count)
        start = time.perf_counter()
        answers = self._knn_bounded(
            np.asarray(query.series, dtype=np.float64), query.k, stats, epsilon
        )
        stats.cpu_seconds = time.perf_counter() - start
        delta = self.store.since(before)
        stats.random_accesses += delta.random_accesses
        stats.sequential_pages += delta.sequential_pages
        neighbors = answers.neighbors()
        if neighbors:
            stats.answer_distance = neighbors[0].distance
        from ..base import SearchResult

        return SearchResult(neighbors, stats)

    def _knn_bounded(
        self, query: np.ndarray, k: int, stats: QueryStats, epsilon: float
    ) -> KnnAnswerSet:
        answers = self._make_answer_set(k)
        inflation = (1.0 + epsilon) ** 2
        counter = itertools.count()
        heap: list[tuple[float, int, MTreeNode, float]] = []
        heapq.heappush(heap, (0.0, next(counter), self.root, 0.0))
        while heap:
            bound, _, node, parent_distance = heapq.heappop(heap)
            # Strict >: with epsilon = 0 this is the exact algorithm, so
            # equality must not prune (positional tie-break).
            if bound * bound * inflation > answers.worst_squared_distance:
                break
            if node.is_leaf:
                self._scan_leaf(node, query, answers, stats, parent_distance)
                continue
            stats.nodes_visited += 1
            for entry in node.entries:
                dist = euclidean(query, entry.vector)
                stats.lower_bounds_computed += 1
                lower = max(0.0, dist - entry.radius)
                if lower * lower * inflation <= answers.worst_squared_distance:
                    heapq.heappush(heap, (lower, next(counter), entry.subtree, dist))
        return answers

    def _range_exact(
        self, query: np.ndarray, radius: float, stats: QueryStats
    ) -> RangeAnswerSet:
        """r-range query using the covering radii (exact, no false dismissals)."""
        answers = RangeAnswerSet(radius=radius)
        stack = [(self.root, None)]
        while stack:
            node, parent_distance = stack.pop()
            if node.is_leaf:
                positions = [entry.position for entry in node.entries]
                if positions:
                    self.store.read_block(np.asarray(positions))
                    stats.leaves_visited += 1
                for entry in node.entries:
                    diff = query - entry.vector
                    sq = float(np.dot(diff, diff))
                    stats.series_examined += 1
                    answers.offer(entry.position, sq)
                continue
            stats.nodes_visited += 1
            for entry in node.entries:
                dist = euclidean(query, entry.vector)
                stats.lower_bounds_computed += 1
                if dist - entry.radius <= radius:
                    stack.append((entry.subtree, dist))
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info["node_capacity"] = self.node_capacity
        return info
