"""Index structures evaluated by the paper.

Every class here implements :class:`repro.indexes.base.SearchMethod` and
supports exact whole-matching k-NN search; most also support ng-approximate
search (a single root-to-leaf descent).
"""

from .base import SearchMethod, SearchResult
from .sharded import ShardedMethod
from .isax import Isax2PlusIndex
from .ads import AdsPlusIndex
from .dstree import DsTreeIndex
from .sfa_trie import SfaTrieIndex
from .vafile import VaPlusFileIndex
from .mtree import MTreeIndex
from .rstartree import RStarTreeIndex
from .stepwise import StepwiseIndex

__all__ = [
    "SearchMethod",
    "SearchResult",
    "ShardedMethod",
    "Isax2PlusIndex",
    "AdsPlusIndex",
    "DsTreeIndex",
    "SfaTrieIndex",
    "VaPlusFileIndex",
    "MTreeIndex",
    "RStarTreeIndex",
    "StepwiseIndex",
]
