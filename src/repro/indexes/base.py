"""Common interface for every similarity-search method in the library.

A :class:`SearchMethod` wraps a :class:`~repro.core.storage.SeriesStore` and
answers exact (and, where supported, ng-approximate) whole-matching k-NN
queries, while reporting the accounting structures the paper's evaluation is
built on (:class:`~repro.core.stats.QueryStats`,
:class:`~repro.core.stats.IndexStats`).
"""

from __future__ import annotations

import abc
import time

import numpy as np

from ..core.answers import KnnAnswerSet, Neighbor, RangeAnswerSet
from ..core.distance import squared_euclidean_batch
from ..core.queries import KnnQuery, RangeQuery
from ..core.stats import IndexStats, QueryStats
from ..core.storage import SeriesStore

__all__ = ["SearchMethod", "SearchResult", "RangeSearchResult"]


class SearchResult:
    """Answers plus per-query accounting returned by every method."""

    def __init__(self, neighbors: list[Neighbor], stats: QueryStats) -> None:
        self.neighbors = neighbors
        self.stats = stats

    @property
    def nearest(self) -> Neighbor:
        if not self.neighbors:
            raise ValueError("the result set is empty")
        return self.neighbors[0]

    def positions(self) -> list[int]:
        return [n.position for n in self.neighbors]

    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SearchResult(neighbors={self.neighbors!r})"


class RangeSearchResult:
    """Answers plus accounting for an r-range query."""

    def __init__(self, answers: RangeAnswerSet, stats: QueryStats) -> None:
        self.answers = answers
        self.stats = stats

    @property
    def neighbors(self) -> list[Neighbor]:
        return self.answers.neighbors()

    def positions(self) -> list[int]:
        return [n.position for n in self.neighbors]

    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors]

    def __len__(self) -> int:
        return self.answers.size


class SearchMethod(abc.ABC):
    """Abstract base class for the ten evaluated methods.

    Lifecycle::

        method = SomeMethod(store, **parameters)
        method.build()                    # index construction / preprocessing
        result = method.knn_exact(query)  # exact whole-matching search
    """

    #: short name used by the registry and the reports ("isax2+", "dstree", ...)
    name: str = "method"
    #: whether the method builds an auxiliary structure (False for UCR Suite).
    is_index: bool = True
    #: whether the method supports ng-approximate search.
    supports_approximate: bool = False

    def __init__(self, store: SeriesStore) -> None:
        self.store = store
        self.index_stats = IndexStats(method=self.name)
        self._built = False

    # -- construction -----------------------------------------------------------
    def build(self) -> IndexStats:
        """Build the index (or perform the method's preprocessing step)."""
        before = self.store.snapshot()
        start = time.perf_counter()
        self._build()
        elapsed = time.perf_counter() - start
        delta = self.store.since(before)
        self.index_stats.method = self.name
        self.index_stats.build_cpu_seconds = elapsed
        self.index_stats.sequential_pages = delta.sequential_pages
        self.index_stats.random_accesses = delta.random_accesses
        self._collect_footprint()
        self._built = True
        return self.index_stats

    @abc.abstractmethod
    def _build(self) -> None:
        """Method-specific construction."""

    def _collect_footprint(self) -> None:
        """Populate node counts / sizes in :attr:`index_stats` (optional)."""

    @property
    def is_built(self) -> bool:
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError(f"{self.name}: build() must be called before searching")

    # -- search -------------------------------------------------------------------
    def knn_exact(self, query: KnnQuery) -> SearchResult:
        """Answer an exact k-NN query, with timing and access accounting."""
        self._require_built()
        before = self.store.snapshot()
        stats = QueryStats(dataset_size=self.store.count)
        start = time.perf_counter()
        answers = self._knn_exact(np.asarray(query.series, dtype=np.float64), query.k, stats)
        stats.cpu_seconds = time.perf_counter() - start
        delta = self.store.since(before)
        stats.random_accesses += delta.random_accesses
        stats.sequential_pages += delta.sequential_pages
        stats.bytes_read += delta.bytes_read
        neighbors = answers.neighbors()
        if neighbors:
            stats.answer_distance = neighbors[0].distance
        return SearchResult(neighbors, stats)

    def knn_approximate(self, query: KnnQuery) -> SearchResult:
        """Answer an ng-approximate k-NN query (one index path, one leaf)."""
        self._require_built()
        if not self.supports_approximate:
            raise NotImplementedError(f"{self.name} does not support approximate search")
        before = self.store.snapshot()
        stats = QueryStats(dataset_size=self.store.count)
        start = time.perf_counter()
        answers = self._knn_approximate(
            np.asarray(query.series, dtype=np.float64), query.k, stats
        )
        stats.cpu_seconds = time.perf_counter() - start
        delta = self.store.since(before)
        stats.random_accesses += delta.random_accesses
        stats.sequential_pages += delta.sequential_pages
        stats.bytes_read += delta.bytes_read
        neighbors = answers.neighbors()
        if neighbors:
            stats.answer_distance = neighbors[0].distance
        return SearchResult(neighbors, stats)

    def range_exact(self, query: RangeQuery) -> RangeSearchResult:
        """Answer an exact r-range query (Definition 2 in the paper).

        The default implementation seeds the pruning threshold with the query
        radius and reuses the method's exact machinery indirectly: every method
        overrides :meth:`_range_exact` where a better-than-scan strategy
        exists; the base fallback is a full sequential scan, which is always
        correct.
        """
        self._require_built()
        before = self.store.snapshot()
        stats = QueryStats(dataset_size=self.store.count)
        start = time.perf_counter()
        answers = self._range_exact(
            np.asarray(query.series, dtype=np.float64), float(query.radius), stats
        )
        stats.cpu_seconds = time.perf_counter() - start
        delta = self.store.since(before)
        stats.random_accesses += delta.random_accesses
        stats.sequential_pages += delta.sequential_pages
        stats.bytes_read += delta.bytes_read
        return RangeSearchResult(answers, stats)

    @abc.abstractmethod
    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        """Method-specific exact search."""

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        raise NotImplementedError

    def _range_exact(
        self, query: np.ndarray, radius: float, stats: QueryStats
    ) -> RangeAnswerSet:
        """Fallback r-range search: a full scan of the raw data (always exact)."""
        answers = RangeAnswerSet(radius=radius)
        data = self.store.scan()
        stats.series_examined += self.store.count
        distances = squared_euclidean_batch(query, data)
        within = np.flatnonzero(distances <= radius * radius)
        for position in within:
            answers.offer(int(position), float(distances[position]))
        return answers

    # -- description ---------------------------------------------------------------
    def describe(self) -> dict:
        """A small dict describing the method configuration (for reports)."""
        return {"name": self.name, "is_index": self.is_index}
