"""Common interface for every similarity-search method in the library.

A :class:`SearchMethod` wraps a :class:`~repro.core.storage.SeriesStore` and
answers exact (and, where supported, ng-approximate) whole-matching k-NN
queries, while reporting the accounting structures the paper's evaluation is
built on (:class:`~repro.core.stats.QueryStats`,
:class:`~repro.core.stats.IndexStats`).
"""

from __future__ import annotations

import abc
import threading
import time
from contextlib import contextmanager

import numpy as np

from ..core.answers import KnnAnswerSet, Neighbor, RangeAnswerSet
from ..core.distance import squared_euclidean_batch
from ..core.queries import KnnQuery, RangeQuery
from ..core.quantize import quantized_lower_bounds
from ..core.series import SERIES_DTYPE
from ..core.stats import AccessCounter, IndexStats, QueryStats
from ..core.storage import SeriesStore

__all__ = ["SearchMethod", "SearchResult", "RangeSearchResult"]


class SearchResult:
    """Answers plus per-query accounting returned by every method."""

    def __init__(self, neighbors: list[Neighbor], stats: QueryStats) -> None:
        self.neighbors = neighbors
        self.stats = stats

    @property
    def nearest(self) -> Neighbor:
        if not self.neighbors:
            raise ValueError("the result set is empty")
        return self.neighbors[0]

    def positions(self) -> list[int]:
        return [n.position for n in self.neighbors]

    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SearchResult(neighbors={self.neighbors!r})"


class RangeSearchResult:
    """Answers plus accounting for an r-range query."""

    def __init__(self, answers: RangeAnswerSet, stats: QueryStats) -> None:
        self.answers = answers
        self.stats = stats

    @property
    def neighbors(self) -> list[Neighbor]:
        return self.answers.neighbors()

    def positions(self) -> list[int]:
        return [n.position for n in self.neighbors]

    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors]

    def __len__(self) -> int:
        return self.answers.size


class SearchMethod(abc.ABC):
    """Abstract base class for the ten evaluated methods.

    Lifecycle::

        method = SomeMethod(store, **parameters)
        method.build()                    # index construction / preprocessing
        result = method.knn_exact(query)  # exact whole-matching search
    """

    #: short name used by the registry and the reports ("isax2+", "dstree", ...)
    name: str = "method"
    #: whether the method builds an auxiliary structure (False for UCR Suite).
    is_index: bool = True
    #: whether the method supports ng-approximate search.
    supports_approximate: bool = False
    #: whether the method implements an array-native bulk-load constructor.
    supports_bulk_build: bool = False

    def __init__(
        self,
        store: SeriesStore,
        build_mode: str = "bulk",
        build_chunk_rows: int | None = None,
    ) -> None:
        if build_mode not in ("bulk", "incremental"):
            raise ValueError("build_mode must be 'bulk' or 'incremental'")
        if build_chunk_rows is not None and int(build_chunk_rows) <= 0:
            raise ValueError("build_chunk_rows must be positive or None")
        # Thread-local execution context (set before the store property below).
        self._context = threading.local()
        self.store = store
        self.build_mode = build_mode
        #: rows per streamed build chunk (None = the store's default chunk).
        #: Bulk builds stream the collection in chunks of this many rows, so
        #: peak build residency is one chunk plus the summaries — the chunk
        #: size trades sequential-pass granularity for resident bytes and
        #: never changes the built index (chunking is row-local).
        self.build_chunk_rows = None if build_chunk_rows is None else int(build_chunk_rows)
        self.index_stats = IndexStats(method=self.name)
        self._built = False

    # -- parallel execution context ---------------------------------------------
    # Search code is read-only with respect to the index structure (lazily
    # cached node matrices are idempotent, so racing builds are benign under
    # the GIL), which makes concurrent queries safe *except* for the shared
    # access accounting.  Workers therefore run under an execution context
    # that swaps in a forked store (same dataset, private counter) for the
    # current thread only; ``self.store`` resolves through it transparently,
    # so no method-specific search code needs to know about threading.

    @property
    def store(self) -> SeriesStore:
        override = getattr(self._context, "store", None)
        return self._base_store if override is None else override

    @store.setter
    def store(self, value: SeriesStore | None) -> None:
        self._base_store = value
        self._on_store_attached(value)

    def _on_store_attached(self, store: SeriesStore | None) -> None:
        """Hook run whenever the base store is (re-)attached (persistence)."""

    @contextmanager
    def execution_context(self, store: SeriesStore | None = None, answer_factory=None):
        """Run the calling thread's searches under worker-local state.

        ``store`` substitutes a forked store so access accounting is private
        to this worker; ``answer_factory`` substitutes the k-NN answer-set
        constructor (the sharded wrapper injects sets wired to a cross-shard
        shared pruning radius).  Both apply to the current thread only and are
        restored on exit, so concurrent workers compose without interference.
        """
        ctx = self._context
        previous = (getattr(ctx, "store", None), getattr(ctx, "answer_factory", None))
        if store is not None:
            ctx.store = store
        if answer_factory is not None:
            ctx.answer_factory = answer_factory
        try:
            yield self
        finally:
            ctx.store, ctx.answer_factory = previous

    def _make_answer_set(self, k: int) -> KnnAnswerSet:
        """The k-NN answer set for one exact search (context-overridable)."""
        factory = getattr(self._context, "answer_factory", None)
        return KnnAnswerSet(k) if factory is None else factory(k)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_context", None)  # thread-local state is not picklable
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._context = threading.local()

    # -- construction -----------------------------------------------------------
    def build(self) -> IndexStats:
        """Build the index (or perform the method's preprocessing step)."""
        before = self.store.counter_snapshot()
        start = time.perf_counter()
        self._build()
        elapsed = time.perf_counter() - start
        delta = self.store.since(before)
        self.index_stats.method = self.name
        self.index_stats.build_cpu_seconds = elapsed
        self.index_stats.sequential_pages = delta.sequential_pages
        self.index_stats.random_accesses = delta.random_accesses
        self._collect_footprint()
        self._built = True
        return self.index_stats

    def _build(self) -> None:
        """Method-specific construction.

        The default dispatches to the array-native :meth:`_bulk_build` when
        the method implements one (``supports_bulk_build``) and the caller did
        not force ``build_mode="incremental"``; otherwise it falls back to the
        per-series :meth:`_incremental_build` loop.  Methods without a
        bulk/incremental distinction simply override :meth:`_build` directly.
        """
        if self.supports_bulk_build and self.build_mode == "bulk":
            self._bulk_build()
        else:
            self._incremental_build()

    def _bulk_build(self) -> None:
        """Array-native bulk construction (tree methods override this)."""
        raise NotImplementedError(f"{self.name} has no bulk-load constructor")

    def _incremental_build(self) -> None:
        """Per-series insert-loop construction (the bulk loaders' fallback)."""
        raise NotImplementedError(f"{self.name} does not implement construction")

    def append(self, position: int) -> None:
        """Insert one more series from the store into a *built* index.

        Bulk loading covers the initial collection; methods that maintain an
        incremental insert path expose it here so series appended to the store
        after construction become searchable without a rebuild.
        """
        raise NotImplementedError(f"{self.name} does not support appends")

    def extend(self, start: int, stop: int | None = None) -> int:
        """Bulk-insert store rows ``[start, stop)`` into a *built* index.

        The live-ingest companion of :meth:`append`: after
        ``store.extend(rows)`` lands new rows, ``method.extend(old_count)``
        makes them searchable without a rebuild.  ``stop`` defaults to the
        store's current count.  The base implementation loops
        :meth:`append`; tree families override it with a batch-summarize +
        bulk-insert path.  Returns the number of rows inserted.
        """
        self._require_built()
        start = int(start)
        stop = self.store.count if stop is None else int(stop)
        if not (0 <= start <= stop <= self.store.count):
            raise ValueError(
                f"extend range [{start}, {stop}) out of bounds for "
                f"{self.store.count} rows"
            )
        for position in range(start, stop):
            self.append(position)
        return stop - start

    def _collect_footprint(self) -> None:
        """Populate node counts / sizes in :attr:`index_stats` (optional)."""

    @property
    def is_built(self) -> bool:
        return self._built

    def _require_built(self) -> None:
        if not self._built:
            raise RuntimeError(f"{self.name}: build() must be called before searching")

    # -- search -------------------------------------------------------------------
    def _charge_delta(self, stats: QueryStats, delta: AccessCounter) -> None:
        """Charge a store-counter delta to one query's stats."""
        stats.random_accesses += delta.random_accesses
        stats.sequential_pages += delta.sequential_pages
        stats.bytes_read += delta.bytes_read
        stats.physical_bytes_read += delta.physical_bytes_read
        stats.measured_io_seconds += delta.measured_io_seconds
        stats.retries += delta.retries

    def _package_result(self, answers: KnnAnswerSet, stats: QueryStats) -> SearchResult:
        neighbors = answers.neighbors()
        if neighbors:
            stats.answer_distance = neighbors[0].distance
        return SearchResult(neighbors, stats)

    def knn_exact(self, query: KnnQuery) -> SearchResult:
        """Answer an exact k-NN query, with timing and access accounting."""
        self._require_built()
        before = self.store.counter_snapshot()
        stats = QueryStats(dataset_size=self.store.count)
        start = time.perf_counter()
        answers = self._knn_exact(np.asarray(query.series, dtype=np.float64), query.k, stats)
        stats.cpu_seconds = time.perf_counter() - start
        self._charge_delta(stats, self.store.since(before))
        return self._package_result(answers, stats)

    def knn_exact_batch(self, queries: np.ndarray, k: int = 1) -> list[SearchResult]:
        """Answer many exact k-NN queries in one call.

        ``queries`` is a ``(Q, length)`` array (a single 1-D query is
        accepted).  Returns one :class:`SearchResult` per query, in order,
        with exactly the answers :meth:`knn_exact` would return.

        The work happens in the :meth:`_batch_answer_sets` seam: the base
        implementation loops the per-query search, so every method supports
        the batch API out of the box; scan-based methods override the seam
        with a true vectorized implementation that amortizes the data pass and
        the distance kernel over the whole query batch (one ``(Q, N)``
        distance-matrix tile pass instead of ``Q`` separate scans), and the
        sharded wrapper overrides it to fan the batch out across shards.
        """
        self._require_built()
        qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        answer_sets, stats_list = self._batch_answer_sets(qs, k)
        return [
            self._package_result(answers, stats)
            for answers, stats in zip(answer_sets, stats_list)
        ]

    def _batch_answer_sets(
        self, queries: np.ndarray, k: int
    ) -> tuple[list[KnnAnswerSet], list[QueryStats]]:
        """Per-query answer sets and stats for an exact batch (internal seam).

        Returning raw answer sets (squared distances) rather than packaged
        results lets the sharded wrapper merge shard answers without a lossy
        sqrt round-trip.  The default is the per-query loop with per-query
        timing and accounting — exactly what looping :meth:`knn_exact`
        produces (queries pass through the collection dtype first, just as
        :class:`~repro.core.queries.KnnQuery` coerces them).

        Contract for overrides: create exactly one answer set per query, in
        query order, via :meth:`_make_answer_set` — the sharded wrapper wires
        per-query shared pruning radii through that factory and relies on the
        call order to match sets to queries.
        """
        answer_sets: list[KnnAnswerSet] = []
        stats_list: list[QueryStats] = []
        for q in queries:
            series = np.asarray(np.asarray(q, dtype=SERIES_DTYPE), dtype=np.float64)
            before = self.store.counter_snapshot()
            stats = QueryStats(dataset_size=self.store.count)
            start = time.perf_counter()
            answers = self._knn_exact(series, k, stats)
            stats.cpu_seconds = time.perf_counter() - start
            self._charge_delta(stats, self.store.since(before))
            answer_sets.append(answers)
            stats_list.append(stats)
        return answer_sets, stats_list

    def _streamed_norms(self, chunk_rows: int | None = None) -> np.ndarray:
        """Candidate squared norms in one streamed sequential pass.

        Chunked so the float64 staging buffer — and, on the mmap backend, the
        resident pages of the raw file — stay bounded by the chunk size
        regardless of the collection size.  Scan-based methods call this at
        build time and feed the result to the tiled scans below.
        """
        if chunk_rows is None:
            chunk_rows = self.build_chunk_rows
        norms = np.empty(self.store.count, dtype=np.float64)
        for start, block in self.store.scan_chunks(chunk_rows=chunk_rows):
            b = block.astype(np.float64)
            norms[start : start + b.shape[0]] = np.einsum("ij,ij->i", b, b)
        return norms

    @staticmethod
    def _tile_norms(
        norms: np.ndarray | None, block: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Squared norms for one float64 tile: the precomputed slice, or — when
        the method was built without norms — computed on the fly (per-row, so
        the values are identical either way)."""
        if norms is None:
            return np.einsum("ij,ij->i", block, block)
        return norms[start:stop]

    def _tiled_batch_scan(
        self,
        queries: np.ndarray,
        k: int,
        tile: int,
        norms: np.ndarray | None,
        dots_for,
    ) -> tuple[list[KnnAnswerSet], list[QueryStats]]:
        """Shared driver for vectorized batch scans over the raw data.

        One sequential pass in tiles of ``tile`` series; ``dots_for(block)``
        returns the ``(Q, tile)`` dot products of every query against the
        (float64) tile, and squared distances follow from the norm-expansion
        identity ``||q - c||^2 = ||q||^2 + ||c||^2 - 2 <q, c>``.  ``norms``
        are the precomputed candidate squared norms (computed on the fly when
        the method was built without them).  Accounting is amortized over the
        batch via :meth:`_amortized_batch_stats`.

        On a store whose backend keeps a quantized representation (the
        compressed backend) the pass automatically runs as a two-phase pruned
        scan — quantized filter, full-precision refinement of surviving tiles
        — with byte-identical answers (:meth:`_tiled_pruned_batch_scan`).
        """
        if self.store.supports_quantized_scan:
            return self._tiled_pruned_batch_scan(queries, k, tile, norms, dots_for)
        before = self.store.counter_snapshot()
        start_time = time.perf_counter()

        q_norms = np.einsum("ij,ij->i", queries, queries)
        answer_sets = [self._make_answer_set(k) for _ in range(queries.shape[0])]
        # One streamed pass in tiles: residency stays O(tile) on every backend
        # (the mmap backend drops each consumed tile's pages), with accounting
        # identical to a scan()-then-slice pass.
        for start, raw in self.store.scan_chunks(chunk_rows=tile):
            stop = start + raw.shape[0]
            block = raw.astype(np.float64)
            tile_norms = self._tile_norms(norms, block, start, stop)
            distances = (
                q_norms[:, np.newaxis] + tile_norms[np.newaxis, :] - 2.0 * dots_for(block)
            )
            np.clip(distances, 0.0, None, out=distances)
            positions = np.arange(start, stop)
            for answers, row in zip(answer_sets, distances):
                answers.offer_batch(positions, row)

        elapsed = time.perf_counter() - start_time
        delta = self.store.since(before)
        return answer_sets, self._amortized_batch_stats(len(answer_sets), elapsed, delta)

    def _tile_survives_filter(
        self, parts, queries: np.ndarray, thresholds: np.ndarray
    ) -> bool:
        """Whether a quantized tile may still hold an answer for any query.

        ``parts`` is one tile's integer representation
        (``[(codes, scale, shift), ...]``) and ``thresholds`` the per-query
        pruning radii (current worst squared distances).  The tile is pruned
        only when the *sound* quantized lower bound of every row strictly
        exceeds every query's radius — a pruned row therefore cannot enter the
        final answer set, not even through the positional tie-break, so
        skipping its full-precision read changes nothing.  Any non-finite
        threshold (an answer set not yet full) keeps the tile.
        """
        if not np.all(np.isfinite(thresholds)):
            return True
        remaining = np.full(thresholds.shape[0], np.inf)
        for codes, scale, shift in parts:
            bounds = quantized_lower_bounds(codes, scale, shift, queries)
            np.minimum(remaining, bounds.min(axis=1), out=remaining)
            if np.any(remaining <= thresholds):
                return True
        return bool(np.any(remaining <= thresholds))

    def _tiled_pruned_batch_scan(
        self,
        queries: np.ndarray,
        k: int,
        tile: int,
        norms: np.ndarray | None,
        dots_for,
    ) -> tuple[list[KnnAnswerSet], list[QueryStats]]:
        """Two-phase variant of :meth:`_tiled_batch_scan` (compressed backend).

        Phase 1 streams the quantized representation
        (:meth:`~repro.core.storage.SeriesStore.scan_quantized_chunks`) and
        bounds every tile against the batch's tightening pruning radii; phase
        2 fetches full precision only for surviving tiles — a skip-sequential
        :meth:`~repro.core.storage.SeriesStore.read_contiguous` each, like
        VA+file refinement — and runs the *identical* distance kernel at the
        identical tile boundaries the plain pass uses, so the answers are
        byte-identical while the physical bytes moved drop several-fold.
        """
        before = self.store.counter_snapshot()
        start_time = time.perf_counter()

        q_norms = np.einsum("ij,ij->i", queries, queries)
        answer_sets = [self._make_answer_set(k) for _ in range(queries.shape[0])]
        examined = 0
        for start, stop, parts in self.store.scan_quantized_chunks(chunk_rows=tile):
            thresholds = np.array([a.worst_squared_distance for a in answer_sets])
            if not self._tile_survives_filter(parts, queries, thresholds):
                continue
            raw = self.store.read_contiguous(start, stop)
            examined += stop - start
            block = raw.astype(np.float64)
            tile_norms = self._tile_norms(norms, block, start, stop)
            distances = (
                q_norms[:, np.newaxis] + tile_norms[np.newaxis, :] - 2.0 * dots_for(block)
            )
            np.clip(distances, 0.0, None, out=distances)
            positions = np.arange(start, stop)
            for answers, row in zip(answer_sets, distances):
                answers.offer_batch(positions, row)

        elapsed = time.perf_counter() - start_time
        delta = self.store.since(before)
        return answer_sets, self._amortized_batch_stats(
            len(answer_sets),
            elapsed,
            delta,
            examined=examined,
            lower_bounds=self.store.count,
        )

    def _amortized_batch_stats(
        self,
        count: int,
        elapsed: float,
        delta,
        examined: int | None = None,
        lower_bounds: int = 0,
    ) -> list[QueryStats]:
        """Per-query stats for answers produced by one shared batch pass.

        The measured CPU time and the access counts of the shared scan are
        amortized evenly over the batch (integer counters distribute their
        remainder to the first queries so batch totals are preserved) — this
        is the accounting story of batched execution: ``Q`` queries share a
        single pass over the data.  ``examined`` overrides the series-examined
        count per query (the pruned scans refine only survivors) and
        ``lower_bounds`` records the filter bounds each query evaluated.
        """
        stats_list = []
        for i in range(count):

            def share(total: int) -> int:
                return total // count + (1 if i < total % count else 0)

            stats = QueryStats(dataset_size=self.store.count)
            stats.cpu_seconds = elapsed / count
            stats.series_examined = self.store.count if examined is None else examined
            stats.lower_bounds_computed = lower_bounds
            stats.random_accesses = share(delta.random_accesses)
            stats.sequential_pages = share(delta.sequential_pages)
            stats.bytes_read = share(delta.bytes_read)
            stats.physical_bytes_read = share(delta.physical_bytes_read)
            stats.measured_io_seconds = delta.measured_io_seconds / count
            stats.retries = share(delta.retries)
            stats_list.append(stats)
        return stats_list

    def knn_approximate(self, query: KnnQuery) -> SearchResult:
        """Answer an ng-approximate k-NN query (one index path, one leaf)."""
        self._require_built()
        if not self.supports_approximate:
            raise NotImplementedError(f"{self.name} does not support approximate search")
        before = self.store.counter_snapshot()
        stats = QueryStats(dataset_size=self.store.count)
        start = time.perf_counter()
        answers = self._knn_approximate(
            np.asarray(query.series, dtype=np.float64), query.k, stats
        )
        stats.cpu_seconds = time.perf_counter() - start
        delta = self.store.since(before)
        stats.random_accesses += delta.random_accesses
        stats.sequential_pages += delta.sequential_pages
        stats.bytes_read += delta.bytes_read
        stats.physical_bytes_read += delta.physical_bytes_read
        neighbors = answers.neighbors()
        if neighbors:
            stats.answer_distance = neighbors[0].distance
        return SearchResult(neighbors, stats)

    def range_exact(self, query: RangeQuery) -> RangeSearchResult:
        """Answer an exact r-range query (Definition 2 in the paper).

        The default implementation seeds the pruning threshold with the query
        radius and reuses the method's exact machinery indirectly: every method
        overrides :meth:`_range_exact` where a better-than-scan strategy
        exists; the base fallback is a full sequential scan, which is always
        correct.
        """
        self._require_built()
        before = self.store.counter_snapshot()
        stats = QueryStats(dataset_size=self.store.count)
        start = time.perf_counter()
        answers = self._range_exact(
            np.asarray(query.series, dtype=np.float64), float(query.radius), stats
        )
        stats.cpu_seconds = time.perf_counter() - start
        delta = self.store.since(before)
        stats.random_accesses += delta.random_accesses
        stats.sequential_pages += delta.sequential_pages
        stats.bytes_read += delta.bytes_read
        stats.physical_bytes_read += delta.physical_bytes_read
        return RangeSearchResult(answers, stats)

    @abc.abstractmethod
    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        """Method-specific exact search."""

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        raise NotImplementedError

    def _range_exact(
        self, query: np.ndarray, radius: float, stats: QueryStats
    ) -> RangeAnswerSet:
        """Fallback r-range search: a full scan of the raw data (always exact)."""
        answers = RangeAnswerSet(radius=radius)
        data = self.store.scan()
        stats.series_examined += self.store.count
        distances = squared_euclidean_batch(query, data)
        answers.offer_batch(np.arange(self.store.count), distances)
        return answers

    # -- description ---------------------------------------------------------------
    def describe(self) -> dict:
        """A small dict describing the method configuration (for reports)."""
        return {"name": self.name, "is_index": self.is_index}
