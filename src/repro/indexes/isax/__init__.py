"""iSAX-family index structures (iSAX2+)."""

from .index import Isax2PlusIndex
from .node import IsaxNode

__all__ = ["Isax2PlusIndex", "IsaxNode"]
