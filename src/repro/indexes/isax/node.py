"""Nodes of the iSAX-family indexes (iSAX2+ and ADS+)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core.soa import GrowableArray, position_vector
from ...summarization.sax import SaxWord

__all__ = ["IsaxNode"]


@dataclass
class IsaxNode:
    """One node of an iSAX tree.

    A node is identified by its :class:`SaxWord` (per-segment symbols at
    per-segment cardinalities).  Leaves hold the positions of the series they
    contain along with the PAA values needed to re-split.  Both payloads are
    stored structure-of-arrays style in contiguous
    :class:`~repro.core.soa.GrowableArray` buffers, so a leaf scan hands the
    store one ready-made integer vector and a split re-symbolizes one matrix
    column instead of looping over per-series arrays.
    """

    word: SaxWord | None
    depth: int = 0
    is_leaf: bool = True
    #: positions of the series stored in this leaf (empty for internal nodes).
    positions: GrowableArray = field(default_factory=position_vector)
    #: PAA rows of those series (kept so splits can re-symbolize); created
    #: lazily on the first add because the segment count is not known here.
    paa_values: GrowableArray | None = None
    #: children keyed by their word symbols tuple.
    children: dict = field(default_factory=dict)
    #: the segment whose cardinality was doubled to create this node's children.
    split_segment: int | None = None
    parent: "IsaxNode | None" = None
    #: cached (children, symbols, cardinalities) matrices for the batch MINDIST
    #: kernel; rebuilt lazily whenever the child set grows (children are only
    #: ever appended, never removed, so the count is a sufficient cache key).
    _child_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        return len(self.positions)

    def child_arrays(self) -> tuple:
        """The node's children plus their stacked iSAX word matrices.

        Returns ``(children, symbols, cardinalities)`` where ``children`` is a
        stable list of the child nodes and the two ``(children, segments)``
        integer matrices are the array-native summary a query scores in one
        :meth:`~repro.summarization.sax.IsaxSummarizer.mindist_paa_to_words_batch`
        call.  Built once per child set and cached on the node.
        """
        from ...summarization.sax import stack_words

        cache = self._child_cache
        if cache is None or len(cache[0]) != len(self.children):
            children = list(self.children.values())
            symbols, cardinalities = stack_words([c.word for c in children])
            cache = (children, symbols, cardinalities)
            self._child_cache = cache
        return cache

    # -- payload ------------------------------------------------------------------
    def position_block(self) -> np.ndarray:
        """The leaf's positions as one contiguous int64 vector (read-only)."""
        return self.positions.data

    def paa_block(self) -> np.ndarray:
        """The leaf's PAA rows as one contiguous ``(size, segments)`` matrix."""
        if self.paa_values is None:
            return np.empty((0, 0), dtype=np.float64)
        return self.paa_values.data

    def add(self, position: int, paa: np.ndarray) -> None:
        if self.paa_values is None:
            self.paa_values = GrowableArray(width=len(paa))
        self.positions.append(position)
        self.paa_values.append(paa)

    def add_block(self, positions: np.ndarray, paa_block: np.ndarray) -> None:
        """Adopt a whole block of series in two contiguous array copies."""
        if len(positions) == 0:
            return
        if self.paa_values is None:
            self.paa_values = GrowableArray(width=paa_block.shape[1])
        self.positions.extend(positions)
        self.paa_values.extend(paa_block)

    def clear_payload(self) -> None:
        self.positions.clear()
        self.paa_values = None

    def iter_nodes(self):
        """Pre-order traversal of the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def leaves(self):
        return [node for node in self.iter_nodes() if node.is_leaf]
