"""Nodes of the iSAX-family indexes (iSAX2+ and ADS+)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...summarization.sax import SaxWord

__all__ = ["IsaxNode"]


@dataclass
class IsaxNode:
    """One node of an iSAX tree.

    A node is identified by its :class:`SaxWord` (per-segment symbols at
    per-segment cardinalities).  Leaves hold the positions of the series they
    contain along with the PAA values needed to re-split.
    """

    word: SaxWord | None
    depth: int = 0
    is_leaf: bool = True
    #: positions of the series stored in this leaf (empty for internal nodes).
    positions: list[int] = field(default_factory=list)
    #: PAA values of those series (kept so splits can re-symbolize).
    paa_values: list[np.ndarray] = field(default_factory=list)
    #: children keyed by their word symbols tuple.
    children: dict = field(default_factory=dict)
    #: the segment whose cardinality was doubled to create this node's children.
    split_segment: int | None = None
    parent: "IsaxNode | None" = None
    #: cached (children, symbols, cardinalities) matrices for the batch MINDIST
    #: kernel; rebuilt lazily whenever the child set grows (children are only
    #: ever appended, never removed, so the count is a sufficient cache key).
    _child_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        return len(self.positions)

    def child_arrays(self) -> tuple:
        """The node's children plus their stacked iSAX word matrices.

        Returns ``(children, symbols, cardinalities)`` where ``children`` is a
        stable list of the child nodes and the two ``(children, segments)``
        integer matrices are the array-native summary a query scores in one
        :meth:`~repro.summarization.sax.IsaxSummarizer.mindist_paa_to_words_batch`
        call.  Built once per child set and cached on the node.
        """
        from ...summarization.sax import stack_words

        cache = self._child_cache
        if cache is None or len(cache[0]) != len(self.children):
            children = list(self.children.values())
            symbols, cardinalities = stack_words([c.word for c in children])
            cache = (children, symbols, cardinalities)
            self._child_cache = cache
        return cache

    def add(self, position: int, paa: np.ndarray) -> None:
        self.positions.append(position)
        self.paa_values.append(paa)

    def clear_payload(self) -> None:
        self.positions = []
        self.paa_values = []

    def iter_nodes(self):
        """Pre-order traversal of the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def leaves(self):
        return [node for node in self.iter_nodes() if node.is_leaf]
