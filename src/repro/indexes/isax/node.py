"""Nodes of the iSAX-family indexes (iSAX2+ and ADS+)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...summarization.sax import SaxWord

__all__ = ["IsaxNode"]


@dataclass
class IsaxNode:
    """One node of an iSAX tree.

    A node is identified by its :class:`SaxWord` (per-segment symbols at
    per-segment cardinalities).  Leaves hold the positions of the series they
    contain along with the PAA values needed to re-split.
    """

    word: SaxWord | None
    depth: int = 0
    is_leaf: bool = True
    #: positions of the series stored in this leaf (empty for internal nodes).
    positions: list[int] = field(default_factory=list)
    #: PAA values of those series (kept so splits can re-symbolize).
    paa_values: list[np.ndarray] = field(default_factory=list)
    #: children keyed by their word symbols tuple.
    children: dict = field(default_factory=dict)
    #: the segment whose cardinality was doubled to create this node's children.
    split_segment: int | None = None
    parent: "IsaxNode | None" = None

    @property
    def size(self) -> int:
        return len(self.positions)

    def add(self, position: int, paa: np.ndarray) -> None:
        self.positions.append(position)
        self.paa_values.append(paa)

    def clear_payload(self) -> None:
        self.positions = []
        self.paa_values = []

    def iter_nodes(self):
        """Pre-order traversal of the subtree rooted at this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def leaves(self):
        return [node for node in self.iter_nodes() if node.is_leaf]
