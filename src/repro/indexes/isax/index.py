"""iSAX2+ index: bulk-loaded iSAX tree with exact and ng-approximate search.

The index partitions the collection by iSAX words.  The root fans out on the
word at base cardinality (2 symbols per segment); when a leaf overflows, one
segment's cardinality is doubled and the leaf's series are redistributed among
the two resulting children (binary splits, as in iSAX 2.0/2+).  Construction
is bulk-loaded by default, mirroring iSAX2+'s defining contribution: all SAX
words are computed in one batch transform, positions are partitioned per root
word with one ``np.lexsort``, and overflowing leaves re-symbolize only the
split segment at doubled cardinality over whole position blocks — no per-series
Python inserts.  The per-series ``_insert`` path is retained (``append``) for
series added after the initial load.  Query answering follows the protocol in
the paper: an ng-approximate descent to a single leaf establishes the
best-so-far, after which an exact traversal visits only the nodes whose
MINDIST lower bound is below the best-so-far.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ...core.answers import KnnAnswerSet, RangeAnswerSet
from ...core.buffer import BufferPool
from ...core.distance import squared_euclidean_batch
from ...core.soa import group_values
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ...summarization.sax import (
    IsaxSummarizer,
    SaxWord,
    group_root_words,
    summarize_stream,
    symbolize_batch,
)
from ..base import SearchMethod
from .node import IsaxNode

__all__ = ["Isax2PlusIndex"]


class Isax2PlusIndex(SearchMethod):
    """iSAX2+ index over a series store.

    Parameters
    ----------
    store:
        The raw-data store.
    segments:
        Number of PAA segments / word length (16 in the paper).
    cardinality:
        Maximum per-segment cardinality (256 in the paper).
    leaf_capacity:
        Maximum number of series per leaf (the paper's tuned value for the
        100GB datasets is 100k; scale it with the dataset).
    buffer_capacity:
        Optional in-memory buffer budget (in series) used during construction;
        exceeding it triggers simulated spills.
    build_mode:
        ``"bulk"`` (default) partitions the whole collection with array
        operations; ``"incremental"`` forces the legacy one-series-at-a-time
        insert loop (the two produce query-equivalent trees).
    build_chunk_rows:
        Rows per streamed summarization chunk during construction (``None`` =
        the store's default).  The chunk size never changes the built tree —
        only how much raw data is resident at once.
    """

    name = "isax2+"
    supports_approximate = True
    supports_bulk_build = True

    def __init__(
        self,
        store: SeriesStore,
        segments: int = 16,
        cardinality: int = 256,
        leaf_capacity: int = 100,
        buffer_capacity: int | None = None,
        build_mode: str = "bulk",
        build_chunk_rows: int | None = None,
    ) -> None:
        super().__init__(store, build_mode=build_mode, build_chunk_rows=build_chunk_rows)
        if leaf_capacity <= 0:
            raise ValueError("leaf_capacity must be positive")
        segments = min(segments, store.length)
        self.summarizer = IsaxSummarizer(store.length, segments, cardinality)
        self.segments = segments
        self.cardinality = cardinality
        self.leaf_capacity = leaf_capacity
        self.buffer_capacity = buffer_capacity
        self.root = IsaxNode(word=None, depth=0, is_leaf=False)
        self._buffer: BufferPool | None = None

    # -- construction -------------------------------------------------------------
    def _make_buffer(self) -> BufferPool:
        return BufferPool(
            capacity_series=self.buffer_capacity,
            series_bytes=self.store.series_bytes,
            counter=self.store.counter,
            page_series=self.store.series_per_page,
        )

    def _prepare_build(self) -> np.ndarray:
        # One streamed sequential pass (accounted exactly like a scan()): only
        # one raw chunk is resident at a time, and the build keeps the compact
        # (count, segments) PAA matrix instead of the float64 collection.
        paa = summarize_stream(
            self.summarizer,
            self.store.scan_blocks(chunk_rows=self.build_chunk_rows),
            self.store.count,
        )
        self._buffer = self._make_buffer()
        return paa

    def _incremental_build(self) -> None:
        paa = self._prepare_build()
        for position in range(self.store.count):
            self._insert(position, paa[position])
        self._buffer.flush_all()

    def _bulk_build(self) -> None:
        """Array-native construction: batch summarize, partition, recurse.

        All root words (cardinality 2 per segment) come from one vectorized
        symbolization; ``group_root_words`` sorts the bit-packed word keys
        once to hand each root child its whole position block, and overflowing
        leaves are then split recursively with the same slice-and-mask
        machinery the incremental path uses — no per-series Python routing
        anywhere.
        """
        paa = self._prepare_build()
        positions = np.arange(self.store.count, dtype=np.int64)
        base_cards = tuple([2] * self.segments)
        for key, idx in group_root_words(paa):
            word = SaxWord(symbols=key, cardinalities=base_cards)
            child = IsaxNode(word=word, depth=1, is_leaf=True, parent=self.root)
            self.root.children[key] = child
            child.add_block(positions[idx], paa[idx])
            self._buffer.add(id(child), child.size)
            if child.size > self.leaf_capacity:
                self._split_leaf(child)
        self._buffer.flush_all()

    def _root_key(self, paa: np.ndarray) -> tuple:
        word = self.summarizer.word_from_paa(paa, tuple([2] * self.segments))
        return word.symbols

    def _insert(self, position: int, paa: np.ndarray) -> None:
        key = self._root_key(paa)
        child = self.root.children.get(key)
        if child is None:
            word = SaxWord(symbols=key, cardinalities=tuple([2] * self.segments))
            child = IsaxNode(word=word, depth=1, is_leaf=True, parent=self.root)
            self.root.children[key] = child
        node = child
        while not node.is_leaf:
            node = self._route(node, paa)
        node.add(position, paa)
        self._buffer.add(id(node))
        if node.size > self.leaf_capacity:
            self._split_leaf(node)

    def append(self, position: int) -> None:
        """Insert one more series from the store into the built index.

        This is the retained incremental path: bulk loading covers the initial
        collection, appends go through the same per-series routing/splitting
        machinery and produce a query-equivalent tree.
        """
        self._require_built()
        if self._buffer is None or self._buffer.counter is not self.store.counter:
            # Rebuild the pool when the store was re-attached (persistence
            # reload, grown collection) so spill I/O lands on the live counter.
            self._buffer = self._make_buffer()
        series = np.asarray(self.store.peek(position), dtype=np.float64)
        self._insert(position, self.summarizer.paa.transform(series))
        # Appends settle immediately: unlike a build there is no later
        # flush_all, so leaving the series buffered would accumulate phantom
        # in-memory state (and eventually spurious spill accounting).
        self._buffer.flush_all()

    def extend(self, start: int, stop: int | None = None) -> int:
        """Bulk-insert rows ``[start, stop)``: batch-summarize, then insert.

        The live-ingest fast path: each block's PAA matrix comes from one
        vectorized ``transform_batch`` call (the same summarizer the streamed
        build uses) instead of a per-series ``transform``, and the buffer
        pool flushes once per extend rather than once per row.  The resulting
        tree is query-equivalent to appending the rows one at a time.
        """
        self._require_built()
        start = int(start)
        stop = self.store.count if stop is None else int(stop)
        if not (0 <= start <= stop <= self.store.count):
            raise ValueError(
                f"extend range [{start}, {stop}) out of bounds for "
                f"{self.store.count} rows"
            )
        if self._buffer is None or self._buffer.counter is not self.store.counter:
            self._buffer = self._make_buffer()
        # build_chunk_rows=None means "store default" for scans; here any
        # RSS-bounded block size works, so fall back to a few thousand rows.
        chunk_rows = self.build_chunk_rows or 4096
        for block_start in range(start, stop, chunk_rows):
            block_stop = min(stop, block_start + chunk_rows)
            block = np.asarray(
                self.store.peek(slice(block_start, block_stop)), dtype=np.float64
            )
            paa = self.summarizer.paa.transform_batch(block)
            for offset in range(block.shape[0]):
                self._insert(block_start + offset, paa[offset])
        self._buffer.flush_all()
        return stop - start

    def _route(self, node: IsaxNode, paa: np.ndarray) -> IsaxNode:
        """Choose the child of an internal node for a series with PAA ``paa``."""
        segment = node.split_segment
        word = node.word.promote(segment, float(paa[segment]))
        key = word.symbols
        child = node.children.get(key)
        if child is None:
            # The child words of a binary split are fixed; pick the closer one
            # by scoring every child in one batch MINDIST call.
            children, symbols, cardinalities = node.child_arrays()
            bounds = self.summarizer.mindist_paa_to_words_batch(
                paa, symbols, cardinalities
            )
            return children[int(np.argmin(bounds))]
        return child

    def _choose_split_segment(self, node: IsaxNode) -> int | None:
        """Pick the segment to promote: the one with the highest PAA spread that
        can still be refined (cardinality below the maximum)."""
        spread = node.paa_block().std(axis=0)
        order = np.argsort(-spread)
        for segment in order:
            if node.word.cardinalities[int(segment)] < self.cardinality:
                return int(segment)
        return None

    def _split_leaf(self, node: IsaxNode) -> None:
        """Split an overflowing leaf by promoting one segment.

        Works on the leaf's whole payload block: one vectorized symbolization
        of the split-segment column at doubled cardinality, one stable argsort
        to group positions per child word, then contiguous block adoption per
        child.  Both the bulk loader and the incremental insert path funnel
        their splits through here.
        """
        segment = self._choose_split_segment(node)
        if segment is None:
            # Maximum resolution reached on every segment; the leaf overflows.
            return
        positions = node.position_block()
        paa = node.paa_block()
        node.is_leaf = False
        node.split_segment = segment
        node.clear_payload()
        self._buffer.flush(id(node))

        card = node.word.cardinalities[segment] * 2
        symbols = symbolize_batch(paa[:, segment], card)
        base_symbols = list(node.word.symbols)
        cards = list(node.word.cardinalities)
        cards[segment] = card
        cardinalities = tuple(cards)
        for symbol, idx in group_values(symbols):
            child_symbols = base_symbols.copy()
            child_symbols[segment] = int(symbol)
            word = SaxWord(symbols=tuple(child_symbols), cardinalities=cardinalities)
            key = word.symbols
            child = node.children.get(key)
            if child is None:
                child = IsaxNode(
                    word=word, depth=node.depth + 1, is_leaf=True, parent=node
                )
                node.children[key] = child
            child.add_block(positions[idx], paa[idx])
            self._buffer.add(id(child), int(idx.size))
        for child in node.children.values():
            if child.size > self.leaf_capacity:
                self._split_leaf(child)

    def _collect_footprint(self) -> None:
        leaves = []
        total = 1  # count the root
        for child in self.root.children.values():
            for node in child.iter_nodes():
                total += 1
                if node.is_leaf:
                    leaves.append(node)
        self.index_stats.total_nodes = total
        self.index_stats.leaf_nodes = len(leaves)
        self.index_stats.leaf_fill_factors = [
            leaf.size / self.leaf_capacity for leaf in leaves
        ]
        self.index_stats.leaf_depths = [leaf.depth for leaf in leaves]
        # summaries kept per series: one PAA vector + symbols per segment
        per_series = self.segments * (8 + 2)
        self.index_stats.memory_bytes = self.store.count * per_series + total * 64
        self.index_stats.disk_bytes = self.store.count * self.store.series_bytes

    # -- search ----------------------------------------------------------------------
    def _leaf_for(self, paa: np.ndarray) -> IsaxNode | None:
        key = self._root_key(paa)
        node = self.root.children.get(key)
        if node is None:
            # No exact root child: fall back to the closest root child.
            if not self.root.children:
                return None
            children, symbols, cardinalities = self.root.child_arrays()
            bounds = self.summarizer.mindist_paa_to_words_batch(
                paa, symbols, cardinalities
            )
            node = children[int(np.argmin(bounds))]
        while not node.is_leaf:
            node = self._route(node, paa)
        return node

    def _scan_leaf(
        self, node: IsaxNode, query: np.ndarray, answers: KnnAnswerSet, stats: QueryStats
    ) -> None:
        if node.size == 0:
            return
        positions = node.position_block()
        block = self.store.read_block(positions)
        distances = squared_euclidean_batch(query, block)
        answers.offer_batch(positions, distances)
        stats.series_examined += node.size
        stats.leaves_visited += 1
        stats.nodes_visited += 1

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        answers = KnnAnswerSet(k)
        paa = self.summarizer.paa.transform(query)
        leaf = self._leaf_for(paa)
        if leaf is not None:
            self._scan_leaf(leaf, query, answers, stats)
        return answers

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        paa = self.summarizer.paa.transform(query)
        # Step 1: ng-approximate descent for the initial best-so-far.
        answers = self._make_answer_set(k)
        start_leaf = self._leaf_for(paa)
        if start_leaf is not None:
            self._scan_leaf(start_leaf, query, answers, stats)

        # Step 2: bounded best-first traversal ordered by MINDIST.  All
        # children of a node are scored in one array-native batch call against
        # the node's cached word matrices.
        counter = itertools.count()
        heap: list[tuple[float, int, IsaxNode]] = []

        def push_children(parent: IsaxNode, prune: bool) -> None:
            if not parent.children:
                return
            children, symbols, cardinalities = parent.child_arrays()
            bounds = self.summarizer.mindist_paa_to_words_batch(
                paa, symbols, cardinalities
            )
            stats.lower_bounds_computed += len(children)
            threshold = answers.worst_squared_distance
            for child, child_bound in zip(children, bounds):
                # Strict >: a node whose bound ties the k-th distance may still
                # hold an equal-distance answer that wins the positional
                # tie-break, so equality must not prune.
                if prune and child_bound * child_bound > threshold:
                    continue
                heapq.heappush(heap, (float(child_bound), next(counter), child))

        push_children(self.root, prune=False)
        while heap:
            bound, _, node = heapq.heappop(heap)
            if bound * bound > answers.worst_squared_distance:
                break
            stats.nodes_visited += 1
            if node.is_leaf:
                if node is start_leaf:
                    continue
                self._scan_leaf(node, query, answers, stats)
                continue
            push_children(node, prune=True)
        return answers

    def _range_exact(
        self, query: np.ndarray, radius: float, stats: QueryStats
    ) -> RangeAnswerSet:
        """r-range query: visit every node whose MINDIST is within the radius."""
        answers = RangeAnswerSet(radius=radius)
        paa = self.summarizer.paa.transform(query)

        def in_range_children(parent: IsaxNode) -> list[IsaxNode]:
            if not parent.children:
                return []
            children, symbols, cardinalities = parent.child_arrays()
            bounds = self.summarizer.mindist_paa_to_words_batch(
                paa, symbols, cardinalities
            )
            stats.lower_bounds_computed += len(children)
            return [c for c, b in zip(children, bounds) if b <= radius]

        stack = in_range_children(self.root)
        while stack:
            node = stack.pop()
            stats.nodes_visited += 1
            if node.is_leaf:
                if node.size == 0:
                    continue
                positions = node.position_block()
                block = self.store.read_block(positions)
                distances = squared_euclidean_batch(query, block)
                stats.series_examined += node.size
                stats.leaves_visited += 1
                answers.offer_batch(positions, distances)
                continue
            stack.extend(in_range_children(node))
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            segments=self.segments,
            cardinality=self.cardinality,
            leaf_capacity=self.leaf_capacity,
            build_mode=self.build_mode,
        )
        return info
