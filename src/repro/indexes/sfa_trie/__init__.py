"""SFA trie index."""

from .index import SfaTrieIndex, SfaTrieNode

__all__ = ["SfaTrieIndex", "SfaTrieNode"]
