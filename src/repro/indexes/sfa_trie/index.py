"""SFA trie: a prefix trie over Symbolic Fourier Approximation words.

Series are summarized with SFA (DFT coefficients discretized with per-
coefficient breakpoints).  The trie groups series by word prefix: the root's
children branch on the first symbol, and when a leaf overflows, its series are
redistributed one level deeper — i.e. the word is extended by one more DFT
coefficient, which is the "vertical" splitting style the paper contrasts with
SAX-based horizontal splits.  The lower bound used for pruning is the SFA cell
distance restricted to the prefix available at a node.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ...core.answers import KnnAnswerSet
from ...core.distance import squared_euclidean_batch
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ...summarization.sfa import SfaSummarizer
from ..base import SearchMethod

__all__ = ["SfaTrieIndex", "SfaTrieNode"]


@dataclass
class SfaTrieNode:
    """Node of the SFA trie identified by a word prefix."""

    prefix: tuple
    depth: int
    is_leaf: bool = True
    positions: list[int] = field(default_factory=list)
    children: dict = field(default_factory=dict)
    #: cached (children, prefix matrix) for the batch prefix bound; children
    #: are append-only, so the count is a sufficient cache key.
    _child_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        return len(self.positions)

    def child_arrays(self) -> tuple:
        """The node's children plus their stacked prefix matrix.

        All children of a trie node share one prefix length (``depth + 1``),
        so their symbol prefixes stack into a ``(children, depth + 1)`` matrix
        scored in a single
        :meth:`~repro.summarization.sfa.SfaSummarizer.prefix_lower_bound_batch`
        call.  Built once per child set and cached on the node.
        """
        cache = self._child_cache
        if cache is None or len(cache[0]) != len(self.children):
            children = list(self.children.values())
            prefixes = np.array([c.prefix for c in children], dtype=np.int64)
            cache = (children, prefixes)
            self._child_cache = cache
        return cache

    def iter_nodes(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def leaves(self):
        return [node for node in self.iter_nodes() if node.is_leaf]


class SfaTrieIndex(SearchMethod):
    """SFA trie index.

    Parameters
    ----------
    store:
        The raw-data store.
    coefficients:
        Maximum word length / number of DFT values (16 in the paper).
    alphabet_size:
        Symbols per coefficient (the paper's tuned value is 8).
    binning:
        ``"equi-depth"`` or ``"equi-width"`` MCB binning.
    leaf_capacity:
        Maximum series per leaf before splitting one level deeper (the paper's
        tuned value is large — 1M at 100GB scale — which is why SFA leaves are
        few and its pruning ratio is comparatively low).
    sample_size:
        Number of series sampled to learn the MCB breakpoints.
    """

    name = "sfa-trie"
    supports_approximate = True

    def __init__(
        self,
        store: SeriesStore,
        coefficients: int = 16,
        alphabet_size: int = 8,
        binning: str = "equi-depth",
        leaf_capacity: int = 1000,
        sample_size: int = 2048,
    ) -> None:
        super().__init__(store)
        if leaf_capacity <= 0:
            raise ValueError("leaf_capacity must be positive")
        coefficients = min(coefficients, store.length)
        self.summarizer = SfaSummarizer(
            store.length, coefficients, alphabet_size, binning
        )
        self.coefficients = coefficients
        self.alphabet_size = alphabet_size
        self.leaf_capacity = leaf_capacity
        self.sample_size = sample_size
        self.root = SfaTrieNode(prefix=(), depth=0, is_leaf=False)
        self._words: np.ndarray | None = None

    # -- construction ----------------------------------------------------------------
    def _build(self) -> None:
        data = self.store.scan()
        sample_count = min(self.sample_size, self.store.count)
        self.summarizer.fit(data[:sample_count])
        self._words = self.summarizer.transform_batch(data)
        for position in range(self.store.count):
            self._insert(position, self._words[position])

    def _insert(self, position: int, word: np.ndarray) -> None:
        key = (int(word[0]),)
        child = self.root.children.get(key)
        if child is None:
            child = SfaTrieNode(prefix=key, depth=1, is_leaf=True)
            self.root.children[key] = child
        node = child
        while not node.is_leaf:
            node = self._route(node, word)
        node.positions.append(position)
        if node.size > self.leaf_capacity and node.depth < self.coefficients:
            self._split_leaf(node)

    def _route(self, node: SfaTrieNode, word: np.ndarray) -> SfaTrieNode:
        key = node.prefix + (int(word[node.depth]),)
        child = node.children.get(key)
        if child is None:
            child = SfaTrieNode(prefix=key, depth=node.depth + 1, is_leaf=True)
            node.children[key] = child
        return child

    def _split_leaf(self, node: SfaTrieNode) -> None:
        node.is_leaf = False
        positions = node.positions
        node.positions = []
        for position in positions:
            word = self._words[position]
            child = self._route(node, word)
            child.positions.append(position)
        for child in node.children.values():
            if child.size > self.leaf_capacity and child.depth < self.coefficients:
                self._split_leaf(child)

    def _collect_footprint(self) -> None:
        leaves = []
        total = 1
        for child in self.root.children.values():
            for node in child.iter_nodes():
                total += 1
                if node.is_leaf:
                    leaves.append(node)
        self.index_stats.total_nodes = total
        self.index_stats.leaf_nodes = len(leaves)
        self.index_stats.leaf_fill_factors = [
            leaf.size / self.leaf_capacity for leaf in leaves
        ]
        self.index_stats.leaf_depths = [leaf.depth for leaf in leaves]
        self.index_stats.memory_bytes = (
            self.store.count * self.coefficients + total * 48
        )
        self.index_stats.disk_bytes = self.store.count * self.store.series_bytes

    # -- lower bounds -------------------------------------------------------------------
    def _prefix_lower_bound(self, query_dft: np.ndarray, node: SfaTrieNode) -> float:
        """SFA cell lower bound restricted to the node's prefix coefficients."""
        total = 0.0
        weights = self.summarizer.dft._weights
        for j, symbol in enumerate(node.prefix):
            low, high = self.summarizer.cell_bounds(int(symbol), j)
            value = query_dft[j]
            if value < low:
                gap = low - value
            elif value > high:
                gap = value - high
            else:
                gap = 0.0
            total += weights[j] * gap * gap
        return float(np.sqrt(total))

    # -- search ----------------------------------------------------------------------------
    def _leaf_for(self, word: np.ndarray) -> SfaTrieNode | None:
        key = (int(word[0]),)
        node = self.root.children.get(key)
        if node is None:
            if not self.root.children:
                return None
            node = next(iter(self.root.children.values()))
        while not node.is_leaf:
            key = node.prefix + (int(word[node.depth]),)
            child = node.children.get(key)
            if child is None:
                child = max(node.children.values(), key=lambda c: c.size)
            node = child
        return node

    def _scan_leaf(
        self,
        node: SfaTrieNode,
        query: np.ndarray,
        answers: KnnAnswerSet,
        stats: QueryStats,
    ) -> None:
        if not node.positions:
            return
        block = self.store.read_block(np.asarray(node.positions))
        distances = squared_euclidean_batch(query, block)
        answers.offer_batch(np.asarray(node.positions), distances)
        stats.series_examined += len(node.positions)
        stats.leaves_visited += 1
        stats.nodes_visited += 1

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        answers = KnnAnswerSet(k)
        word = self.summarizer.transform(query)
        leaf = self._leaf_for(word)
        if leaf is not None:
            self._scan_leaf(leaf, query, answers, stats)
        return answers

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = KnnAnswerSet(k)
        word = self.summarizer.transform(query)
        query_dft = self.summarizer.dft_of(query)
        start_leaf = self._leaf_for(word)
        if start_leaf is not None:
            self._scan_leaf(start_leaf, query, answers, stats)

        counter = itertools.count()
        heap: list[tuple[float, int, SfaTrieNode]] = []

        def push_children(parent: SfaTrieNode, prune: bool) -> None:
            if not parent.children:
                return
            children, prefixes = parent.child_arrays()
            bounds = self.summarizer.prefix_lower_bound_batch(query_dft, prefixes)
            stats.lower_bounds_computed += len(children)
            threshold = answers.worst_squared_distance
            for child, child_bound in zip(children, bounds):
                if prune and child_bound * child_bound >= threshold:
                    continue
                heapq.heappush(heap, (float(child_bound), next(counter), child))

        push_children(self.root, prune=False)
        while heap:
            bound, _, node = heapq.heappop(heap)
            if bound * bound >= answers.worst_squared_distance:
                break
            stats.nodes_visited += 1
            if node.is_leaf:
                if node is start_leaf:
                    continue
                self._scan_leaf(node, query, answers, stats)
                continue
            push_children(node, prune=True)
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            coefficients=self.coefficients,
            alphabet_size=self.alphabet_size,
            binning=self.summarizer.binning,
            leaf_capacity=self.leaf_capacity,
        )
        return info
