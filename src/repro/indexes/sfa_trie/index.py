"""SFA trie: a prefix trie over Symbolic Fourier Approximation words.

Series are summarized with SFA (DFT coefficients discretized with per-
coefficient breakpoints).  The trie groups series by word prefix: the root's
children branch on the first symbol, and when a leaf overflows, its series are
redistributed one level deeper — i.e. the word is extended by one more DFT
coefficient, which is the "vertical" splitting style the paper contrasts with
SAX-based horizontal splits.  Construction is bulk-loaded by default: the
batch-transformed word matrix is radix-grouped by prefix (one lexsort, then
contiguous runs per trie level), so the per-series insert loop never runs; the
incremental path is retained (``append``) for series added after the initial
load.  The lower bound used for pruning is the SFA cell distance restricted to
the prefix available at a node.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ...core.answers import KnnAnswerSet
from ...core.distance import squared_euclidean_batch
from ...core.soa import GrowableArray, group_values, position_vector
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ...summarization.sfa import (
    SfaSummarizer,
    lexicographic_order,
    prefix_groups,
    words_stream,
)
from ..base import SearchMethod

__all__ = ["SfaTrieIndex", "SfaTrieNode"]


@dataclass
class SfaTrieNode:
    """Node of the SFA trie identified by a word prefix."""

    prefix: tuple
    depth: int
    is_leaf: bool = True
    #: positions of the series in this leaf, stored as one contiguous vector.
    positions: GrowableArray = field(default_factory=position_vector)
    children: dict = field(default_factory=dict)
    #: cached (children, prefix matrix) for the batch prefix bound; children
    #: are append-only, so the count is a sufficient cache key.
    _child_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        return len(self.positions)

    def position_block(self) -> np.ndarray:
        """The leaf's positions as one contiguous int64 vector (read-only)."""
        return np.asarray(self.positions, dtype=np.int64)

    def clear_payload(self) -> None:
        self.positions.clear()

    def child_arrays(self) -> tuple:
        """The node's children plus their stacked prefix matrix.

        All children of a trie node share one prefix length (``depth + 1``),
        so their symbol prefixes stack into a ``(children, depth + 1)`` matrix
        scored in a single
        :meth:`~repro.summarization.sfa.SfaSummarizer.prefix_lower_bound_batch`
        call.  Built once per child set and cached on the node.
        """
        cache = self._child_cache
        if cache is None or len(cache[0]) != len(self.children):
            children = list(self.children.values())
            prefixes = np.array([c.prefix for c in children], dtype=np.int64)
            cache = (children, prefixes)
            self._child_cache = cache
        return cache

    def iter_nodes(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def leaves(self):
        return [node for node in self.iter_nodes() if node.is_leaf]


class SfaTrieIndex(SearchMethod):
    """SFA trie index.

    Parameters
    ----------
    store:
        The raw-data store.
    coefficients:
        Maximum word length / number of DFT values (16 in the paper).
    alphabet_size:
        Symbols per coefficient (the paper's tuned value is 8).
    binning:
        ``"equi-depth"`` or ``"equi-width"`` MCB binning.
    leaf_capacity:
        Maximum series per leaf before splitting one level deeper (the paper's
        tuned value is large — 1M at 100GB scale — which is why SFA leaves are
        few and its pruning ratio is comparatively low).
    sample_size:
        Number of series sampled to learn the MCB breakpoints.
    build_mode:
        ``"bulk"`` (default) radix-groups the word matrix per prefix level;
        ``"incremental"`` forces the per-series insert loop (the two produce
        identical tries).
    build_chunk_rows:
        Rows per streamed summarization chunk during construction (``None`` =
        the store's default); never changes the built trie.
    """

    name = "sfa-trie"
    supports_approximate = True
    supports_bulk_build = True

    def __init__(
        self,
        store: SeriesStore,
        coefficients: int = 16,
        alphabet_size: int = 8,
        binning: str = "equi-depth",
        leaf_capacity: int = 1000,
        sample_size: int = 2048,
        build_mode: str = "bulk",
        build_chunk_rows: int | None = None,
    ) -> None:
        super().__init__(store, build_mode=build_mode, build_chunk_rows=build_chunk_rows)
        if leaf_capacity <= 0:
            raise ValueError("leaf_capacity must be positive")
        coefficients = min(coefficients, store.length)
        self.summarizer = SfaSummarizer(
            store.length, coefficients, alphabet_size, binning
        )
        self.coefficients = coefficients
        self.alphabet_size = alphabet_size
        self.leaf_capacity = leaf_capacity
        self.sample_size = sample_size
        self.root = SfaTrieNode(prefix=(), depth=0, is_leaf=False)
        self._words: np.ndarray | None = None

    # -- construction ----------------------------------------------------------------
    def _summarize_collection(self) -> None:
        # The MCB breakpoints must exist before the first chunk can be
        # symbolized, so the (small) sample is read ahead through the
        # unaccounted peek — the historical path reused the already-scanned
        # array here, so the counters stay identical: one scan per build.
        sample_count = min(self.sample_size, self.store.count)
        self.summarizer.fit(np.asarray(self.store.peek(slice(0, sample_count))))
        self._words = words_stream(
            self.summarizer,
            self.store.scan_blocks(chunk_rows=self.build_chunk_rows),
            self.store.count,
        )

    def _incremental_build(self) -> None:
        self._summarize_collection()
        for position in range(self.store.count):
            self._insert(position, self._words[position])

    def _bulk_build(self) -> None:
        """Array-native construction: radix-group the word matrix by prefix.

        One lexsort orders every word; each trie level then partitions its
        (already sorted) run on the next symbol column via contiguous group
        boundaries, descending only where a run exceeds the leaf capacity.
        """
        self._summarize_collection()
        order = lexicographic_order(self._words)
        self._radix_fill(self.root, order)

    def _radix_fill(self, node: SfaTrieNode, order: np.ndarray) -> None:
        for symbol, sub_order in prefix_groups(self._words, order, node.depth):
            key = node.prefix + (symbol,)
            child = SfaTrieNode(prefix=key, depth=node.depth + 1, is_leaf=True)
            node.children[key] = child
            if sub_order.size > self.leaf_capacity and child.depth < self.coefficients:
                child.is_leaf = False
                self._radix_fill(child, sub_order)
            else:
                # Stable lexsort keeps positions ascending within one word;
                # across the words of a leaf they must be re-sorted to match
                # the arrival order of the incremental path.
                child.positions.extend(np.sort(sub_order))

    def append(self, position: int) -> None:
        """Insert one more series from the store into the built index.

        Recomputes the series' SFA word with the breakpoints learned at build
        time, grows the word matrix splits consult (an O(n) array append —
        batch appends should prefer a rebuild), and routes the series through
        the retained per-series insert.
        """
        self._require_built()
        if position != self._words.shape[0]:
            raise ValueError(
                f"appends must be contiguous: expected position "
                f"{self._words.shape[0]}, got {position}"
            )
        series = np.asarray(self.store.peek(position), dtype=np.float64)
        word = self.summarizer.transform(series)
        self._words = np.vstack([self._words, word[np.newaxis, :]])
        self._insert(position, self._words[position])

    def _insert(self, position: int, word: np.ndarray) -> None:
        key = (int(word[0]),)
        child = self.root.children.get(key)
        if child is None:
            child = SfaTrieNode(prefix=key, depth=1, is_leaf=True)
            self.root.children[key] = child
        node = child
        while not node.is_leaf:
            node = self._route(node, word)
        node.positions.append(position)
        if node.size > self.leaf_capacity and node.depth < self.coefficients:
            self._split_leaf(node)

    def _route(self, node: SfaTrieNode, word: np.ndarray) -> SfaTrieNode:
        key = node.prefix + (int(word[node.depth]),)
        child = node.children.get(key)
        if child is None:
            child = SfaTrieNode(prefix=key, depth=node.depth + 1, is_leaf=True)
            node.children[key] = child
        return child

    def _split_leaf(self, node: SfaTrieNode) -> None:
        """Redistribute an overflowing leaf one prefix level deeper.

        Partitions the leaf's position block by the next symbol column in one
        vectorized grouping instead of re-routing series one at a time.
        """
        positions = node.position_block()
        node.is_leaf = False
        node.clear_payload()
        symbols = self._words[positions, node.depth]
        for symbol, idx in group_values(symbols):
            key = node.prefix + (int(symbol),)
            child = node.children.get(key)
            if child is None:
                child = SfaTrieNode(prefix=key, depth=node.depth + 1, is_leaf=True)
                node.children[key] = child
            child.positions.extend(positions[idx])
        for child in node.children.values():
            if child.size > self.leaf_capacity and child.depth < self.coefficients:
                self._split_leaf(child)

    def _collect_footprint(self) -> None:
        leaves = []
        total = 1
        for child in self.root.children.values():
            for node in child.iter_nodes():
                total += 1
                if node.is_leaf:
                    leaves.append(node)
        self.index_stats.total_nodes = total
        self.index_stats.leaf_nodes = len(leaves)
        self.index_stats.leaf_fill_factors = [
            leaf.size / self.leaf_capacity for leaf in leaves
        ]
        self.index_stats.leaf_depths = [leaf.depth for leaf in leaves]
        self.index_stats.memory_bytes = (
            self.store.count * self.coefficients + total * 48
        )
        self.index_stats.disk_bytes = self.store.count * self.store.series_bytes

    # -- lower bounds -------------------------------------------------------------------
    def _prefix_lower_bound(self, query_dft: np.ndarray, node: SfaTrieNode) -> float:
        """SFA cell lower bound restricted to the node's prefix coefficients."""
        total = 0.0
        weights = self.summarizer.dft._weights
        for j, symbol in enumerate(node.prefix):
            low, high = self.summarizer.cell_bounds(int(symbol), j)
            value = query_dft[j]
            if value < low:
                gap = low - value
            elif value > high:
                gap = value - high
            else:
                gap = 0.0
            total += weights[j] * gap * gap
        return float(np.sqrt(total))

    # -- search ----------------------------------------------------------------------------
    def _leaf_for(self, word: np.ndarray) -> SfaTrieNode | None:
        key = (int(word[0]),)
        node = self.root.children.get(key)
        if node is None:
            if not self.root.children:
                return None
            node = next(iter(self.root.children.values()))
        while not node.is_leaf:
            key = node.prefix + (int(word[node.depth]),)
            child = node.children.get(key)
            if child is None:
                child = max(node.children.values(), key=lambda c: c.size)
            node = child
        return node

    def _scan_leaf(
        self,
        node: SfaTrieNode,
        query: np.ndarray,
        answers: KnnAnswerSet,
        stats: QueryStats,
    ) -> None:
        if node.size == 0:
            return
        positions = node.position_block()
        block = self.store.read_block(positions)
        distances = squared_euclidean_batch(query, block)
        answers.offer_batch(positions, distances)
        stats.series_examined += node.size
        stats.leaves_visited += 1
        stats.nodes_visited += 1

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        answers = KnnAnswerSet(k)
        word = self.summarizer.transform(query)
        leaf = self._leaf_for(word)
        if leaf is not None:
            self._scan_leaf(leaf, query, answers, stats)
        return answers

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = self._make_answer_set(k)
        word = self.summarizer.transform(query)
        query_dft = self.summarizer.dft_of(query)
        start_leaf = self._leaf_for(word)
        if start_leaf is not None:
            self._scan_leaf(start_leaf, query, answers, stats)

        counter = itertools.count()
        heap: list[tuple[float, int, SfaTrieNode]] = []

        def push_children(parent: SfaTrieNode, prune: bool) -> None:
            if not parent.children:
                return
            children, prefixes = parent.child_arrays()
            bounds = self.summarizer.prefix_lower_bound_batch(query_dft, prefixes)
            stats.lower_bounds_computed += len(children)
            threshold = answers.worst_squared_distance
            for child, child_bound in zip(children, bounds):
                # Strict >: equality must not prune (positional tie-break).
                if prune and child_bound * child_bound > threshold:
                    continue
                heapq.heappush(heap, (float(child_bound), next(counter), child))

        push_children(self.root, prune=False)
        while heap:
            bound, _, node = heapq.heappop(heap)
            if bound * bound > answers.worst_squared_distance:
                break
            stats.nodes_visited += 1
            if node.is_leaf:
                if node is start_leaf:
                    continue
                self._scan_leaf(node, query, answers, stats)
                continue
            push_children(node, prune=True)
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            coefficients=self.coefficients,
            alphabet_size=self.alphabet_size,
            binning=self.summarizer.binning,
            leaf_capacity=self.leaf_capacity,
            build_mode=self.build_mode,
        )
        return info
