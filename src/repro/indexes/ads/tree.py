"""The adaptive iSAX tree used by ADS+.

The tree only stores PAA summaries and split structure; leaves keep the
positions of their series but never the raw data (ADS+ materializes raw leaves
lazily, and its SIMS exact algorithm bypasses leaf materialization entirely by
scanning the raw file skip-sequentially).  ``bulk_insert`` partitions the whole
summary matrix with array operations — one vectorized root symbolization plus
a lexsort-based grouping — while ``insert`` keeps the per-series path for
appends after the initial load.
"""

from __future__ import annotations

import numpy as np

from ...core.soa import group_values
from ...summarization.sax import (
    IsaxSummarizer,
    SaxWord,
    group_root_words,
    symbolize_batch,
)
from ..isax.node import IsaxNode

__all__ = ["AdsTree"]


class AdsTree:
    """iSAX split tree over summaries only."""

    def __init__(self, summarizer: IsaxSummarizer, leaf_capacity: int) -> None:
        if leaf_capacity <= 0:
            raise ValueError("leaf_capacity must be positive")
        self.summarizer = summarizer
        self.segments = summarizer.segments
        self.cardinality = summarizer.cardinality
        self.leaf_capacity = leaf_capacity
        self.root = IsaxNode(word=None, depth=0, is_leaf=False)

    # -- construction -----------------------------------------------------------
    def bulk_insert(self, paa: np.ndarray, positions: np.ndarray | None = None) -> None:
        """Bulk-load the tree from a whole ``(series, segments)`` PAA matrix.

        Positions are grouped per root child by sorting bit-packed root words
        (:func:`~repro.summarization.sax.group_root_words`), and overflowing
        leaves split through the same block-level machinery as :meth:`insert`
        — no per-series loop, no full word-matrix temporary.
        """
        if positions is None:
            positions = np.arange(paa.shape[0], dtype=np.int64)
        else:
            positions = np.asarray(positions, dtype=np.int64)
        base_cards = tuple([2] * self.segments)
        for key, idx in group_root_words(paa):
            child = self.root.children.get(key)
            if child is None:
                word = SaxWord(symbols=key, cardinalities=base_cards)
                child = IsaxNode(word=word, depth=1, is_leaf=True, parent=self.root)
                self.root.children[key] = child
            child.add_block(positions[idx], paa[idx])
            if child.size > self.leaf_capacity:
                self._split_leaf(child)

    def insert(self, position: int, paa: np.ndarray) -> None:
        key = self._root_key(paa)
        child = self.root.children.get(key)
        if child is None:
            word = SaxWord(symbols=key, cardinalities=tuple([2] * self.segments))
            child = IsaxNode(word=word, depth=1, is_leaf=True, parent=self.root)
            self.root.children[key] = child
        node = child
        while not node.is_leaf:
            node = self._route(node, paa)
        node.add(position, paa)
        if node.size > self.leaf_capacity:
            self._split_leaf(node)

    def _root_key(self, paa: np.ndarray) -> tuple:
        word = self.summarizer.word_from_paa(paa, tuple([2] * self.segments))
        return word.symbols

    def _route(self, node: IsaxNode, paa: np.ndarray) -> IsaxNode:
        segment = node.split_segment
        word = node.word.promote(segment, float(paa[segment]))
        child = node.children.get(word.symbols)
        if child is None:
            child = self._closest_child(node, paa)
        return child

    def _closest_child(self, node: IsaxNode, paa: np.ndarray) -> IsaxNode:
        """The child with the smallest MINDIST, scored in one batch call."""
        children, symbols, cardinalities = node.child_arrays()
        bounds = self.summarizer.mindist_paa_to_words_batch(paa, symbols, cardinalities)
        return children[int(np.argmin(bounds))]

    def _split_leaf(self, node: IsaxNode) -> None:
        """Redistribute an overflowing leaf one cardinality level deeper.

        Operates on the leaf's whole payload block: the split segment's column
        is re-symbolized at doubled cardinality in one call and each child
        adopts its position block contiguously.
        """
        paa = node.paa_block()
        spread = paa.std(axis=0)
        order = np.argsort(-spread)
        segment = None
        for candidate in order:
            if node.word.cardinalities[int(candidate)] < self.cardinality:
                segment = int(candidate)
                break
        if segment is None:
            return
        positions = node.position_block()
        node.is_leaf = False
        node.split_segment = segment
        node.clear_payload()

        card = node.word.cardinalities[segment] * 2
        symbols = symbolize_batch(paa[:, segment], card)
        base_symbols = list(node.word.symbols)
        cards = list(node.word.cardinalities)
        cards[segment] = card
        cardinalities = tuple(cards)
        for symbol, idx in group_values(symbols):
            child_symbols = base_symbols.copy()
            child_symbols[segment] = int(symbol)
            word = SaxWord(symbols=tuple(child_symbols), cardinalities=cardinalities)
            child = node.children.get(word.symbols)
            if child is None:
                child = IsaxNode(
                    word=word, depth=node.depth + 1, is_leaf=True, parent=node
                )
                node.children[word.symbols] = child
            child.add_block(positions[idx], paa[idx])
        for child in node.children.values():
            if child.size > self.leaf_capacity:
                self._split_leaf(child)

    # -- navigation ----------------------------------------------------------------
    def leaf_for(self, paa: np.ndarray) -> IsaxNode | None:
        key = self._root_key(paa)
        node = self.root.children.get(key)
        if node is None:
            if not self.root.children:
                return None
            node = self._closest_child(self.root, paa)
        while not node.is_leaf:
            node = self._route(node, paa)
        return node

    def leaves(self) -> list[IsaxNode]:
        out = []
        for child in self.root.children.values():
            out.extend(child.leaves())
        return out

    def node_count(self) -> int:
        total = 1
        for child in self.root.children.values():
            total += sum(1 for _ in child.iter_nodes())
        return total
