"""The adaptive iSAX tree used by ADS+.

The tree only stores PAA summaries and split structure; leaves keep the
positions of their series but never the raw data (ADS+ materializes raw leaves
lazily, and its SIMS exact algorithm bypasses leaf materialization entirely by
scanning the raw file skip-sequentially).
"""

from __future__ import annotations

import numpy as np

from ...summarization.sax import IsaxSummarizer, SaxWord
from ..isax.node import IsaxNode

__all__ = ["AdsTree"]


class AdsTree:
    """iSAX split tree over summaries only."""

    def __init__(self, summarizer: IsaxSummarizer, leaf_capacity: int) -> None:
        if leaf_capacity <= 0:
            raise ValueError("leaf_capacity must be positive")
        self.summarizer = summarizer
        self.segments = summarizer.segments
        self.cardinality = summarizer.cardinality
        self.leaf_capacity = leaf_capacity
        self.root = IsaxNode(word=None, depth=0, is_leaf=False)

    # -- construction -----------------------------------------------------------
    def bulk_insert(self, paa: np.ndarray) -> None:
        for position in range(paa.shape[0]):
            self.insert(position, paa[position])

    def insert(self, position: int, paa: np.ndarray) -> None:
        key = self._root_key(paa)
        child = self.root.children.get(key)
        if child is None:
            word = SaxWord(symbols=key, cardinalities=tuple([2] * self.segments))
            child = IsaxNode(word=word, depth=1, is_leaf=True, parent=self.root)
            self.root.children[key] = child
        node = child
        while not node.is_leaf:
            node = self._route(node, paa)
        node.add(position, paa)
        if node.size > self.leaf_capacity:
            self._split_leaf(node)

    def _root_key(self, paa: np.ndarray) -> tuple:
        word = self.summarizer.word_from_paa(paa, tuple([2] * self.segments))
        return word.symbols

    def _route(self, node: IsaxNode, paa: np.ndarray) -> IsaxNode:
        segment = node.split_segment
        word = node.word.promote(segment, float(paa[segment]))
        child = node.children.get(word.symbols)
        if child is None:
            child = self._closest_child(node, paa)
        return child

    def _closest_child(self, node: IsaxNode, paa: np.ndarray) -> IsaxNode:
        """The child with the smallest MINDIST, scored in one batch call."""
        children, symbols, cardinalities = node.child_arrays()
        bounds = self.summarizer.mindist_paa_to_words_batch(paa, symbols, cardinalities)
        return children[int(np.argmin(bounds))]

    def _split_leaf(self, node: IsaxNode) -> None:
        paa = np.vstack(node.paa_values)
        spread = paa.std(axis=0)
        order = np.argsort(-spread)
        segment = None
        for candidate in order:
            if node.word.cardinalities[int(candidate)] < self.cardinality:
                segment = int(candidate)
                break
        if segment is None:
            return
        node.is_leaf = False
        node.split_segment = segment
        positions = node.positions
        paa_values = node.paa_values
        node.clear_payload()
        for position, values in zip(positions, paa_values):
            word = node.word.promote(segment, float(values[segment]))
            child = node.children.get(word.symbols)
            if child is None:
                child = IsaxNode(
                    word=word, depth=node.depth + 1, is_leaf=True, parent=node
                )
                node.children[word.symbols] = child
            child.add(position, values)
        for child in node.children.values():
            if child.size > self.leaf_capacity:
                self._split_leaf(child)

    # -- navigation ----------------------------------------------------------------
    def leaf_for(self, paa: np.ndarray) -> IsaxNode | None:
        key = self._root_key(paa)
        node = self.root.children.get(key)
        if node is None:
            if not self.root.children:
                return None
            node = self._closest_child(self.root, paa)
        while not node.is_leaf:
            node = self._route(node, paa)
        return node

    def leaves(self) -> list[IsaxNode]:
        out = []
        for child in self.root.children.values():
            out.extend(child.leaves())
        return out

    def node_count(self) -> int:
        total = 1
        for child in self.root.children.values():
            total += sum(1 for _ in child.iter_nodes())
        return total
