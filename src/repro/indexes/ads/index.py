"""ADS+ : the adaptive data series index, with the SIMS exact algorithm.

ADS+ builds an iSAX tree over the *summaries only*: leaves are not materialized
with raw data at build time, which makes index construction extremely cheap
(one sequential pass to compute summaries).  Exact queries use SIMS
(skip-sequential scan): an ng-approximate tree descent produces an initial
best-so-far, then the lower bound between the query and the full-resolution
iSAX summary of *every* series is evaluated; the raw file is finally scanned
skip-sequentially, reading only the stretches whose series were not pruned —
every gap in the scan costs one seek, which is exactly the behaviour the paper
identifies as the method's bottleneck on high-throughput HDDs.
"""

from __future__ import annotations

import numpy as np

from ...core.answers import KnnAnswerSet
from ...core.distance import squared_euclidean_batch
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ...summarization.sax import IsaxSummarizer, summarize_stream
from ..base import SearchMethod
from .tree import AdsTree

__all__ = ["AdsPlusIndex"]


class AdsPlusIndex(SearchMethod):
    """ADS+ index (adaptive iSAX summaries + SIMS skip-sequential exact search).

    Parameters
    ----------
    store:
        The raw-data store.
    segments:
        Number of PAA segments / word length (16 in the paper).
    cardinality:
        Full-resolution per-segment cardinality (256 in the paper).
    leaf_capacity:
        Leaf threshold of the adaptive tree.  As the paper notes, the leaf size
        affects indexing but barely affects SIMS query answering.
    build_mode:
        ``"bulk"`` (default) partitions the summary matrix with array
        operations; ``"incremental"`` forces the per-series insert loop.
    build_chunk_rows:
        Rows per streamed summarization chunk during construction (``None`` =
        the store's default); never changes the built tree.
    """

    name = "ads+"
    supports_approximate = True
    supports_bulk_build = True

    def __init__(
        self,
        store: SeriesStore,
        segments: int = 16,
        cardinality: int = 256,
        leaf_capacity: int = 100,
        build_mode: str = "bulk",
        build_chunk_rows: int | None = None,
    ) -> None:
        super().__init__(store, build_mode=build_mode, build_chunk_rows=build_chunk_rows)
        segments = min(segments, store.length)
        self.summarizer = IsaxSummarizer(store.length, segments, cardinality)
        self.segments = segments
        self.cardinality = cardinality
        self.leaf_capacity = leaf_capacity
        self.tree = AdsTree(self.summarizer, leaf_capacity)
        self._paa: np.ndarray | None = None
        self._symbols: np.ndarray | None = None

    # -- construction -------------------------------------------------------------
    def _summarize_collection(self) -> None:
        # One streamed sequential pass (accounted exactly like a scan())
        # computes both summary matrices SIMS keeps — the raw float64
        # collection is never resident, only one chunk of it.
        self._paa, self._symbols = summarize_stream(
            self.summarizer,
            self.store.scan_blocks(chunk_rows=self.build_chunk_rows),
            self.store.count,
            symbols=True,
        )

    def _bulk_build(self) -> None:
        self._summarize_collection()
        self.tree.bulk_insert(self._paa)

    def _incremental_build(self) -> None:
        self._summarize_collection()
        for position in range(self.store.count):
            self.tree.insert(position, self._paa[position])

    def append(self, position: int) -> None:
        """Insert one more series from the store into the built index.

        Recomputes the series' summaries, grows the full-resolution summary
        matrices SIMS scans (an O(n) array append — batch appends should
        prefer a rebuild), and routes the series through the retained
        per-series tree insert.
        """
        self._require_built()
        if position != self._paa.shape[0]:
            raise ValueError(
                f"appends must be contiguous: expected position "
                f"{self._paa.shape[0]}, got {position}"
            )
        series = np.asarray(self.store.peek(position), dtype=np.float64)
        paa = self.summarizer.paa.transform(series)
        symbols = self.summarizer.transform(series)
        self._paa = np.vstack([self._paa, paa[np.newaxis, :]])
        self._symbols = np.vstack([self._symbols, symbols[np.newaxis, :]])
        self.tree.insert(position, self._paa[position])

    def _collect_footprint(self) -> None:
        leaves = self.tree.leaves()
        self.index_stats.total_nodes = self.tree.node_count()
        self.index_stats.leaf_nodes = len(leaves)
        self.index_stats.leaf_fill_factors = [
            leaf.size / self.leaf_capacity for leaf in leaves
        ]
        self.index_stats.leaf_depths = [leaf.depth for leaf in leaves]
        per_series = self.segments * (8 + 2)
        self.index_stats.memory_bytes = (
            self.store.count * per_series + self.tree.node_count() * 48
        )
        # ADS+ keeps only summaries on disk next to the raw file.
        self.index_stats.disk_bytes = self.store.count * self.segments * 2

    # -- search ---------------------------------------------------------------------
    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        # The SIMS exact path below grows this same answer set, so it goes
        # through the context-overridable factory.
        answers = self._make_answer_set(k)
        paa = self.summarizer.paa.transform(query)
        leaf = self.tree.leaf_for(paa)
        if leaf is None or leaf.size == 0:
            return answers
        positions = leaf.position_block()
        block = self.store.read_block(positions)
        distances = squared_euclidean_batch(query, block)
        answers.offer_batch(positions, distances)
        stats.series_examined += leaf.size
        stats.leaves_visited += 1
        stats.nodes_visited += 1
        return answers

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        """SIMS: approximate answer, full lower-bound pass, skip-sequential scan."""
        answers = self._knn_approximate(query, k, stats)
        paa = self.summarizer.paa.transform(query)

        # Lower bound between the query PAA and every full-resolution summary.
        bounds = self.summarizer.lower_bound_batch(paa, self._symbols)
        stats.lower_bounds_computed += bounds.shape[0]
        threshold = np.sqrt(answers.worst_squared_distance)
        # <=: candidates whose bound ties the k-th distance may still win the
        # positional tie-break, so equality must not be skipped.
        survivors = np.flatnonzero(bounds <= threshold)

        # Skip-sequential scan: read contiguous runs of surviving positions.
        for start, stop in _contiguous_runs(survivors):
            block = self.store.read_contiguous(int(start), int(stop))
            positions = np.arange(start, stop)
            distances = squared_euclidean_batch(query, block)
            answers.offer_batch(positions, distances)
            stats.series_examined += int(stop - start)
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            segments=self.segments,
            cardinality=self.cardinality,
            leaf_capacity=self.leaf_capacity,
            exact_algorithm="SIMS",
            build_mode=self.build_mode,
        )
        return info


def _contiguous_runs(positions: np.ndarray):
    """Yield (start, stop) pairs covering consecutive runs in sorted positions."""
    if positions.size == 0:
        return
    breaks = np.flatnonzero(np.diff(positions) > 1)
    start_idx = 0
    for b in breaks:
        yield positions[start_idx], positions[b] + 1
        start_idx = b + 1
    yield positions[start_idx], positions[-1] + 1
