"""ADS+ adaptive data series index."""

from .index import AdsPlusIndex
from .tree import AdsTree

__all__ = ["AdsPlusIndex", "AdsTree"]
