"""Stepwise: multi-level filtering over vertically stored DHWT coefficients.

Stepwise is the hybrid between sequential scans and indexes evaluated in the
paper.  At preprocessing time every series is Haar-transformed and the
coefficients are stored *level by level* (all level-0 coefficients of every
series first, then all level-1 coefficients, and so on).  A query is answered
by scanning one level at a time: after reading a level, lower and upper bounds
on the true distance of every surviving candidate are refined, and candidates
whose lower bound exceeds the smallest k-th upper bound (or the best-so-far)
are discarded.  Candidates that survive every level are refined against the raw
data.  Locating the higher-resolution coefficients of the surviving candidates
requires random I/O, which is what drives the method's cost in the paper.
"""

from __future__ import annotations

import numpy as np

from ...core.answers import KnnAnswerSet
from ...core.distance import squared_euclidean_batch
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ...summarization.dhwt import DhwtSummarizer, haar_transform, level_slices
from ..base import SearchMethod

__all__ = ["StepwiseIndex"]


class StepwiseIndex(SearchMethod):
    """Stepwise multi-level filter.

    Parameters
    ----------
    store:
        The raw-data store.
    levels_per_step:
        Number of wavelet levels consumed per filtering step (1 reproduces the
        original level-at-a-time behaviour).
    """

    name = "stepwise"
    supports_approximate = False

    def __init__(self, store: SeriesStore, levels_per_step: int = 1) -> None:
        super().__init__(store)
        if levels_per_step < 1:
            raise ValueError("levels_per_step must be at least 1")
        self.levels_per_step = levels_per_step
        self.summarizer = DhwtSummarizer(store.length, min(16, store.length))
        self._coefficients: np.ndarray | None = None
        self._level_slices: list[slice] = []
        self._tail_energy: np.ndarray | None = None

    # -- construction --------------------------------------------------------------
    def _build(self) -> None:
        data = self.store.scan()
        self._coefficients = haar_transform(data)
        self._level_slices = level_slices(self._coefficients.shape[1])
        # Precompute per-series suffix energies: the norm of the coefficients at
        # or after each level, used for the upper bounds.
        padded = self._coefficients
        suffix = np.zeros((padded.shape[0], len(self._level_slices) + 1), dtype=np.float64)
        for level in range(len(self._level_slices) - 1, -1, -1):
            sl = self._level_slices[level]
            energy = np.einsum("ij,ij->i", padded[:, sl], padded[:, sl])
            suffix[:, level] = suffix[:, level + 1] + energy
        self._tail_energy = suffix

    def _collect_footprint(self) -> None:
        self.index_stats.total_nodes = len(self._level_slices)
        self.index_stats.leaf_nodes = 0
        self.index_stats.memory_bytes = (
            self._coefficients.nbytes if self._coefficients is not None else 0
        )
        self.index_stats.disk_bytes = self.index_stats.memory_bytes

    # -- search ---------------------------------------------------------------------
    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = self._make_answer_set(k)
        query_coeffs = haar_transform(query)
        candidates = np.arange(self.store.count)
        partial = np.zeros(self.store.count, dtype=np.float64)
        query_tail = np.zeros(len(self._level_slices) + 1, dtype=np.float64)
        for level in range(len(self._level_slices) - 1, -1, -1):
            sl = self._level_slices[level]
            chunk = query_coeffs[sl]
            query_tail[level] = query_tail[level + 1] + float(np.dot(chunk, chunk))

        level = 0
        total_levels = len(self._level_slices)
        while level < total_levels and candidates.size > 0:
            stop_level = min(level + self.levels_per_step, total_levels)
            for current in range(level, stop_level):
                sl = self._level_slices[current]
                # Reading this level's coefficients for the surviving candidates:
                # one seek to the level's region plus sequential pages.
                width = sl.stop - sl.start
                self.store.counter.random_accesses += 1
                coeff_bytes = candidates.size * width * 4
                self.store.counter.sequential_pages += max(
                    1, coeff_bytes // self.store.page_bytes
                )
                self.store.counter.bytes_read += coeff_bytes
                diff = self._coefficients[candidates, sl] - query_coeffs[np.newaxis, sl]
                partial[candidates] += np.einsum("ij,ij->i", diff, diff)
                stats.lower_bounds_computed += candidates.size
            level = stop_level

            # Bounds after consuming levels [0, level):
            lower = np.sqrt(partial[candidates])
            tail_candidates = np.sqrt(self._tail_energy[candidates, level])
            tail_query = np.sqrt(query_tail[level])
            upper = np.sqrt(partial[candidates]) + tail_candidates + tail_query

            if candidates.size >= k:
                kth_upper = np.partition(upper, k - 1)[k - 1]
                keep = lower <= kth_upper
                candidates = candidates[keep]

        # Final refinement on the raw data for the surviving candidates.
        candidates = np.sort(candidates)
        for start, stop in _contiguous_runs(candidates):
            block = self.store.read_contiguous(int(start), int(stop))
            positions = np.arange(start, stop)
            distances = squared_euclidean_batch(query, block)
            answers.offer_batch(positions, distances)
            stats.series_examined += int(stop - start)
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info["levels_per_step"] = self.levels_per_step
        return info


def _contiguous_runs(positions: np.ndarray):
    """Yield (start, stop) pairs covering consecutive runs in sorted positions."""
    if positions.size == 0:
        return
    breaks = np.flatnonzero(np.diff(positions) > 1)
    start_idx = 0
    for b in breaks:
        yield positions[start_idx], positions[b] + 1
        start_idx = b + 1
    yield positions[start_idx], positions[-1] + 1
