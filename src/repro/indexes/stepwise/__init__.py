"""Stepwise multi-level DHWT filter."""

from .index import StepwiseIndex

__all__ = ["StepwiseIndex"]
