"""R*-tree over PAA summaries."""

from .index import RStarTreeIndex, RStarNode

__all__ = ["RStarTreeIndex", "RStarNode"]
