"""R*-tree over PAA summaries.

The paper evaluates the R*-tree with PAA summaries added: every series becomes
a point in the (low-dimensional) PAA space, leaves group points into minimum
bounding rectangles (MBRs), and internal nodes keep the MBR of their children.
The classic R*-tree insertion heuristics are used (choose-subtree by minimum
overlap/area enlargement, split by the topological margin/overlap criteria,
forced reinsertion on the first overflow of a level).  Query answering is
best-first on the PAA-space MINDIST (scaled by the segment width so it lower
bounds the true Euclidean distance), with leaf refinement on the raw data.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ...core.answers import KnnAnswerSet
from ...core.distance import squared_euclidean_batch
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ...summarization.paa import PaaSummarizer
from ..base import SearchMethod

__all__ = ["RStarTreeIndex", "RStarNode"]


@dataclass
class RStarNode:
    """One R*-tree node: an MBR over PAA points or child MBRs."""

    is_leaf: bool = True
    #: leaf payload: series positions and their PAA points.
    positions: list[int] = field(default_factory=list)
    points: list[np.ndarray] = field(default_factory=list)
    #: internal payload.
    children: list["RStarNode"] = field(default_factory=list)
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None
    parent: "RStarNode | None" = None
    level: int = 0

    @property
    def size(self) -> int:
        return len(self.positions) if self.is_leaf else len(self.children)

    def iter_nodes(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def leaves(self):
        return [node for node in self.iter_nodes() if node.is_leaf]

    # -- geometry ----------------------------------------------------------------
    def recompute_mbr(self) -> None:
        if self.is_leaf:
            if not self.points:
                self.lower = None
                self.upper = None
                return
            pts = np.vstack(self.points)
            self.lower = pts.min(axis=0)
            self.upper = pts.max(axis=0)
        else:
            if not self.children:
                self.lower = None
                self.upper = None
                return
            self.lower = np.min([c.lower for c in self.children], axis=0)
            self.upper = np.max([c.upper for c in self.children], axis=0)

    def extend(self, point_lower: np.ndarray, point_upper: np.ndarray) -> None:
        if self.lower is None:
            self.lower = point_lower.copy()
            self.upper = point_upper.copy()
        else:
            self.lower = np.minimum(self.lower, point_lower)
            self.upper = np.maximum(self.upper, point_upper)

    @property
    def area(self) -> float:
        if self.lower is None:
            return 0.0
        return float(np.prod(self.upper - self.lower))

    @property
    def margin(self) -> float:
        if self.lower is None:
            return 0.0
        return float(np.sum(self.upper - self.lower))


def _enlargement(lower: np.ndarray, upper: np.ndarray, point: np.ndarray) -> float:
    new_lower = np.minimum(lower, point)
    new_upper = np.maximum(upper, point)
    return float(np.prod(new_upper - new_lower) - np.prod(upper - lower))


def _overlap(a_low, a_high, b_low, b_high) -> float:
    inter = np.clip(np.minimum(a_high, b_high) - np.maximum(a_low, b_low), 0.0, None)
    return float(np.prod(inter))


class RStarTreeIndex(SearchMethod):
    """R*-tree over PAA points with raw-data refinement.

    Parameters
    ----------
    store:
        The raw-data store.
    segments:
        PAA segments used as the indexed dimensionality (16 in the paper).
    leaf_capacity:
        Maximum entries per leaf (the paper's tuned value is 50).
    node_capacity:
        Maximum children per internal node.
    reinsert_fraction:
        Fraction of entries re-inserted on the first overflow of a level
        (the R* "forced reinsert" heuristic; 0 disables it).
    """

    name = "r*-tree"
    supports_approximate = True

    def __init__(
        self,
        store: SeriesStore,
        segments: int = 16,
        leaf_capacity: int = 50,
        node_capacity: int = 16,
        reinsert_fraction: float = 0.3,
    ) -> None:
        super().__init__(store)
        if leaf_capacity < 2 or node_capacity < 2:
            raise ValueError("capacities must be at least 2")
        segments = min(segments, store.length)
        self.summarizer = PaaSummarizer(store.length, segments)
        self.segments = segments
        self.leaf_capacity = leaf_capacity
        self.node_capacity = node_capacity
        self.reinsert_fraction = float(np.clip(reinsert_fraction, 0.0, 0.45))
        self.root = RStarNode(is_leaf=True, level=0)
        self._reinserted_levels: set[int] = set()

    # -- construction --------------------------------------------------------------
    def _build(self) -> None:
        data = self.store.scan()
        paa = self.summarizer.transform_batch(data)
        for position in range(self.store.count):
            self._reinserted_levels.clear()
            self._insert(position, paa[position])

    def _capacity(self, node: RStarNode) -> int:
        return self.leaf_capacity if node.is_leaf else self.node_capacity

    def _choose_leaf(self, point: np.ndarray) -> RStarNode:
        node = self.root
        while not node.is_leaf:
            children = node.children
            if children[0].is_leaf:
                # Minimum overlap enlargement, ties by area enlargement.
                def overlap_cost(child: RStarNode) -> tuple:
                    new_low = np.minimum(child.lower, point)
                    new_high = np.maximum(child.upper, point)
                    overlap_now = sum(
                        _overlap(child.lower, child.upper, o.lower, o.upper)
                        for o in children
                        if o is not child
                    )
                    overlap_new = sum(
                        _overlap(new_low, new_high, o.lower, o.upper)
                        for o in children
                        if o is not child
                    )
                    return (
                        overlap_new - overlap_now,
                        _enlargement(child.lower, child.upper, point),
                        child.area,
                    )

                node = min(children, key=overlap_cost)
            else:
                node = min(
                    children,
                    key=lambda c: (_enlargement(c.lower, c.upper, point), c.area),
                )
        return node

    def _insert(self, position: int, point: np.ndarray) -> None:
        leaf = self._choose_leaf(point)
        leaf.positions.append(position)
        leaf.points.append(point)
        leaf.extend(point, point)
        self._adjust_upwards(leaf, point)
        if leaf.size > self.leaf_capacity:
            self._handle_overflow(leaf)

    def _adjust_upwards(self, node: RStarNode, point: np.ndarray) -> None:
        current = node.parent
        while current is not None:
            current.extend(point, point)
            current = current.parent

    def _handle_overflow(self, node: RStarNode) -> None:
        level = node.level
        if (
            self.reinsert_fraction > 0.0
            and node.parent is not None
            and level not in self._reinserted_levels
        ):
            self._reinserted_levels.add(level)
            self._forced_reinsert(node)
            detached = node.parent is not None and node not in node.parent.children
            if detached or node.size <= self._capacity(node):
                return
        self._split(node)

    def _forced_reinsert(self, node: RStarNode) -> None:
        """Remove the entries farthest from the MBR center and re-insert them."""
        center = (node.lower + node.upper) / 2.0
        count = max(1, int(self.reinsert_fraction * node.size))
        if node.is_leaf:
            order = np.argsort(
                [-float(np.linalg.norm(p - center)) for p in node.points]
            )[:count]
            removed = [(node.positions[i], node.points[i]) for i in order]
            keep = [i for i in range(node.size) if i not in set(order.tolist())]
            node.positions = [node.positions[i] for i in keep]
            node.points = [node.points[i] for i in keep]
            node.recompute_mbr()
            self._refresh_ancestors(node)
            for position, point in removed:
                self._insert(position, point)
        # Internal-node reinsertion is omitted: splits at internal levels are
        # rare at the scales used here and plain splitting remains correct.

    def _refresh_ancestors(self, node: RStarNode) -> None:
        current = node.parent
        while current is not None:
            current.recompute_mbr()
            current = current.parent

    def _split(self, node: RStarNode) -> None:
        if node.is_leaf:
            entries = list(zip(node.positions, node.points))
            points = np.vstack(node.points)
        else:
            entries = node.children
            points = np.vstack([(c.lower + c.upper) / 2.0 for c in node.children])

        # R*-style axis choice: the dimension with the largest margin sum of the
        # candidate distributions (approximated by the dimension of max spread).
        axis = int(np.argmax(points.max(axis=0) - points.min(axis=0)))
        order = np.argsort(points[:, axis], kind="stable")
        min_fill = max(1, int(0.4 * self._capacity(node)))
        best_split = None
        best_cost = None
        for cut in range(min_fill, len(order) - min_fill + 1):
            left_idx = order[:cut]
            right_idx = order[cut:]
            left_low = points[left_idx].min(axis=0)
            left_high = points[left_idx].max(axis=0)
            right_low = points[right_idx].min(axis=0)
            right_high = points[right_idx].max(axis=0)
            overlap = _overlap(left_low, left_high, right_low, right_high)
            area = float(np.prod(left_high - left_low) + np.prod(right_high - right_low))
            cost = (overlap, area)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_split = cut
        left_idx = order[:best_split]
        right_idx = order[best_split:]

        left = RStarNode(is_leaf=node.is_leaf, level=node.level)
        right = RStarNode(is_leaf=node.is_leaf, level=node.level)
        if node.is_leaf:
            for i in left_idx:
                left.positions.append(entries[i][0])
                left.points.append(entries[i][1])
            for i in right_idx:
                right.positions.append(entries[i][0])
                right.points.append(entries[i][1])
        else:
            for i in left_idx:
                left.children.append(entries[i])
                entries[i].parent = left
            for i in right_idx:
                right.children.append(entries[i])
                entries[i].parent = right
        left.recompute_mbr()
        right.recompute_mbr()
        # The split node is replaced by its two halves; empty it so any stale
        # reference held further up the call stack sees a detached, empty node.
        node.positions = []
        node.points = []
        node.children = []

        parent = node.parent
        if parent is None:
            new_root = RStarNode(is_leaf=False, level=node.level + 1)
            new_root.children = [left, right]
            left.parent = new_root
            right.parent = new_root
            new_root.recompute_mbr()
            self.root = new_root
        else:
            parent.children.remove(node)
            parent.children.extend([left, right])
            left.parent = parent
            right.parent = parent
            parent.recompute_mbr()
            if parent.size > self.node_capacity:
                self._handle_overflow(parent)

    def _collect_footprint(self) -> None:
        leaves = self.root.leaves()
        self.index_stats.total_nodes = sum(1 for _ in self.root.iter_nodes())
        self.index_stats.leaf_nodes = len(leaves)
        self.index_stats.leaf_fill_factors = [
            leaf.size / self.leaf_capacity for leaf in leaves
        ]
        depths = []
        for leaf in leaves:
            depth = 0
            current = leaf
            while current.parent is not None:
                depth += 1
                current = current.parent
            depths.append(depth)
        self.index_stats.leaf_depths = depths
        entry_bytes = self.segments * 8 + 16
        entries = sum(node.size for node in self.root.iter_nodes())
        self.index_stats.memory_bytes = entries * entry_bytes
        self.index_stats.disk_bytes = self.store.count * self.store.series_bytes

    # -- search -------------------------------------------------------------------------
    def _mindist(self, query_paa: np.ndarray, node: RStarNode) -> float:
        if node.lower is None:
            return float("inf")
        return self.summarizer.mindist_to_rectangle(query_paa, node.lower, node.upper)

    def _scan_leaf(
        self,
        node: RStarNode,
        query: np.ndarray,
        answers: KnnAnswerSet,
        stats: QueryStats,
    ) -> None:
        if not node.positions:
            return
        block = self.store.read_block(np.asarray(node.positions))
        distances = squared_euclidean_batch(query, block)
        answers.offer_batch(np.asarray(node.positions), distances)
        stats.series_examined += len(node.positions)
        stats.leaves_visited += 1
        stats.nodes_visited += 1

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        answers = KnnAnswerSet(k)
        query_paa = self.summarizer.transform(query)
        node = self.root
        while not node.is_leaf:
            stats.nodes_visited += 1
            node = min(node.children, key=lambda c: self._mindist(query_paa, c))
        self._scan_leaf(node, query, answers, stats)
        return answers

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = self._make_answer_set(k)
        query_paa = self.summarizer.transform(query)
        counter = itertools.count()
        heap: list[tuple[float, int, RStarNode]] = []
        heapq.heappush(heap, (self._mindist(query_paa, self.root), next(counter), self.root))
        while heap:
            bound, _, node = heapq.heappop(heap)
            # Strict >: equality must not prune (positional tie-break).
            if bound * bound > answers.worst_squared_distance:
                break
            if node.is_leaf:
                self._scan_leaf(node, query, answers, stats)
                continue
            stats.nodes_visited += 1
            for child in node.children:
                child_bound = self._mindist(query_paa, child)
                stats.lower_bounds_computed += 1
                if child_bound * child_bound <= answers.worst_squared_distance:
                    heapq.heappush(heap, (child_bound, next(counter), child))
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            segments=self.segments,
            leaf_capacity=self.leaf_capacity,
            node_capacity=self.node_capacity,
        )
        return info
