"""Nodes and split policies of the DSTree index."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core.soa import GrowableArray, position_vector
from ...summarization.eapca import NodeSynopsis

__all__ = ["DsTreeNode", "SplitPolicy"]


@dataclass
class SplitPolicy:
    """A candidate split of a DSTree node.

    Horizontal splits partition the node on a segment's mean or standard
    deviation around a threshold; vertical splits first subdivide a segment
    into two halves (refining the segmentation for the children) and then
    split on the mean of one of the halves.
    """

    kind: str  # "mean" | "std"
    segment: int
    threshold: float
    vertical: bool = False
    #: the refined boundaries used by the children (vertical splits only).
    child_boundaries: np.ndarray | None = None

    def describe(self) -> str:
        style = "V" if self.vertical else "H"
        return f"{style}-split seg={self.segment} on {self.kind} @ {self.threshold:.3f}"


@dataclass
class DsTreeNode:
    """One node of the DSTree.

    Every node owns a segmentation (``boundaries``) and a
    :class:`~repro.summarization.eapca.NodeSynopsis` over the series routed
    through it.  Leaves additionally hold the positions of their series in a
    contiguous :class:`~repro.core.soa.GrowableArray`, so leaf scans hand the
    store one ready-made integer vector and splits move whole blocks.
    """

    boundaries: np.ndarray
    depth: int = 0
    is_leaf: bool = True
    positions: GrowableArray = field(default_factory=position_vector)
    synopsis: NodeSynopsis | None = None
    policy: SplitPolicy | None = None
    left: "DsTreeNode | None" = None
    right: "DsTreeNode | None" = None
    parent: "DsTreeNode | None" = None
    #: cached (children, stacked synopsis ranges) for the batch lower-bound
    #: kernel; built lazily at query time and invalidated by the insert path
    #: (appends update child synopses in place, widening the stacked ranges).
    _child_bound_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def size(self) -> int:
        return len(self.positions)

    def position_block(self) -> np.ndarray:
        """The leaf's positions as one contiguous int64 vector (read-only)."""
        return self.positions.data

    def clear_payload(self) -> None:
        self.positions.clear()

    def child_bound_arrays(self) -> tuple:
        """Children owning a synopsis plus their stacked range matrices.

        Returns ``(children, stacked)`` where ``stacked`` feeds
        :func:`~repro.summarization.eapca.synopses_lower_bounds`.  Both
        children of a DSTree split share one segmentation, so a single batch
        call bounds the pair.  Cached on the node; appends invalidate the
        cache along their insert path (child synopses mutate in place).
        """
        from ...summarization.eapca import stack_synopses

        cache = self._child_bound_cache
        children = [
            c for c in (self.left, self.right) if c is not None and c.synopsis is not None
        ]
        if cache is None or len(cache[0]) != len(children):
            stacked = stack_synopses([c.synopsis for c in children]) if children else None
            cache = (children, stacked)
            self._child_bound_cache = cache
        return cache

    def iter_nodes(self):
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)

    def leaves(self):
        return [node for node in self.iter_nodes() if node.is_leaf]

    # -- routing -----------------------------------------------------------------
    def route(self, series: np.ndarray) -> "DsTreeNode":
        """Route one series to the child chosen by this node's split policy."""
        if self.is_leaf or self.policy is None:
            return self
        value = self.policy_value(series)
        return self.left if value <= self.policy.threshold else self.right

    def policy_value(self, series: np.ndarray) -> float:
        """The feature value (segment mean or std) this node splits on."""
        policy = self.policy
        boundaries = policy.child_boundaries if policy.vertical else self.boundaries
        start = boundaries[policy.segment]
        stop = boundaries[policy.segment + 1]
        chunk = np.asarray(series, dtype=np.float64)[start:stop]
        if policy.kind == "mean":
            return float(chunk.mean())
        return float(chunk.std())
