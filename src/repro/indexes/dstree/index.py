"""DSTree: a data-adaptive and dynamic segmentation index (EAPCA-based).

The DSTree inserts series one at a time.  Every node keeps an EAPCA synopsis
(per-segment ranges of means and standard deviations) over its own
segmentation.  When a leaf overflows it evaluates a set of candidate split
policies — horizontal splits on a segment's mean or standard deviation, and
vertical splits that first refine the segmentation — and picks the policy with
the best expected separation (the heuristic role played by the upper/lower
bound based quality measure in the original paper).  Query answering uses the
node synopsis lower bound to prune subtrees, giving the paper's observed
behaviour: expensive (CPU-heavy) index construction, very fast queries.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ...core.answers import KnnAnswerSet, RangeAnswerSet
from ...core.buffer import BufferPool
from ...core.distance import squared_euclidean_batch
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ...summarization.eapca import (
    NodeSynopsis,
    query_segment_stats,
    synopses_lower_bounds,
)
from ..base import SearchMethod
from .node import DsTreeNode, SplitPolicy

__all__ = ["DsTreeIndex"]


class DsTreeIndex(SearchMethod):
    """DSTree index.

    Parameters
    ----------
    store:
        The raw-data store.
    initial_segments:
        Number of segments of the root segmentation.
    leaf_capacity:
        Maximum series per leaf.
    max_segments:
        Cap on how far vertical splits may refine the segmentation.
    buffer_capacity:
        Optional in-memory buffer budget (in series) during construction.
    """

    name = "dstree"
    supports_approximate = True

    def __init__(
        self,
        store: SeriesStore,
        initial_segments: int = 4,
        leaf_capacity: int = 100,
        max_segments: int | None = None,
        buffer_capacity: int | None = None,
    ) -> None:
        super().__init__(store)
        if leaf_capacity <= 0:
            raise ValueError("leaf_capacity must be positive")
        initial_segments = max(1, min(initial_segments, store.length))
        self.leaf_capacity = leaf_capacity
        self.max_segments = max_segments or min(store.length, 4 * initial_segments)
        self.buffer_capacity = buffer_capacity
        boundaries = self._even_boundaries(store.length, initial_segments)
        self.root = DsTreeNode(boundaries=boundaries, depth=0, is_leaf=True)
        self._buffer: BufferPool | None = None

    @staticmethod
    def _even_boundaries(length: int, segments: int) -> np.ndarray:
        base = length // segments
        remainder = length % segments
        widths = np.full(segments, base, dtype=np.int64)
        widths[:remainder] += 1
        boundaries = np.zeros(segments + 1, dtype=np.int64)
        boundaries[1:] = np.cumsum(widths)
        return boundaries

    # -- construction ----------------------------------------------------------------
    def _build(self) -> None:
        data = self.store.scan()
        self._buffer = BufferPool(
            capacity_series=self.buffer_capacity,
            series_bytes=self.store.series_bytes,
            counter=self.store.counter,
            page_series=self.store.series_per_page,
        )
        for position in range(self.store.count):
            self._insert(position, data[position].astype(np.float64))
        self._buffer.flush_all()

    def _insert(self, position: int, series: np.ndarray) -> None:
        node = self.root
        while not node.is_leaf:
            if node.synopsis is None:
                node.synopsis = NodeSynopsis.from_series(series, node.boundaries)
            else:
                node.synopsis.update(series)
            node = node.route(series)
        if node.synopsis is None:
            node.synopsis = NodeSynopsis.from_series(series, node.boundaries)
        else:
            node.synopsis.update(series)
        node.positions.append(position)
        self._buffer.add(id(node))
        if node.size > self.leaf_capacity:
            self._split_leaf(node)

    # -- splitting ----------------------------------------------------------------------
    def _candidate_policies(self, node: DsTreeNode, data: np.ndarray) -> list[SplitPolicy]:
        policies: list[SplitPolicy] = []
        boundaries = node.boundaries
        segments = len(boundaries) - 1
        for segment in range(segments):
            chunk = data[:, boundaries[segment] : boundaries[segment + 1]]
            means = chunk.mean(axis=1)
            stds = chunk.std(axis=1)
            policies.append(
                SplitPolicy(kind="mean", segment=segment, threshold=float(np.median(means)))
            )
            policies.append(
                SplitPolicy(kind="std", segment=segment, threshold=float(np.median(stds)))
            )
            # Vertical split: subdivide this segment in half if allowed.
            width = boundaries[segment + 1] - boundaries[segment]
            if width >= 2 and segments < self.max_segments:
                refined = self._refine_boundaries(boundaries, segment)
                left_chunk = data[:, refined[segment] : refined[segment + 1]]
                policies.append(
                    SplitPolicy(
                        kind="mean",
                        segment=segment,
                        threshold=float(np.median(left_chunk.mean(axis=1))),
                        vertical=True,
                        child_boundaries=refined,
                    )
                )
        return policies

    @staticmethod
    def _refine_boundaries(boundaries: np.ndarray, segment: int) -> np.ndarray:
        start = boundaries[segment]
        stop = boundaries[segment + 1]
        middle = start + (stop - start) // 2
        return np.concatenate(
            [boundaries[: segment + 1], [middle], boundaries[segment + 1 :]]
        ).astype(np.int64)

    def _policy_quality(
        self, policy: SplitPolicy, node: DsTreeNode, data: np.ndarray
    ) -> float:
        """Quality of a split: balance of the partition times the value spread.

        This plays the role of the QoS measure (derived from upper/lower
        bounds) used by the original DSTree to rank candidate splits: a good
        split separates the series into two well-populated groups whose
        feature values are far apart.
        """
        boundaries = policy.child_boundaries if policy.vertical else node.boundaries
        start = boundaries[policy.segment]
        stop = boundaries[policy.segment + 1]
        chunk = data[:, start:stop]
        values = chunk.mean(axis=1) if policy.kind == "mean" else chunk.std(axis=1)
        left = values <= policy.threshold
        left_count = int(left.sum())
        right_count = values.shape[0] - left_count
        if left_count == 0 or right_count == 0:
            return -np.inf
        balance = min(left_count, right_count) / values.shape[0]
        spread = float(values.std())
        return balance * (1.0 + spread)

    def _split_leaf(self, node: DsTreeNode) -> None:
        data = self.store.peek(np.asarray(node.positions)).astype(np.float64)
        policies = self._candidate_policies(node, data)
        scored = [(self._policy_quality(p, node, data), i, p) for i, p in enumerate(policies)]
        scored.sort(key=lambda item: (-item[0], item[1]))
        best_quality, _, best = scored[0]
        if not np.isfinite(best_quality):
            # Every candidate split puts all series on one side; keep the leaf.
            return

        node.is_leaf = False
        node.policy = best
        child_boundaries = (
            best.child_boundaries if best.vertical else node.boundaries
        )
        node.left = DsTreeNode(
            boundaries=child_boundaries, depth=node.depth + 1, is_leaf=True, parent=node
        )
        node.right = DsTreeNode(
            boundaries=child_boundaries, depth=node.depth + 1, is_leaf=True, parent=node
        )
        positions = node.positions
        node.positions = []
        self._buffer.flush(id(node))
        for position, series in zip(positions, data):
            child = node.route(series)
            child.positions.append(position)
            if child.synopsis is None:
                child.synopsis = NodeSynopsis.from_series(series, child.boundaries)
            else:
                child.synopsis.update(series)
            self._buffer.add(id(child))
        for child in (node.left, node.right):
            if child.size > self.leaf_capacity:
                self._split_leaf(child)

    def _collect_footprint(self) -> None:
        leaves = self.root.leaves()
        self.index_stats.total_nodes = sum(1 for _ in self.root.iter_nodes())
        self.index_stats.leaf_nodes = len(leaves)
        self.index_stats.leaf_fill_factors = [
            leaf.size / self.leaf_capacity for leaf in leaves
        ]
        self.index_stats.leaf_depths = [leaf.depth for leaf in leaves]
        per_node = 256  # synopsis + policy bookkeeping
        self.index_stats.memory_bytes = self.index_stats.total_nodes * per_node
        self.index_stats.disk_bytes = self.store.count * self.store.series_bytes

    # -- search -------------------------------------------------------------------------
    def _leaf_for(self, query: np.ndarray) -> DsTreeNode:
        node = self.root
        while not node.is_leaf:
            node = node.route(query)
        return node

    def _scan_leaf(
        self,
        node: DsTreeNode,
        query: np.ndarray,
        answers: KnnAnswerSet,
        stats: QueryStats,
    ) -> None:
        if not node.positions:
            return
        block = self.store.read_block(np.asarray(node.positions))
        distances = squared_euclidean_batch(query, block)
        answers.offer_batch(np.asarray(node.positions), distances)
        stats.series_examined += len(node.positions)
        stats.leaves_visited += 1
        stats.nodes_visited += 1

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        answers = KnnAnswerSet(k)
        leaf = self._leaf_for(query)
        self._scan_leaf(leaf, query, answers, stats)
        return answers

    def _query_stats_cache(self, query: np.ndarray):
        """Per-query cache of segment (means, stds, widths) by segmentation.

        A DSTree traversal revisits the same few segmentations (vertical
        splits only refine a handful of them), so the query-side statistics
        feeding the batch lower bound are computed once per segmentation.
        """
        cache: dict[bytes, tuple] = {}

        def stats_for(boundaries: np.ndarray) -> tuple:
            key = boundaries.tobytes()
            out = cache.get(key)
            if out is None:
                out = query_segment_stats(query, boundaries)
                cache[key] = out
            return out

        return stats_for

    def _children_bounds(
        self, node: DsTreeNode, stats_for
    ) -> list[tuple[DsTreeNode, float]]:
        """Lower bounds for a node's children via one batch synopsis call."""
        children, stacked = node.child_bound_arrays()
        out = []
        if children:
            means, stds, widths = stats_for(children[0].boundaries)
            bounds = synopses_lower_bounds(means, stds, widths, stacked)
            out.extend((child, float(b)) for child, b in zip(children, bounds))
        # Children without a synopsis cannot be pruned (bound 0).
        for child in (node.left, node.right):
            if child is not None and child.synopsis is None:
                out.append((child, 0.0))
        return out

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = KnnAnswerSet(k)
        start_leaf = self._leaf_for(query)
        self._scan_leaf(start_leaf, query, answers, stats)

        counter = itertools.count()
        heap: list[tuple[float, int, DsTreeNode]] = []
        stats_for = self._query_stats_cache(query)

        def push(node: DsTreeNode, bound: float) -> None:
            stats.lower_bounds_computed += 1
            if bound * bound < answers.worst_squared_distance:
                heapq.heappush(heap, (bound, next(counter), node))

        if self.root.synopsis is None:
            push(self.root, 0.0)
        else:
            push(self.root, self.root.synopsis.lower_bound(query))
        while heap:
            bound, _, node = heapq.heappop(heap)
            if bound * bound >= answers.worst_squared_distance:
                break
            stats.nodes_visited += 1
            if node.is_leaf:
                if node is start_leaf:
                    continue
                self._scan_leaf(node, query, answers, stats)
                continue
            for child, child_bound in self._children_bounds(node, stats_for):
                push(child, child_bound)
        return answers

    def _range_exact(
        self, query: np.ndarray, radius: float, stats: QueryStats
    ) -> RangeAnswerSet:
        """r-range query: visit every subtree whose synopsis bound is within range."""
        answers = RangeAnswerSet(radius=radius)
        stats_for = self._query_stats_cache(query)
        root_bound = 0.0 if self.root.synopsis is None else self.root.synopsis.lower_bound(query)
        stats.lower_bounds_computed += 1
        if root_bound > radius:
            return answers
        stack = [self.root]
        while stack:
            node = stack.pop()
            stats.nodes_visited += 1
            if node.is_leaf:
                if not node.positions:
                    continue
                block = self.store.read_block(np.asarray(node.positions))
                distances = squared_euclidean_batch(query, block)
                stats.series_examined += len(node.positions)
                stats.leaves_visited += 1
                answers.offer_batch(np.asarray(node.positions), distances)
                continue
            for child, bound in self._children_bounds(node, stats_for):
                stats.lower_bounds_computed += 1
                if bound <= radius:
                    stack.append(child)
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            leaf_capacity=self.leaf_capacity,
            max_segments=self.max_segments,
            initial_segments=len(self.root.boundaries) - 1,
        )
        return info
