"""DSTree: a data-adaptive and dynamic segmentation index (EAPCA-based).

Every node keeps an EAPCA synopsis (per-segment ranges of means and standard
deviations) over its own segmentation.  Construction is bulk-loaded by
default: the whole collection lands in the root and overflowing nodes are
split recursively, with candidate split policies — horizontal splits on a
segment's mean or standard deviation, and vertical splits that first refine
the segmentation — scored from vectorized per-segment statistics over the full
candidate block; the policy with the best expected separation wins (the
heuristic role played by the upper/lower bound based quality measure in the
original paper).  The per-series insert path is retained (``append``) for
series added after the initial load.  Query answering uses the node synopsis
lower bound to prune subtrees, giving the paper's observed behaviour:
expensive (CPU-heavy) index construction, very fast queries.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from ...core.answers import KnnAnswerSet, RangeAnswerSet
from ...core.buffer import BufferPool
from ...core.distance import squared_euclidean_batch
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ...summarization.eapca import (
    NodeSynopsis,
    batch_segment_statistics,
    query_segment_stats,
    synopses_lower_bounds,
    synopsis_from_statistics,
    synopsis_from_stream,
)
from ..base import SearchMethod
from .node import DsTreeNode, SplitPolicy

__all__ = ["DsTreeIndex"]


class DsTreeIndex(SearchMethod):
    """DSTree index.

    Parameters
    ----------
    store:
        The raw-data store.
    initial_segments:
        Number of segments of the root segmentation.
    leaf_capacity:
        Maximum series per leaf.
    max_segments:
        Cap on how far vertical splits may refine the segmentation.
    buffer_capacity:
        Optional in-memory buffer budget (in series) during construction.
    build_mode:
        ``"bulk"`` (default) recursively partitions whole position blocks;
        ``"incremental"`` forces the legacy one-series-at-a-time insert loop
        (the two produce query-equivalent trees).
    build_chunk_rows:
        Rows per streamed chunk for the build passes (``None`` = the store's
        default); never changes the built tree.
    """

    name = "dstree"
    supports_approximate = True
    supports_bulk_build = True

    def __init__(
        self,
        store: SeriesStore,
        initial_segments: int = 4,
        leaf_capacity: int = 100,
        max_segments: int | None = None,
        buffer_capacity: int | None = None,
        build_mode: str = "bulk",
        build_chunk_rows: int | None = None,
    ) -> None:
        super().__init__(store, build_mode=build_mode, build_chunk_rows=build_chunk_rows)
        if leaf_capacity <= 0:
            raise ValueError("leaf_capacity must be positive")
        initial_segments = max(1, min(initial_segments, store.length))
        self.leaf_capacity = leaf_capacity
        self.max_segments = max_segments or min(store.length, 4 * initial_segments)
        self.buffer_capacity = buffer_capacity
        boundaries = self._even_boundaries(store.length, initial_segments)
        self.root = DsTreeNode(boundaries=boundaries, depth=0, is_leaf=True)
        self._buffer: BufferPool | None = None

    @staticmethod
    def _even_boundaries(length: int, segments: int) -> np.ndarray:
        base = length // segments
        remainder = length % segments
        widths = np.full(segments, base, dtype=np.int64)
        widths[:remainder] += 1
        boundaries = np.zeros(segments + 1, dtype=np.int64)
        boundaries[1:] = np.cumsum(widths)
        return boundaries

    # -- construction ----------------------------------------------------------------
    def _make_buffer(self) -> BufferPool:
        return BufferPool(
            capacity_series=self.buffer_capacity,
            series_bytes=self.store.series_bytes,
            counter=self.store.counter,
            page_series=self.store.series_per_page,
        )

    def _incremental_build(self) -> None:
        data = self.store.scan()
        self._buffer = self._make_buffer()
        for position in range(self.store.count):
            self._insert(position, data[position].astype(np.float64))
        self._buffer.flush_all()

    def _bulk_build(self) -> None:
        """Array-native construction: the whole collection lands in the root,
        then overflowing nodes split recursively on vectorized block
        statistics — the per-series routing loop never runs.

        All raw-data access streams in chunks: the root synopsis folds one
        accounted sequential pass (exactly a scan()'s counters), and every
        split re-reads only its own node's rows through the unaccounted
        chunked peek — so peak residency is one chunk plus one node's compact
        per-row statistics, never the float64 collection.
        """
        self._buffer = self._make_buffer()
        root = self.root
        root.positions.extend(np.arange(self.store.count, dtype=np.int64))
        root.synopsis = synopsis_from_stream(
            self.store.scan_blocks(chunk_rows=self.build_chunk_rows), root.boundaries
        )
        self._buffer.add(id(root), root.size)
        if root.size > self.leaf_capacity:
            self._split_leaf(root)
        self._buffer.flush_all()

    def _insert(self, position: int, series: np.ndarray) -> None:
        node = self.root
        while not node.is_leaf:
            if node.synopsis is None:
                node.synopsis = NodeSynopsis.from_series(series, node.boundaries)
            else:
                node.synopsis.update(series)
            # The child synopsis about to be updated is stacked inside this
            # node's cached bound matrices; queries interleaved with appends
            # must not prune against the stale (tighter) ranges.
            node._child_bound_cache = None
            node = node.route(series)
        if node.synopsis is None:
            node.synopsis = NodeSynopsis.from_series(series, node.boundaries)
        else:
            node.synopsis.update(series)
        node.positions.append(position)
        self._buffer.add(id(node))
        if node.size > self.leaf_capacity:
            self._split_leaf(node)

    def append(self, position: int) -> None:
        """Insert one more series from the store into the built index.

        This is the retained incremental path: bulk loading covers the initial
        collection, appends route through the same per-series machinery and
        keep the tree query-equivalent.
        """
        self._require_built()
        if self._buffer is None or self._buffer.counter is not self.store.counter:
            # Rebuild the pool when the store was re-attached (persistence
            # reload, grown collection) so spill I/O lands on the live counter.
            self._buffer = self._make_buffer()
        series = np.asarray(self.store.peek(position), dtype=np.float64)
        self._insert(position, series)
        # Appends settle immediately: unlike a build there is no later
        # flush_all, so leaving the series buffered would accumulate phantom
        # in-memory state (and eventually spurious spill accounting).
        self._buffer.flush_all()

    # -- splitting ----------------------------------------------------------------------
    def _vertical_candidates(self, boundaries: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """Segments eligible for a vertical split, with their refined boundaries."""
        segments = len(boundaries) - 1
        out = []
        for segment in range(segments):
            width = boundaries[segment + 1] - boundaries[segment]
            if width >= 2 and segments < self.max_segments:
                out.append((segment, self._refine_boundaries(boundaries, segment)))
        return out

    def _node_blocks(self, positions: np.ndarray):
        """The rows of one node as a chunked ``(slice, float64 block)`` stream."""
        return self.store.peek_chunks(positions, chunk_rows=self.build_chunk_rows)

    def _node_statistics(
        self, boundaries: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list[tuple[int, np.ndarray, np.ndarray]]]:
        """Per-row split statistics of one node, streamed over its rows.

        Returns ``(means, stds, verticals)``: the ``(size, segments)``
        mean/std columns over ``boundaries`` plus, per vertically-splittable
        segment, ``(segment, refined_boundaries, left_half_means)``.  These
        compact columns (a few float64 per row) are everything split scoring
        and redistribution need — the raw rows are consumed one chunk at a
        time and never held, and every value matches the historical
        whole-block computation bitwise because the statistics are row-local.
        """
        segments = len(boundaries) - 1
        count = positions.size
        means = np.empty((count, segments), dtype=np.float64)
        stds = np.empty((count, segments), dtype=np.float64)
        verticals = [
            (segment, refined, np.empty(count, dtype=np.float64))
            for segment, refined in self._vertical_candidates(boundaries)
        ]
        for rows, block in self._node_blocks(positions):
            means[rows], stds[rows] = batch_segment_statistics(block, boundaries)
            for segment, refined, left_means in verticals:
                left_means[rows] = block[
                    :, refined[segment] : refined[segment + 1]
                ].mean(axis=1)
        return means, stds, verticals

    def _candidate_policies(
        self, boundaries: np.ndarray, means: np.ndarray, stds: np.ndarray, verticals
    ) -> list[tuple[SplitPolicy, np.ndarray]]:
        """Candidate split policies with their per-series feature vectors.

        Every policy carries the (already streamed) feature column it splits
        on, so scoring and redistribution reuse it instead of re-reading the
        raw data per policy.
        """
        policies: list[tuple[SplitPolicy, np.ndarray]] = []
        vertical_by_segment = {
            segment: (refined, left_means) for segment, refined, left_means in verticals
        }
        for segment in range(len(boundaries) - 1):
            seg_means = means[:, segment]
            seg_stds = stds[:, segment]
            policies.append(
                (
                    SplitPolicy(
                        kind="mean",
                        segment=segment,
                        threshold=float(np.median(seg_means)),
                    ),
                    seg_means,
                )
            )
            policies.append(
                (
                    SplitPolicy(
                        kind="std",
                        segment=segment,
                        threshold=float(np.median(seg_stds)),
                    ),
                    seg_stds,
                )
            )
            # Vertical split: subdivide this segment in half if allowed.
            if segment in vertical_by_segment:
                refined, left_means = vertical_by_segment[segment]
                policies.append(
                    (
                        SplitPolicy(
                            kind="mean",
                            segment=segment,
                            threshold=float(np.median(left_means)),
                            vertical=True,
                            child_boundaries=refined,
                        ),
                        left_means,
                    )
                )
        return policies

    @staticmethod
    def _refine_boundaries(boundaries: np.ndarray, segment: int) -> np.ndarray:
        start = boundaries[segment]
        stop = boundaries[segment + 1]
        middle = start + (stop - start) // 2
        return np.concatenate(
            [boundaries[: segment + 1], [middle], boundaries[segment + 1 :]]
        ).astype(np.int64)

    @staticmethod
    def _policy_quality(values: np.ndarray, threshold: float) -> float:
        """Quality of a split: balance of the partition times the value spread.

        This plays the role of the QoS measure (derived from upper/lower
        bounds) used by the original DSTree to rank candidate splits: a good
        split separates the series into two well-populated groups whose
        feature values are far apart.
        """
        left_count = int(np.count_nonzero(values <= threshold))
        right_count = values.shape[0] - left_count
        if left_count == 0 or right_count == 0:
            return -np.inf
        balance = min(left_count, right_count) / values.shape[0]
        spread = float(values.std())
        return balance * (1.0 + spread)

    def _split_leaf(self, node: DsTreeNode) -> None:
        """Split an overflowing node on its best candidate policy.

        Works on the node's whole position block, streamed: policies are
        scored from per-segment statistics accumulated one chunk at a time,
        and the winning policy's feature column partitions the block with one
        mask — both children adopt their positions contiguously and receive
        synopses assembled from the already-streamed columns (horizontal
        splits) or from one more chunked pass at the refined segmentation
        (vertical splits).  The raw rows are never held whole; the bulk
        loader and the incremental insert path both funnel splits through
        here, and the result is bitwise identical to the historical
        materialize-the-block path.
        """
        positions = node.position_block()
        means, stds, verticals = self._node_statistics(node.boundaries, positions)
        candidates = self._candidate_policies(node.boundaries, means, stds, verticals)
        scored = [
            (self._policy_quality(values, policy.threshold), i, policy, values)
            for i, (policy, values) in enumerate(candidates)
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        best_quality, _, best, best_values = scored[0]
        if not np.isfinite(best_quality):
            # Every candidate split puts all series on one side; keep the leaf.
            return

        node.is_leaf = False
        node.policy = best
        child_boundaries = best.child_boundaries if best.vertical else node.boundaries
        node.left = DsTreeNode(
            boundaries=child_boundaries, depth=node.depth + 1, is_leaf=True, parent=node
        )
        node.right = DsTreeNode(
            boundaries=child_boundaries, depth=node.depth + 1, is_leaf=True, parent=node
        )
        node.clear_payload()
        self._buffer.flush(id(node))
        left_mask = best_values <= best.threshold
        # After the partition mask only the horizontal case still needs the
        # stat columns (the children inherit the segmentation); dropping the
        # rest here keeps at most one node's statistics (plus one streamed
        # chunk) resident through the synopsis passes and the recursion below.
        stat_columns = None if best.vertical else (means, stds)
        del means, stds, verticals, candidates, scored, best_values
        for child, mask in ((node.left, left_mask), (node.right, ~left_mask)):
            child.positions.extend(positions[mask])
            if stat_columns is None:
                # The children live on a refined segmentation the parent's
                # stat columns don't cover; fold their ranges in one more
                # chunked pass over just this child's rows.
                child.synopsis = synopsis_from_stream(
                    self._node_blocks(child.position_block()), child.boundaries
                )
            else:
                child.synopsis = synopsis_from_statistics(
                    child.boundaries, stat_columns[0][mask], stat_columns[1][mask]
                )
            self._buffer.add(id(child), child.size)
        del stat_columns, left_mask
        for child in (node.left, node.right):
            if child.size > self.leaf_capacity:
                self._split_leaf(child)

    def _collect_footprint(self) -> None:
        leaves = self.root.leaves()
        self.index_stats.total_nodes = sum(1 for _ in self.root.iter_nodes())
        self.index_stats.leaf_nodes = len(leaves)
        self.index_stats.leaf_fill_factors = [
            leaf.size / self.leaf_capacity for leaf in leaves
        ]
        self.index_stats.leaf_depths = [leaf.depth for leaf in leaves]
        per_node = 256  # synopsis + policy bookkeeping
        self.index_stats.memory_bytes = self.index_stats.total_nodes * per_node
        self.index_stats.disk_bytes = self.store.count * self.store.series_bytes

    # -- search -------------------------------------------------------------------------
    def _leaf_for(self, query: np.ndarray) -> DsTreeNode:
        node = self.root
        while not node.is_leaf:
            node = node.route(query)
        return node

    def _scan_leaf(
        self,
        node: DsTreeNode,
        query: np.ndarray,
        answers: KnnAnswerSet,
        stats: QueryStats,
    ) -> None:
        if node.size == 0:
            return
        positions = node.position_block()
        block = self.store.read_block(positions)
        distances = squared_euclidean_batch(query, block)
        answers.offer_batch(positions, distances)
        stats.series_examined += node.size
        stats.leaves_visited += 1
        stats.nodes_visited += 1

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        answers = KnnAnswerSet(k)
        leaf = self._leaf_for(query)
        self._scan_leaf(leaf, query, answers, stats)
        return answers

    def _query_stats_cache(self, query: np.ndarray):
        """Per-query cache of segment (means, stds, widths) by segmentation.

        A DSTree traversal revisits the same few segmentations (vertical
        splits only refine a handful of them), so the query-side statistics
        feeding the batch lower bound are computed once per segmentation.
        """
        cache: dict[bytes, tuple] = {}

        def stats_for(boundaries: np.ndarray) -> tuple:
            key = boundaries.tobytes()
            out = cache.get(key)
            if out is None:
                out = query_segment_stats(query, boundaries)
                cache[key] = out
            return out

        return stats_for

    def _children_bounds(
        self, node: DsTreeNode, stats_for
    ) -> list[tuple[DsTreeNode, float]]:
        """Lower bounds for a node's children via one batch synopsis call."""
        children, stacked = node.child_bound_arrays()
        out = []
        if children:
            means, stds, widths = stats_for(children[0].boundaries)
            bounds = synopses_lower_bounds(means, stds, widths, stacked)
            out.extend((child, float(b)) for child, b in zip(children, bounds))
        # Children without a synopsis cannot be pruned (bound 0).
        for child in (node.left, node.right):
            if child is not None and child.synopsis is None:
                out.append((child, 0.0))
        return out

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = self._make_answer_set(k)
        start_leaf = self._leaf_for(query)
        self._scan_leaf(start_leaf, query, answers, stats)

        counter = itertools.count()
        heap: list[tuple[float, int, DsTreeNode]] = []
        stats_for = self._query_stats_cache(query)

        def push(node: DsTreeNode, bound: float) -> None:
            stats.lower_bounds_computed += 1
            # <=: equality must not prune (positional tie-break on equal distances).
            if bound * bound <= answers.worst_squared_distance:
                heapq.heappush(heap, (bound, next(counter), node))

        if self.root.synopsis is None:
            push(self.root, 0.0)
        else:
            push(self.root, self.root.synopsis.lower_bound(query))
        while heap:
            bound, _, node = heapq.heappop(heap)
            if bound * bound > answers.worst_squared_distance:
                break
            stats.nodes_visited += 1
            if node.is_leaf:
                if node is start_leaf:
                    continue
                self._scan_leaf(node, query, answers, stats)
                continue
            for child, child_bound in self._children_bounds(node, stats_for):
                push(child, child_bound)
        return answers

    def _range_exact(
        self, query: np.ndarray, radius: float, stats: QueryStats
    ) -> RangeAnswerSet:
        """r-range query: visit every subtree whose synopsis bound is within range."""
        answers = RangeAnswerSet(radius=radius)
        stats_for = self._query_stats_cache(query)
        root_bound = 0.0 if self.root.synopsis is None else self.root.synopsis.lower_bound(query)
        stats.lower_bounds_computed += 1
        if root_bound > radius:
            return answers
        stack = [self.root]
        while stack:
            node = stack.pop()
            stats.nodes_visited += 1
            if node.is_leaf:
                if node.size == 0:
                    continue
                positions = node.position_block()
                block = self.store.read_block(positions)
                distances = squared_euclidean_batch(query, block)
                stats.series_examined += node.size
                stats.leaves_visited += 1
                answers.offer_batch(positions, distances)
                continue
            for child, bound in self._children_bounds(node, stats_for):
                stats.lower_bounds_computed += 1
                if bound <= radius:
                    stack.append(child)
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            leaf_capacity=self.leaf_capacity,
            max_segments=self.max_segments,
            initial_segments=len(self.root.boundaries) - 1,
            build_mode=self.build_mode,
        )
        return info
