"""DSTree: data-adaptive dynamic segmentation index."""

from .index import DsTreeIndex
from .node import DsTreeNode, SplitPolicy

__all__ = ["DsTreeIndex", "DsTreeNode", "SplitPolicy"]
