"""VA+file: a quantization-based filter file with exact refinement.

The VA+file keeps, for every series, a compact cell approximation (the VA+
quantization of its DFT coefficients).  An exact query proceeds in two phases:

1. *Filtering*: the approximation file is scanned sequentially; for every series
   a lower bound (and optionally an upper bound) on its distance to the query is
   derived from its cell.  The k-th smallest upper bound caps the candidate set.
2. *Refinement*: surviving candidates are visited in increasing lower-bound
   order; the scan stops as soon as the next lower bound exceeds the distance of
   the current k-th nearest neighbor.  Every candidate visit costs one random
   access into the raw file, which is why the paper counts VA+file among the
   skip-sequential, random-access-bound methods (like ADS+), but with fewer
   accesses thanks to its tighter, data-adaptive cells.
"""

from __future__ import annotations

import numpy as np

from ...core.answers import KnnAnswerSet, RangeAnswerSet
from ...core.distance import squared_euclidean_batch
from ...core.stats import QueryStats
from ...core.storage import SeriesStore
from ...summarization.vaplus import VaPlusSummarizer
from ..base import SearchMethod

__all__ = ["VaPlusFileIndex"]


class VaPlusFileIndex(SearchMethod):
    """VA+file over DFT coefficients.

    Parameters
    ----------
    store:
        The raw-data store.
    coefficients:
        Number of DFT values retained (16 in the paper).
    bits_per_dimension:
        Average quantization bit budget per dimension (redistributed
        non-uniformly by energy).
    sample_size:
        Number of series sampled to learn the bit allocation and cells.
    refinement_batch:
        Candidates refined per batch; consecutive positions inside one batch are
        merged into contiguous skip-sequential reads.
    """

    name = "va+file"
    supports_approximate = True

    def __init__(
        self,
        store: SeriesStore,
        coefficients: int = 16,
        bits_per_dimension: int = 4,
        sample_size: int = 2048,
        refinement_batch: int = 64,
    ) -> None:
        super().__init__(store)
        coefficients = min(coefficients, store.length)
        self.summarizer = VaPlusSummarizer(store.length, coefficients, bits_per_dimension)
        self.coefficients = coefficients
        self.bits_per_dimension = bits_per_dimension
        self.sample_size = sample_size
        self.refinement_batch = max(1, refinement_batch)
        self._cells: np.ndarray | None = None

    # -- construction ----------------------------------------------------------------
    def _build(self) -> None:
        data = self.store.scan()
        sample_count = min(self.sample_size, self.store.count)
        self.summarizer.fit(data[:sample_count])
        self._cells = self.summarizer.transform_batch(data)

    def _collect_footprint(self) -> None:
        # The VA+file has no tree: its footprint is the approximation file.
        bits = (
            int(self.summarizer.bit_allocation.sum())
            if self.summarizer.bit_allocation is not None
            else self.coefficients * self.bits_per_dimension
        )
        approx_bytes = (bits * self.store.count + 7) // 8
        self.index_stats.total_nodes = 0
        self.index_stats.leaf_nodes = 0
        self.index_stats.memory_bytes = approx_bytes
        self.index_stats.disk_bytes = approx_bytes

    # -- search ----------------------------------------------------------------------------
    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        """Visit only the candidates in the k best cells (no guarantee)."""
        answers = KnnAnswerSet(k)
        query_dft = self.summarizer.dft_of(query)
        bounds = self.summarizer.lower_bound_batch(query_dft, self._cells)
        stats.lower_bounds_computed += bounds.shape[0]
        best = np.argsort(bounds, kind="stable")[: max(k, 16)]
        block = self.store.read_block(best)
        distances = squared_euclidean_batch(query, block)
        answers.offer_batch(best, distances)
        stats.series_examined += best.shape[0]
        return answers

    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        answers = self._make_answer_set(k)
        query_dft = self.summarizer.dft_of(query)

        # Phase 1: sequential scan of the approximation file.
        bounds = self.summarizer.lower_bound_batch(query_dft, self._cells)
        stats.lower_bounds_computed += bounds.shape[0]
        order = np.argsort(bounds, kind="stable")

        # Phase 2: refinement in lower-bound order with early termination.
        # Strict >: a candidate whose bound ties the k-th distance may still
        # win the positional tie-break, so equality must not terminate.
        cursor = 0
        total = order.shape[0]
        while cursor < total:
            threshold = answers.worst_squared_distance
            bound = bounds[order[cursor]]
            if bound * bound > threshold:
                break
            batch = [int(order[cursor])]
            cursor += 1
            while (
                cursor < total
                and len(batch) < self.refinement_batch
                and bounds[order[cursor]] ** 2 <= threshold
            ):
                batch.append(int(order[cursor]))
                cursor += 1
            batch_positions = np.sort(np.asarray(batch))
            for start, stop in _contiguous_runs(batch_positions):
                block = self.store.read_contiguous(int(start), int(stop))
                positions = np.arange(start, stop)
                distances = squared_euclidean_batch(query, block)
                answers.offer_batch(positions, distances)
                stats.series_examined += int(stop - start)
        return answers

    def _range_exact(
        self, query: np.ndarray, radius: float, stats: QueryStats
    ) -> RangeAnswerSet:
        """r-range query: refine exactly the series whose cell bound is in range."""
        answers = RangeAnswerSet(radius=radius)
        query_dft = self.summarizer.dft_of(query)
        bounds = self.summarizer.lower_bound_batch(query_dft, self._cells)
        stats.lower_bounds_computed += bounds.shape[0]
        survivors = np.sort(np.flatnonzero(bounds <= radius))
        for start, stop in _contiguous_runs(survivors):
            block = self.store.read_contiguous(int(start), int(stop))
            distances = squared_euclidean_batch(query, block)
            stats.series_examined += int(stop - start)
            for offset, sq in enumerate(distances):
                answers.offer(int(start) + offset, float(sq))
        return answers

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            coefficients=self.coefficients,
            bits_per_dimension=self.bits_per_dimension,
        )
        return info


def _contiguous_runs(positions: np.ndarray):
    """Yield (start, stop) pairs covering consecutive runs in sorted positions."""
    if positions.size == 0:
        return
    breaks = np.flatnonzero(np.diff(positions) > 1)
    start_idx = 0
    for b in breaks:
        yield positions[start_idx], positions[b] + 1
        start_idx = b + 1
    yield positions[start_idx], positions[-1] + 1
