"""VA+file quantization-based filter file."""

from .index import VaPlusFileIndex

__all__ = ["VaPlusFileIndex"]
