"""Parallel sharded execution: any method, partitioned and run on all cores.

:class:`ShardedMethod` splits a :class:`~repro.core.storage.SeriesStore` into
``shards`` contiguous partitions, builds one instance of any registered
:class:`~repro.indexes.base.SearchMethod` per partition (concurrently), and
answers queries by fanning out over the shards on a pluggable
:class:`~repro.core.parallel.Executor`:

* **thread mode** (the default): shards run on a persistent thread pool in
  shared memory — zero serialization, and NumPy kernels that release the GIL
  scale across cores.  Python-heavy tree descent does not (the GIL serializes
  it), which is what process mode exists for.
* **process mode** (``executor="process"`` / ``REPRO_EXECUTOR=process``):
  shards run on a persistent warm process pool.  Tasks ship *plans* — method
  name + params + a picklable backend handle (path + row range), never raw
  data; in-memory collections are spilled once to a temporary ``.npy`` and
  shipped as mmap slices of the spill.  Each worker process rebuilds (or
  reuses, via a per-worker cache keyed by dataset fingerprint + shard slice +
  method signature) its shard's index, and returns answers plus
  :class:`~repro.core.stats.AccessCounter` / ``QueryStats`` deltas for
  post-join merging.

Query semantics are executor-independent:

* **k-NN**: every shard searches its partition; shards publish their local
  best-so-far into a shared monotone radius — an in-process
  :class:`~repro.core.parallel.SharedRadius` on threads, a shared-memory
  :class:`~repro.core.parallel.ProcessSharedRadius` slot on processes — that
  the other shards read to prune harder.  The per-shard
  :class:`~repro.core.answers.KnnAnswerSet` results are merged with the
  deterministic ``(distance, position)`` tie-break, so the merged answers are
  **byte-identical** to running the unsharded method — and identical for any
  worker count and either executor, including ``workers=1``.
* **batch k-NN**: the query batch is chunked and every (shard, chunk) pair is
  one task, so inter-query and intra-query parallelism compose; each query
  carries its own shared radius across shards, and shards with a vectorized
  batch path (flat, MASS) keep it per shard.  (For those two GEMM-based batch
  kernels the *distances* may differ from the unsharded batch call in the
  final ulp — BLAS blocking depends on tile shape — exactly the caveat the
  batch API already carries relative to per-query search; both executors use
  the same chunk layout, so thread and process answers stay byte-identical to
  each other.)
* **range / epsilon queries**: same fan-out, with concatenated match lists
  (range) or merged bounded answer sets (the M-tree's epsilon search).

Accounting follows the library's per-worker protocol: every task reads
through a *forked* shard store (fresh counter) — in process mode the fork
crosses a pickle boundary and its counter delta rides back in the task result
— and the coordinating thread merges the counters after the join, so
per-query stats are the exact sum of the per-shard stats in both modes.

The wrapper is itself a :class:`SearchMethod`, registered under the name
prefix ``"sharded:<inner>"`` (e.g. ``create_method("sharded:isax2+", store,
shards=4, workers=4, leaf_capacity=100)``), so engines, runners, benchmarks,
and persistence treat it like any other method.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..core.answers import KnnAnswerSet, Neighbor, RangeAnswerSet
from ..core.faults import take_kill_budget
from ..core.integrity import CorruptionError
from ..core.parallel import (
    Executor,
    ProcessSharedRadius,
    SharedRadius,
    TaskOutcome,
    chunk_slices,
    resolve_executor,
    resolve_workers,
)
from ..core.queries import KnnQuery
from ..core.stats import QueryStats
from ..core.storage import SeriesStore
from .base import SearchMethod, SearchResult

__all__ = ["ShardedMethod", "SharedKnnAnswerSet"]


class SharedKnnAnswerSet(KnnAnswerSet):
    """A k-NN answer set whose pruning threshold is tightened across shards.

    The *content* of the set is purely local (each shard keeps its own top-k),
    but the :attr:`worst_squared_distance` read by the shard's pruning logic
    is the minimum of the local threshold and the shared radius — any object
    with the :class:`~repro.core.parallel.SharedRadius` ``value``/``tighten``
    API, including its shared-memory process variant.  The shared value is an
    upper bound on the final merged k-th distance, so pruning against it never
    discards a merged-top-k candidate; it only skips work another shard has
    already made redundant.  Admissions publish the local threshold back.
    """

    def __init__(self, k: int, shared) -> None:
        super().__init__(k)
        self._shared = shared

    @property
    def worst_squared_distance(self) -> float:
        local = KnnAnswerSet.worst_squared_distance.fget(self)
        return min(local, self._shared.value)

    def offer(self, position: int, squared_distance: float) -> bool:
        admitted = super().offer(position, squared_distance)
        if admitted:
            local = KnnAnswerSet.worst_squared_distance.fget(self)
            if local < float("inf"):
                self._shared.tighten(local)
        return admitted


@dataclass
class _Shard:
    """One partition: its global offset, its store, and its inner method."""

    index: int
    offset: int
    store: SeriesStore | None
    method: SearchMethod
    #: worker-cache key for process dispatch; ``None`` until first computed,
    #: reset whenever the shard's rows change (extend/repartition/re-attach).
    task_key: tuple | None = None


# --------------------------------------------------------------------------- #
# Process-mode shard tasks (coordinator side builds them, workers execute)
# --------------------------------------------------------------------------- #


@dataclass
class _ShardTask:
    """A picklable shard task plan: what to run, over which bytes.

    Ships a method name + params + a by-path store handle — never raw data —
    plus the operation payload (query arrays, k, shared-radius slot indices).
    ``key`` identifies the shard's built index in the per-worker cache;
    ``kill`` is the fault-injection flag consumed from the coordinator-side
    ``kill_worker`` budget (the worker SIGKILLs itself on arrival).
    """

    key: tuple
    store: SeriesStore
    method_name: str
    params: dict
    op: str
    payload: dict = field(default_factory=dict)
    kill: bool = False
    #: force a rebuild even on a warm cache.  Explicit ``build()`` tasks set
    #: this so build accounting is executor-independent (a build the user asked
    #: for always reads and charges its data); query tasks leave it off and
    #: reuse whatever the worker already built.
    fresh: bool = False


#: per-worker-process cache of built shard indexes.  Keyed by
#: (content fingerprint, shard row range, method name, params signature), so
#: repeated queries against an unchanged shard reuse the built index and only
#: the first task per (worker, shard) pays the build.  LRU-bounded so long
#: sweeps over many collections don't accumulate every index ever built.
_WORKER_METHODS: "OrderedDict[tuple, SearchMethod]" = OrderedDict()
_WORKER_CACHE_LIMIT = 32


def _params_signature(params: dict) -> tuple:
    return tuple(sorted((key, repr(value)) for key, value in params.items()))


def _content_key(store: SeriesStore) -> str:
    """Fingerprint of a shard's bytes: geometry + a deterministic row sample.

    Reads through the *unwrapped* backend so fault injection (transients,
    corruption) cannot destabilize cache keys — the key names bytes at rest,
    not what a faulty read happens to return.
    """
    backend = store.backend
    inner = getattr(backend, "inner", backend)
    digest = hashlib.sha256()
    count = int(store.count)
    digest.update(repr((count, int(store.length), str(inner.dtype))).encode())
    if count:
        positions = sorted({0, count - 1, *range(0, count, max(1, count // 64))})
        rows = inner.take(np.asarray(positions, dtype=np.int64))
        digest.update(np.ascontiguousarray(rows).tobytes())
    return digest.hexdigest()


def _slot_answer_factory(slots: list):
    """Answer-set factory wiring shared-radius slots to queries, in order.

    Mirrors the thread path's radius factory, including the contract check:
    ``_batch_answer_sets`` implementations must create exactly one answer set
    per query, in query order — violations raise rather than silently
    crossing radii between queries.  ``None`` slots (slot-table overflow, or
    no executor sharing) get a plain local answer set: less cross-shard
    pruning, identical answers.
    """
    pending = iter(slots)

    def factory(k: int) -> KnnAnswerSet:
        try:
            slot = next(pending)
        except StopIteration:
            raise RuntimeError(
                "_batch_answer_sets created more answer sets than "
                "queries; implementations must create exactly one "
                "answer set per query, in query order"
            ) from None
        if slot is None:
            return KnnAnswerSet(k)
        return SharedKnnAnswerSet(k, ProcessSharedRadius(slot))

    return factory


def _method_blob(method: SearchMethod) -> bytes:
    """Pickle a built method with its store detached (no raw data in transit)."""
    base_store = method._base_store
    method._base_store = None
    try:
        return pickle.dumps(method, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        method._base_store = base_store


def _worker_method(task: _ShardTask) -> SearchMethod:
    """The (cached) built index for ``task``'s shard, bound to the task store.

    Cache hits rebind the cached method to the task's store — each task ships
    a fresh fork (fresh counter, fresh fault incarnation), so retried tasks
    re-roll transient faults exactly like thread-mode re-forks.
    """
    method = None if task.fresh else _WORKER_METHODS.get(task.key)
    if method is None:
        from ..core.registry import create_method

        method = create_method(task.method_name, task.store, **task.params)
        method.build()
        _WORKER_METHODS[task.key] = method
        _WORKER_METHODS.move_to_end(task.key)
        while len(_WORKER_METHODS) > _WORKER_CACHE_LIMIT:
            _WORKER_METHODS.popitem(last=False)
    else:
        _WORKER_METHODS.move_to_end(task.key)
        method.store = task.store
    return method


def _execute_shard_task(task: _ShardTask):
    """Process-pool entry point: run one shard task, return result + delta.

    Returns ``(result, counter_delta)`` where ``result`` is op-specific and
    ``counter_delta`` is the :class:`AccessCounter` accumulated by this task's
    store — the cross-process half of the fork/merge accounting protocol.
    Query deltas exclude any cache-miss build this task happened to pay
    (matching thread mode, where builds charge at build time, not per query);
    ``"build"`` tasks return the build's own delta.
    """
    if task.kill:
        os.kill(os.getpid(), signal.SIGKILL)
    dispatch_counter = task.store.counter_snapshot()
    method = _worker_method(task)
    store = method.store
    if task.op == "build":
        result = (_method_blob(method), method.index_stats)
        return result, store.since(dispatch_counter)
    payload = task.payload
    before = store.counter_snapshot()
    local = QueryStats(dataset_size=store.count)
    if task.op == "knn":
        # Unlimited factory bound to the query's one slot — mirrors the
        # thread path, where every answer set a shard makes for this query
        # shares the same radius.
        slot = payload["slots"][0]
        if slot is None:
            factory = KnnAnswerSet
        else:
            factory = lambda kk: SharedKnnAnswerSet(kk, ProcessSharedRadius(slot))  # noqa: E731
        with method.execution_context(answer_factory=factory):
            answers = method._knn_exact(payload["query"], int(payload["k"]), local)
        result = (answers, local)
    elif task.op == "batch":
        factory = _slot_answer_factory(payload["slots"])
        with method.execution_context(answer_factory=factory):
            result = method._batch_answer_sets(payload["queries"], int(payload["k"]))
    elif task.op == "range":
        answers = method._range_exact(payload["query"], payload["radius"], local)
        result = (answers, local)
    elif task.op == "approx":
        answers = method._knn_approximate(payload["query"], int(payload["k"]), local)
        result = (answers, local)
    elif task.op == "bounded":
        answers = method._knn_bounded(
            payload["query"], int(payload["k"]), local, payload["epsilon"]
        )
        result = (answers, local)
    else:
        raise ValueError(f"unknown shard task op {task.op!r}")
    return result, store.since(before)


class ShardedMethod(SearchMethod):
    """Partition-parallel wrapper around any registered search method.

    Parameters
    ----------
    store:
        The raw-data store over the full collection.
    inner:
        Registry name of the wrapped method (``"isax2+"``, ``"flat"``, ...).
        Wrapping another sharded method is rejected.
    shards:
        Number of contiguous partitions (default: the worker count).  Clamped
        to the collection size, so tiny collections never plan empty shards.
    workers:
        Pool width for builds and searches (default: ``REPRO_WORKERS`` or the
        CPU count).  ``workers=1`` runs the identical code path sequentially.
    executor:
        Fan-out backend: ``"thread"`` (default), ``"process"``, or an
        :class:`~repro.core.parallel.Executor` instance.  ``None`` defers to
        the ``REPRO_EXECUTOR`` environment variable.  Process mode answers
        byte-identically to thread mode; it wins when per-shard work is
        Python-bound (tree descent) and loses on small collections or
        GEMM-bound flat scans (task pickling + result shipping overhead).
    shard_attempts:
        How many times a failed shard task is executed before it counts as
        permanently failed (default 2: one retry).  Each attempt runs on a
        *fresh* fork of the shard store, so a worker that died mid-query is
        replaced wholesale rather than resumed — in process mode that
        includes a worker process lost to SIGKILL, whose shard re-executes on
        a fresh worker from a transparently respawned pool.
        :class:`CorruptionError` short-circuits the retries — re-reading
        damaged bytes cannot help.
    allow_partial:
        Off (the default), a permanently failed shard fails the whole query
        with the shard's original exception.  On, the query returns a
        *degraded* answer over the surviving shards, with
        ``QueryStats.degraded`` set and ``QueryStats.shards_failed`` counting
        the dropped partitions — correct for the data examined, possibly
        incomplete.
    deadline_seconds:
        Optional per-query time budget; shard tasks not finished in time are
        dropped as failed.  Only meaningful with ``allow_partial=True``
        (rejected otherwise), since a deadline exists to trade completeness
        for latency.
    inner_params / **params:
        Forwarded to every inner method's constructor.
    """

    name = "sharded"
    is_index = True
    supports_bulk_build = False

    def __init__(
        self,
        store: SeriesStore,
        inner: str = "flat",
        shards: int | None = None,
        workers: int | None = None,
        executor: "str | Executor | None" = None,
        shard_attempts: int = 2,
        allow_partial: bool = False,
        deadline_seconds: float | None = None,
        repartition_factor: float | None = 2.0,
        inner_params: dict | None = None,
        **params,
    ) -> None:
        inner_name = str(inner).lower()
        if inner_name.startswith("sharded"):
            raise ValueError("sharded methods cannot be nested")
        self.inner_name = inner_name
        merged = dict(inner_params or {})
        merged.update(params)
        self.inner_params = merged
        self.workers = resolve_workers(workers)
        resolved_executor = resolve_executor(executor, self.workers)
        self._executor_obj: Executor | None = resolved_executor
        #: the kind string re-resolved after unpickling (executors hold pools
        #: and shared-memory tables; only their kind crosses a pickle).
        self._executor_spec = resolved_executor.kind
        self.shard_attempts = int(shard_attempts)
        if self.shard_attempts < 1:
            raise ValueError("shard_attempts must be at least 1")
        self.allow_partial = bool(allow_partial)
        self.deadline_seconds = None if deadline_seconds is None else float(deadline_seconds)
        if self.deadline_seconds is not None:
            if self.deadline_seconds <= 0:
                raise ValueError("deadline_seconds must be positive")
            if not self.allow_partial:
                raise ValueError(
                    "deadline_seconds requires allow_partial=True: a deadline "
                    "trades completeness for latency, which only a degraded "
                    "answer can express"
                )
        self._requested_shards = int(shards) if shards is not None else self.workers
        if self._requested_shards <= 0:
            raise ValueError("shards must be a positive integer")
        self.repartition_factor = (
            None if not repartition_factor else float(repartition_factor)
        )
        if self.repartition_factor is not None and self.repartition_factor <= 1.0:
            raise ValueError("repartition_factor must exceed 1.0 (or be None)")
        self.repartitions = 0
        self._shards: list[_Shard] = []
        self._spill_dir: tempfile.TemporaryDirectory | None = None
        self._spill_store: SeriesStore | None = None
        self._spill_rows = -1
        super().__init__(store)
        self._shards = self._plan_shards(store)
        self.name = f"sharded:{self.inner_name}"
        self.index_stats.method = self.name
        self.supports_approximate = bool(
            self._shards and self._shards[0].method.supports_approximate
        )

    # -- executor ---------------------------------------------------------------
    @property
    def executor(self) -> Executor:
        """The fan-out backend (lazily re-resolved after unpickling)."""
        obj = self._executor_obj
        if obj is None:
            obj = self._executor_obj = resolve_executor(
                self._executor_spec, self.workers
            )
        return obj

    @property
    def executor_kind(self) -> str:
        return self._executor_spec

    def _use_process(self) -> bool:
        return self.executor.kind == "process"

    # -- shard planning ---------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _plan_shards(self, store: SeriesStore, rows: int | None = None) -> list[_Shard]:
        from ..core.registry import create_method

        total = store.count if rows is None else int(rows)
        shards: list[_Shard] = []
        # chunk_slices clamps the part count to the row count, so a collection
        # smaller than the requested shard count plans fewer (never empty)
        # shards, and an empty collection plans none.
        for i, sl in enumerate(chunk_slices(total, self._requested_shards)):
            shard_store = self._shard_store(store, i, sl)
            method = create_method(self.inner_name, shard_store, **self.inner_params)
            shards.append(
                _Shard(index=i, offset=sl.start, store=shard_store, method=method)
            )
        return shards

    def _shard_store(self, store: SeriesStore, index: int, sl: slice) -> SeriesStore:
        # Zero-copy partition through the backend layer: in-memory shards view
        # the parent array, mmap shards are (path, row-range) handles onto the
        # same file — both stay picklable and reopen cleanly per worker.
        return store.slice(sl.start, sl.stop, name=f"{store.dataset.name}#shard{index}")

    def _on_store_attached(self, store: SeriesStore | None) -> None:
        # Re-slice shard stores whenever the base store is (re-)attached —
        # this is how a persisted sharded index reconnects to live data.
        if store is None or not getattr(self, "_shards", None):
            return
        slices = chunk_slices(store.count, len(self._shards))
        if len(slices) != len(self._shards):
            raise ValueError(
                f"cannot attach a store with {store.count} rows to a sharded "
                f"index built over {len(self._shards)} shards: re-slicing "
                f"would leave {len(self._shards) - len(slices)} shard(s) "
                "empty; rebuild the index over the new collection instead"
            )
        self._invalidate_process_state()
        for shard, sl in zip(self._shards, slices):
            shard.offset = sl.start
            shard.store = self._shard_store(store, shard.index, sl)
            shard.method.store = shard.store
            shard.task_key = None

    def _invalidate_process_state(self) -> None:
        """Forget the memory spill; worker caches key off content, not identity."""
        self._spill_store = None
        self._spill_rows = -1

    def close(self) -> None:
        """Release pooled resources (idempotent; the method stays usable).

        Closes the executor's pool unless it came from the shared registry
        (``REPRO_EXECUTOR``-driven process pools are reused across methods and
        owned by :func:`~repro.core.parallel.shutdown_shared_executors`), and
        removes the temporary memory-spill file if process dispatch created
        one.  The next parallel call lazily recreates what it needs.
        """
        executor = self._executor_obj
        if executor is not None and not executor.shared:
            executor.close()
        self._invalidate_process_state()
        spill_dir = self._spill_dir
        if spill_dir is not None:
            self._spill_dir = None
            spill_dir.cleanup()

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        # Executors hold pools and shared-memory tables; spills are per-process
        # temporaries.  Both are recreated lazily from the kind string.
        state["_executor_obj"] = None
        state["_spill_dir"] = None
        state["_spill_store"] = None
        state["_spill_rows"] = -1
        if state.get("_base_store") is None:
            # Persistence detaches the top store before pickling; detach the
            # shard stores too so no raw data lands in the index file.  The
            # stores are rebuilt by ``_on_store_attached`` when a store is
            # reassigned (which ``save_method`` does right after pickling).
            for shard in self._shards:
                shard.store = None
                shard.method.store = None
        return state

    # -- construction -----------------------------------------------------------
    def _build(self) -> None:
        """Build every shard concurrently and aggregate the index stats."""
        shard_stats = self._build_shards(self._shards)
        total = self.index_stats
        for stats in shard_stats:
            total.total_nodes += stats.total_nodes
            total.leaf_nodes += stats.leaf_nodes
            total.memory_bytes += stats.memory_bytes
            total.disk_bytes += stats.disk_bytes
            total.leaf_fill_factors.extend(stats.leaf_fill_factors)
            total.leaf_depths.extend(stats.leaf_depths)

    def _build_shards(self, shards: list[_Shard]) -> list:
        """Build ``shards`` on the active executor; returns per-shard stats.

        Thread mode builds in place.  Process mode fans the builds out to the
        pool — each worker builds its shard GIL-free, seeds its index cache,
        and ships the built method back (pickled, store detached) so the
        coordinator's copy is identical to a local build; counter deltas ride
        the task results.  Build failures always raise (``allow_partial``
        degrades *answers*; a missing shard index is a broken method, not a
        degraded one), though killed workers still get their ``shard_attempts``
        re-executions first.
        """
        if not shards:
            return []
        if self._use_process():
            units = [(shard, "build", {}) for shard in shards]
            successes = self._fan_out_process(units, stats=None, require_all=True)
            stats_list = []
            for shard, (blob, stats) in successes:
                method = pickle.loads(blob)
                method.store = shard.store
                shard.method = method
                stats_list.append(stats)
            return stats_list

        def build_one(shard: _Shard):
            shard.method.build()
            return shard.method.index_stats

        shard_stats = self.executor.map(build_one, shards)
        counter = self.store.counter
        for shard in shards:
            counter.merge(shard.store.counter)
        return shard_stats

    def _collect_footprint(self) -> None:
        """Aggregated in :meth:`_build`; nothing further to collect."""

    def append(self, position: int) -> None:
        """Route one appended row into the tail shard (see :meth:`extend`)."""
        self.extend(int(position), int(position) + 1)

    def extend(self, start: int, stop: int | None = None) -> int:
        """Bulk-insert newly ingested rows ``[start, stop)`` into the index.

        Appends route to the *tail* shard: its store is re-sliced to cover
        the new rows (zero-copy) and the inner method's own :meth:`extend`
        absorbs them, so every other shard — and any query running against
        it — is untouched.  A method planned over an *empty* collection has
        no shards yet; its first extend plans and builds them.  When
        sustained ingest skews the tail past ``repartition_factor`` times the
        mean shard size, the collection is re-partitioned into balanced
        contiguous shards and rebuilt (:meth:`repartition`), restoring
        parallel query speedup.
        """
        self._require_built()
        start = int(start)
        stop = self.store.count if stop is None else int(stop)
        if not (0 <= start <= stop <= self.store.count):
            raise ValueError(
                f"extend range [{start}, {stop}) out of bounds for "
                f"{self.store.count} rows"
            )
        if stop <= start:
            return 0
        if not self._shards:
            if start != 0:
                raise ValueError(
                    f"extend must start at the indexed row count 0; got {start}"
                )
            self._shards = self._plan_shards(self.store, rows=stop)
            self._build_shards(self._shards)
            self.supports_approximate = bool(
                self._shards and self._shards[0].method.supports_approximate
            )
            self._invalidate_process_state()
            self._maybe_repartition()
            return stop - start
        tail = self._shards[-1]
        local_old = int(tail.store.count)
        indexed = tail.offset + local_old
        if start != indexed:
            raise ValueError(
                f"extend must start at the indexed row count {indexed}; "
                f"got {start}"
            )
        tail.store = self._shard_store(
            self.store, tail.index, slice(tail.offset, stop)
        )
        tail.method.store = tail.store
        tail.method.extend(local_old, stop - tail.offset)
        tail.task_key = None  # the tail's rows changed: new worker-cache key
        self._invalidate_process_state()
        self._maybe_repartition()
        return stop - start

    def _maybe_repartition(self) -> None:
        if self.repartition_factor is None or len(self._shards) < 2:
            return
        total = sum(int(s.store.count) for s in self._shards)
        tail_rows = int(self._shards[-1].store.count)
        if tail_rows * len(self._shards) > self.repartition_factor * total:
            self.repartition()

    def repartition(self) -> None:
        """Re-plan balanced contiguous shards over the current store and rebuild.

        The heavyweight half of live ingest: amortized by the skew threshold,
        so steady appends pay per-row insert cost almost always and a full
        rebuild only when the tail has grown far past its siblings.
        """
        self._shards = self._plan_shards(self.store)
        self.repartitions += 1
        self._invalidate_process_state()
        self._build_shards(self._shards)

    # -- shard task helpers -------------------------------------------------------
    def _deadline(self) -> float | None:
        """Absolute monotonic deadline for one fan-out, or ``None``."""
        if self.deadline_seconds is None:
            return None
        return time.monotonic() + self.deadline_seconds

    def _run_with_attempts(self, execute, shard: _Shard, deadline: float | None):
        """Execute one shard task with re-fork-and-retry failure recovery.

        Each attempt forks the shard store afresh — the forked reader *is* the
        replaceable worker, so a failed execution is thrown away wholesale
        (partial counters included) and re-run from clean state.  Counters are
        only surfaced from the attempt that succeeds.  A
        :class:`CorruptionError` stops the retries immediately: the damage is
        at rest, and re-reading the same bytes cannot produce a different
        digest.  Returns ``(result, counter, extra_attempts)``; raises the
        last failure when every attempt is exhausted.
        """
        failure: Exception | None = None
        for attempt in range(self.shard_attempts):
            if attempt and deadline is not None and time.monotonic() >= deadline:
                break
            reader = shard.store.fork()
            try:
                result = execute(shard, reader)
            except CorruptionError as exc:
                failure = exc
                break
            # repro-lint: disable=no-bare-except -- sanctioned fault-capture
            # seam: the failure is stored and re-raised after the retry loop
            # (shard re-fork/re-execute up to shard_attempts, PR 7).
            except Exception as exc:
                failure = exc
                continue
            return result, reader.counter, attempt
        raise failure if failure is not None else TimeoutError(
            f"shard {shard.index} missed the fan-out deadline"
        )

    def _fan_out(self, run_shard, stats: QueryStats | None = None):
        """Run ``run_shard(shard, reader)`` per shard; merge forked counters.

        Every shard gets a forked store (private counter) for the duration of
        the call; after the ordered join the forks are merged into the current
        thread's store counter, so accounting rolls up exactly once whether
        this search runs standalone or nested under an outer execution
        context.

        Failure semantics: a shard task that raises is re-executed on a fresh
        fork up to ``shard_attempts`` times.  If it still fails (or misses the
        per-query deadline), either the original exception propagates
        (``allow_partial=False``) or the shard is dropped and the degradation
        is recorded in ``stats``.  Returns ``(shard, result)`` pairs for the
        shards that succeeded — callers must not assume one entry per shard.
        """
        deadline = self._deadline()

        def one(shard: _Shard):
            return self._run_with_attempts(run_shard, shard, deadline)

        outcomes = self.executor.map_outcomes(one, self._shards, deadline=deadline)
        counter = self.store.counter
        successes = []
        failed = 0
        reexecutions = 0
        for shard, outcome in zip(self._shards, outcomes):
            if outcome.ok:
                result, fork_counter, extra = outcome.value
                counter.merge(fork_counter)
                reexecutions += extra
                successes.append((shard, result))
            else:
                failed += 1
        if failed and not self.allow_partial:
            error = next((o.error for o in outcomes if o.error is not None), None)
            if error is not None:
                raise error
            raise TimeoutError(f"{failed} shard task(s) missed the fan-out deadline")
        if stats is not None:
            stats.retries += reexecutions
            if failed:
                stats.shards_failed += failed
                stats.degraded = True
        return successes

    # -- process-mode dispatch ------------------------------------------------
    def _task_key(self, shard: _Shard) -> tuple:
        if shard.task_key is None:
            shard.task_key = (
                _content_key(shard.store),
                shard.offset,
                shard.offset + int(shard.store.count),
                self.inner_name,
                _params_signature(self.inner_params),
            )
        return shard.task_key

    def _task_store(self, shard: _Shard) -> SeriesStore:
        """A picklable-by-path fork of the shard's store for task shipping.

        File-backed shards (mmap / compressed / growable, fault-wrapped or
        not) already pickle as (path, row-range) handles.  In-memory shards
        would pickle their raw rows — instead the full collection is spilled
        once to a temporary ``.npy`` and every shard ships as an mmap slice of
        the spill; the bytes are bit-identical and access accounting is pure
        page geometry, so answers and counters are unchanged.  Each dispatch
        forks the handle, giving retried tasks a fresh fault incarnation
        (transients re-roll) while corruption — keyed to absolute file regions
        — stays deterministic, exactly like thread-mode re-forks.
        """
        store = shard.store
        if store.backend.source_path is not None:
            return store.fork()
        return self._spill_slice(shard).fork()

    def _spill_slice(self, shard: _Shard) -> SeriesStore:
        base = self._ensure_spill()
        start = shard.offset
        stop = start + int(shard.store.count)
        return base.slice(
            start, stop, name=f"{self.store.dataset.name}#shard{shard.index}"
        )

    def _ensure_spill(self) -> SeriesStore:
        store = self.store
        if self._spill_store is not None and self._spill_rows == store.count:
            return self._spill_store
        if self._spill_dir is None:
            self._spill_dir = tempfile.TemporaryDirectory(prefix="repro-spill-")
        path = os.path.join(self._spill_dir.name, f"spill-{store.count}.npy")
        dataset = store.dataset.to_mmap(path)
        self._spill_store = SeriesStore(
            dataset,
            page_bytes=store.page_bytes,
            measure_io=store.measure_io,
            faults=store.faults,
            retry=store.retry,
            verify=store.verify,
        )
        self._spill_rows = store.count
        return self._spill_store

    def _shard_task(self, shard: _Shard, op: str, payload: dict) -> _ShardTask:
        return _ShardTask(
            key=self._task_key(shard),
            store=self._task_store(shard),
            method_name=self.inner_name,
            params=dict(self.inner_params),
            op=op,
            payload=payload,
            kill=take_kill_budget(self.store.faults),
            fresh=op == "build",
        )

    def _process_outcomes(self, units: list, deadline: float | None):
        """Dispatch ``(shard, op, payload)`` units with re-dispatch recovery.

        The process-mode counterpart of :meth:`_run_with_attempts`: a unit
        whose task fails — including every task in flight when a worker
        process is SIGKILLed and the pool breaks — is re-dispatched on a
        fresh store fork (new fault incarnation) up to ``shard_attempts``
        times; the executor transparently respawns a broken pool between
        rounds.  :class:`CorruptionError` and deadline misses do not retry.
        Returns ``(outcomes, extras)`` aligned with ``units``, where
        ``extras`` counts the re-dispatches behind each eventual success.
        """
        executor = self.executor
        outcomes: list[TaskOutcome | None] = [None] * len(units)
        extras = [0] * len(units)
        pending = list(range(len(units)))
        for attempt in range(self.shard_attempts):
            if attempt and deadline is not None and time.monotonic() >= deadline:
                break
            tasks = [
                self._shard_task(units[i][0], units[i][1], units[i][2])
                for i in pending
            ]
            results = executor.map_outcomes(
                _execute_shard_task, tasks, deadline=deadline
            )
            retry = []
            for i, outcome in zip(pending, results):
                outcomes[i] = outcome
                if (
                    outcome.ok
                    or outcome.timed_out
                    or isinstance(outcome.error, CorruptionError)
                ):
                    continue
                retry.append(i)
            if not retry:
                break
            for i in retry:
                extras[i] += 1
            pending = retry
        return outcomes, [
            extra if outcomes[i] is not None and outcomes[i].ok else 0
            for i, extra in enumerate(extras)
        ]

    def _fan_out_process(
        self,
        units: list,
        stats: QueryStats | None = None,
        require_all: bool = False,
    ):
        """Process-mode :meth:`_fan_out`: same merge/degrade semantics.

        Counter deltas from the task results are merged into the coordinating
        store's counter (the pickle-boundary half of the fork/merge protocol);
        failures degrade or raise exactly like the thread path.
        """
        deadline = self._deadline()
        outcomes, extras = self._process_outcomes(units, deadline)
        counter = self.store.counter
        successes = []
        failed = 0
        reexecutions = 0
        for (shard, _op, _payload), outcome, extra in zip(units, outcomes, extras):
            if outcome is not None and outcome.ok:
                result, delta = outcome.value
                counter.merge(delta)
                reexecutions += extra
                successes.append((shard, result))
            else:
                failed += 1
        if failed and (require_all or not self.allow_partial):
            error = next(
                (o.error for o in outcomes if o is not None and o.error is not None),
                None,
            )
            if error is not None:
                raise error
            raise TimeoutError(f"{failed} shard task(s) missed the fan-out deadline")
        if stats is not None:
            stats.retries += reexecutions
            if failed:
                stats.shards_failed += failed
                stats.degraded = True
        return successes

    def _shard_results(self, run_shard, op: str, payload: dict, stats):
        """``(shard, (answers, local_stats))`` pairs from the active executor."""
        if self._use_process():
            units = [(shard, op, payload) for shard in self._shards]
            return self._fan_out_process(units, stats)
        return self._fan_out(run_shard, stats)

    # -- search -------------------------------------------------------------------
    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        shared = SharedRadius()
        slots = self.executor.acquire_radius_slots(1)
        try:

            def run_shard(shard: _Shard, reader: SeriesStore):
                local = QueryStats(dataset_size=reader.count)
                factory = lambda kk: SharedKnnAnswerSet(kk, shared)  # noqa: E731
                with shard.method.execution_context(store=reader, answer_factory=factory):
                    answers = shard.method._knn_exact(query, k, local)
                return answers, local

            payload = {"query": query, "k": int(k), "slots": list(slots)}
            pairs = self._shard_results(run_shard, "knn", payload, stats)
        finally:
            self.executor.release_radius_slots(slots)
        merged = self._make_answer_set(k)
        for shard, (answers, local) in pairs:
            merged.merge(answers, position_offset=shard.offset)
            self._merge_query_stats(stats, local)
        return merged

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        """ng-approximate search: one descent per shard, merged."""

        def run_shard(shard: _Shard, reader: SeriesStore):
            local = QueryStats(dataset_size=reader.count)
            with shard.method.execution_context(store=reader):
                answers = shard.method._knn_approximate(query, k, local)
            return answers, local

        payload = {"query": query, "k": int(k)}
        merged = self._make_answer_set(k)
        for shard, (answers, local) in self._shard_results(
            run_shard, "approx", payload, stats
        ):
            merged.merge(answers, position_offset=shard.offset)
            self._merge_query_stats(stats, local)
        return merged

    def _range_exact(
        self, query: np.ndarray, radius: float, stats: QueryStats
    ) -> RangeAnswerSet:
        def run_shard(shard: _Shard, reader: SeriesStore):
            local = QueryStats(dataset_size=reader.count)
            with shard.method.execution_context(store=reader):
                answers = shard.method._range_exact(query, radius, local)
            return answers, local

        payload = {"query": query, "radius": float(radius)}
        merged = RangeAnswerSet(radius=radius)
        for shard, (answers, local) in self._shard_results(
            run_shard, "range", payload, stats
        ):
            merged.matches.extend(
                Neighbor(distance=n.distance, position=n.position + shard.offset)
                for n in answers.matches
            )
            self._merge_query_stats(stats, local)
        return merged

    def _batch_answer_sets(self, queries: np.ndarray, k: int):
        """Batch fan-out: (shard x query-chunk) tasks on one pool.

        Chunking the batch adds inter-query parallelism on top of the shard
        fan-out when there are more workers than shards; each shard applies
        its own (possibly vectorized) batch path to every chunk.  Every query
        gets its own shared radius, so — exactly like the single-query path —
        an answer found for query ``j`` in one shard tightens every other
        shard's pruning for query ``j``.  The radii are wired in through the
        answer-set factory, relying on the ``_batch_answer_sets`` contract
        that implementations create exactly one answer set per query, in
        query order (violations raise rather than silently crossing radii
        between queries).  Both executors use the same (shard x chunk) task
        layout, so the GEMM tile shapes — and therefore the flat/MASS batch
        distances — are identical in thread and process mode.
        """
        total = queries.shape[0]
        if total == 0:
            return [], []
        chunk_count = max(1, min(total, -(-self.workers // max(1, len(self._shards)))))
        chunks = chunk_slices(total, chunk_count)
        if self._use_process():
            return self._batch_answer_sets_process(queries, k, chunks)
        tasks = [(shard, sl) for sl in chunks for shard in self._shards]
        radii = [SharedRadius() for _ in range(total)]

        def radius_factory(sl: slice):
            pending = iter(range(sl.start, sl.stop))

            def factory(kk: int) -> SharedKnnAnswerSet:
                try:
                    j = next(pending)
                except StopIteration:
                    raise RuntimeError(
                        "_batch_answer_sets created more answer sets than "
                        "queries; implementations must create exactly one "
                        "answer set per query, in query order"
                    ) from None
                return SharedKnnAnswerSet(kk, radii[j])

            return factory

        deadline = self._deadline()

        def execute(task):
            def attempt(shard: _Shard, reader: SeriesStore):
                with shard.method.execution_context(
                    store=reader, answer_factory=radius_factory(task[1])
                ):
                    return shard.method._batch_answer_sets(queries[task[1]], k)

            return self._run_with_attempts(attempt, task[0], deadline)

        outcomes = self.executor.map_outcomes(execute, tasks, deadline=deadline)
        merged_sets = [self._make_answer_set(k) for _ in range(total)]
        merged_stats = [QueryStats(dataset_size=self.store.count) for _ in range(total)]
        counter = self.store.counter
        for (shard, sl), outcome in zip(tasks, outcomes):
            if not outcome.ok:
                if not self.allow_partial:
                    if outcome.error is not None:
                        raise outcome.error
                    raise TimeoutError(
                        f"shard {shard.index} missed the batch fan-out deadline"
                    )
                # Degrade exactly the queries this (shard, chunk) task served.
                for j in range(sl.start, sl.stop):
                    merged_stats[j].shards_failed += 1
                    merged_stats[j].degraded = True
                continue
            (sets, stats_list), fork_counter, extra = outcome.value
            counter.merge(fork_counter)
            for within, (answers, shard_stats) in enumerate(zip(sets, stats_list)):
                j = sl.start + within
                merged_sets[j].merge(answers, position_offset=shard.offset)
                self._merge_query_stats(merged_stats[j], shard_stats)
                merged_stats[j].retries += extra
        return merged_sets, merged_stats

    def _batch_answer_sets_process(self, queries: np.ndarray, k: int, chunks):
        """Process half of :meth:`_batch_answer_sets`: same tasks, same merge."""
        total = queries.shape[0]
        slots = self.executor.acquire_radius_slots(total)
        try:
            units = [
                (
                    shard,
                    "batch",
                    {"queries": queries[sl], "k": int(k), "slots": slots[sl]},
                )
                for sl in chunks
                for shard in self._shards
            ]
            deadline = self._deadline()
            outcomes, extras = self._process_outcomes(units, deadline)
        finally:
            self.executor.release_radius_slots(slots)
        task_spans = [(shard, sl) for sl in chunks for shard in self._shards]
        merged_sets = [self._make_answer_set(k) for _ in range(total)]
        merged_stats = [QueryStats(dataset_size=self.store.count) for _ in range(total)]
        counter = self.store.counter
        for (shard, sl), outcome, extra in zip(task_spans, outcomes, extras):
            if outcome is None or not outcome.ok:
                if not self.allow_partial:
                    error = outcome.error if outcome is not None else None
                    if error is not None:
                        raise error
                    raise TimeoutError(
                        f"shard {shard.index} missed the batch fan-out deadline"
                    )
                for j in range(sl.start, sl.stop):
                    merged_stats[j].shards_failed += 1
                    merged_stats[j].degraded = True
                continue
            (sets, stats_list), delta = outcome.value
            counter.merge(delta)
            for within, (answers, shard_stats) in enumerate(zip(sets, stats_list)):
                j = sl.start + within
                merged_sets[j].merge(answers, position_offset=shard.offset)
                self._merge_query_stats(merged_stats[j], shard_stats)
                merged_stats[j].retries += extra
        return merged_sets, merged_stats

    def knn_epsilon(self, query: KnnQuery, epsilon: float = 0.0) -> SearchResult:
        """Epsilon-approximate k-NN fan-out (inner method must support it).

        Each shard runs the inner bounded search; merged answers keep the
        per-shard ``(1 + epsilon)`` guarantee (with ``epsilon = 0`` the result
        is byte-identical to exact search).  Currently the M-tree is the one
        inner method offering this interface.
        """
        self._require_built()
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not all(hasattr(s.method, "_knn_bounded") for s in self._shards):
            raise NotImplementedError(
                f"{self.inner_name} does not support epsilon-approximate search"
            )
        before = self.store.counter_snapshot()
        stats = QueryStats(dataset_size=self.store.count)
        series = np.asarray(query.series, dtype=np.float64)
        start = time.perf_counter()

        def run_shard(shard: _Shard, reader: SeriesStore):
            local = QueryStats(dataset_size=reader.count)
            with shard.method.execution_context(store=reader):
                answers = shard.method._knn_bounded(series, query.k, local, epsilon)
            return answers, local

        payload = {"query": series, "k": int(query.k), "epsilon": float(epsilon)}
        merged = self._make_answer_set(query.k)
        for shard, (answers, local) in self._shard_results(
            run_shard, "bounded", payload, stats
        ):
            merged.merge(answers, position_offset=shard.offset)
            self._merge_query_stats(stats, local)
        stats.cpu_seconds = time.perf_counter() - start
        self._charge_delta(stats, self.store.since(before))
        return self._package_result(merged, stats)

    @staticmethod
    def _merge_query_stats(total: QueryStats, shard_stats: QueryStats) -> None:
        """Fold one shard's per-query stats into the merged totals.

        Every additive counter sums (``QueryStats.merge``); the dataset size
        stays the full collection's so pruning ratios read globally.
        """
        dataset_size = total.dataset_size
        total.merge(shard_stats)
        total.dataset_size = max(dataset_size, shard_stats.dataset_size)

    # -- description ----------------------------------------------------------------
    def describe(self) -> dict:
        info = super().describe()
        info.update(
            inner=self.inner_name,
            shards=self.shard_count,
            workers=self.workers,
            executor=self.executor_kind,
            shard_attempts=self.shard_attempts,
            allow_partial=self.allow_partial,
            deadline_seconds=self.deadline_seconds,
            repartition_factor=self.repartition_factor,
            repartitions=self.repartitions,
            inner_params=dict(self.inner_params),
        )
        return info
