"""Parallel sharded execution: any method, partitioned and run on all cores.

:class:`ShardedMethod` splits a :class:`~repro.core.storage.SeriesStore` into
``shards`` contiguous partitions, builds one instance of any registered
:class:`~repro.indexes.base.SearchMethod` per partition (concurrently), and
answers queries by fanning out over the shards on a thread pool:

* **k-NN**: every shard searches its partition; shards publish their local
  best-so-far into a :class:`~repro.core.parallel.SharedRadius` (a
  lock-guarded, monotonically tightening squared threshold) that the other
  shards read to prune harder.  The per-shard
  :class:`~repro.core.answers.KnnAnswerSet` results are merged with the
  deterministic ``(distance, position)`` tie-break, so the merged answers are
  **byte-identical** to running the unsharded method — and identical for any
  worker count, including ``workers=1``.
* **batch k-NN**: the query batch is chunked and every (shard, chunk) pair is
  one task, so inter-query and intra-query parallelism compose; each query
  carries its own shared radius across shards, and shards with a vectorized
  batch path (flat, MASS) keep it per shard.  (For those two
  GEMM-based batch kernels the *distances* may differ from the unsharded
  batch call in the final ulp — BLAS blocking depends on tile shape — exactly
  the caveat the batch API already carries relative to per-query search; the
  per-query and tree batch paths remain byte-identical.)
* **range / epsilon queries**: same fan-out, with concatenated match lists
  (range) or merged bounded answer sets (the M-tree's epsilon search).

Accounting follows the library's per-worker protocol: every task reads
through a *forked* shard store (fresh counter), and the coordinating thread
merges the forks into the sharded store's counter after the join — per-query
stats are the exact sum of the per-shard stats.

The wrapper is itself a :class:`SearchMethod`, registered under the name
prefix ``"sharded:<inner>"`` (e.g. ``create_method("sharded:isax2+", store,
shards=4, workers=4, leaf_capacity=100)``), so engines, runners, benchmarks,
and persistence treat it like any other method.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..core.answers import KnnAnswerSet, Neighbor, RangeAnswerSet
from ..core.integrity import CorruptionError
from ..core.parallel import (
    SharedRadius,
    chunk_slices,
    parallel_map,
    parallel_map_outcomes,
    resolve_workers,
)
from ..core.queries import KnnQuery
from ..core.stats import QueryStats
from ..core.storage import SeriesStore
from .base import SearchMethod, SearchResult

__all__ = ["ShardedMethod", "SharedKnnAnswerSet"]

#: guards lazy creation of per-method worker pools (concurrent first queries).
_POOL_CREATION_LOCK = threading.Lock()


class SharedKnnAnswerSet(KnnAnswerSet):
    """A k-NN answer set whose pruning threshold is tightened across shards.

    The *content* of the set is purely local (each shard keeps its own top-k),
    but the :attr:`worst_squared_distance` read by the shard's pruning logic
    is the minimum of the local threshold and the global
    :class:`~repro.core.parallel.SharedRadius`.  The shared value is an upper
    bound on the final merged k-th distance, so pruning against it never
    discards a merged-top-k candidate; it only skips work another shard has
    already made redundant.  Admissions publish the local threshold back.
    """

    def __init__(self, k: int, shared: SharedRadius) -> None:
        super().__init__(k)
        self._shared = shared

    @property
    def worst_squared_distance(self) -> float:
        local = KnnAnswerSet.worst_squared_distance.fget(self)
        return min(local, self._shared.value)

    def offer(self, position: int, squared_distance: float) -> bool:
        admitted = super().offer(position, squared_distance)
        if admitted:
            local = KnnAnswerSet.worst_squared_distance.fget(self)
            if local < float("inf"):
                self._shared.tighten(local)
        return admitted


@dataclass
class _Shard:
    """One partition: its global offset, its store, and its inner method."""

    index: int
    offset: int
    store: SeriesStore | None
    method: SearchMethod


class ShardedMethod(SearchMethod):
    """Partition-parallel wrapper around any registered search method.

    Parameters
    ----------
    store:
        The raw-data store over the full collection.
    inner:
        Registry name of the wrapped method (``"isax2+"``, ``"flat"``, ...).
        Wrapping another sharded method is rejected.
    shards:
        Number of contiguous partitions (default: the worker count).  Clamped
        to the collection size.
    workers:
        Thread-pool width for builds and searches (default: ``REPRO_WORKERS``
        or the CPU count).  ``workers=1`` runs the identical code path
        sequentially.
    shard_attempts:
        How many times a failed shard task is executed before it counts as
        permanently failed (default 2: one retry).  Each attempt runs on a
        *fresh* fork of the shard store, so a worker that died mid-query is
        replaced wholesale rather than resumed.  :class:`CorruptionError`
        short-circuits the retries — re-reading damaged bytes cannot help.
    allow_partial:
        Off (the default), a permanently failed shard fails the whole query
        with the shard's original exception.  On, the query returns a
        *degraded* answer over the surviving shards, with
        ``QueryStats.degraded`` set and ``QueryStats.shards_failed`` counting
        the dropped partitions — correct for the data examined, possibly
        incomplete.
    deadline_seconds:
        Optional per-query time budget; shard tasks not finished in time are
        dropped as failed.  Only meaningful with ``allow_partial=True``
        (rejected otherwise), since a deadline exists to trade completeness
        for latency.
    inner_params / **params:
        Forwarded to every inner method's constructor.
    """

    name = "sharded"
    is_index = True
    supports_bulk_build = False

    def __init__(
        self,
        store: SeriesStore,
        inner: str = "flat",
        shards: int | None = None,
        workers: int | None = None,
        shard_attempts: int = 2,
        allow_partial: bool = False,
        deadline_seconds: float | None = None,
        repartition_factor: float | None = 2.0,
        inner_params: dict | None = None,
        **params,
    ) -> None:
        inner_name = str(inner).lower()
        if inner_name.startswith("sharded"):
            raise ValueError("sharded methods cannot be nested")
        self.inner_name = inner_name
        merged = dict(inner_params or {})
        merged.update(params)
        self.inner_params = merged
        self.workers = resolve_workers(workers)
        self.shard_attempts = int(shard_attempts)
        if self.shard_attempts < 1:
            raise ValueError("shard_attempts must be at least 1")
        self.allow_partial = bool(allow_partial)
        self.deadline_seconds = None if deadline_seconds is None else float(deadline_seconds)
        if self.deadline_seconds is not None:
            if self.deadline_seconds <= 0:
                raise ValueError("deadline_seconds must be positive")
            if not self.allow_partial:
                raise ValueError(
                    "deadline_seconds requires allow_partial=True: a deadline "
                    "trades completeness for latency, which only a degraded "
                    "answer can express"
                )
        self._requested_shards = int(shards) if shards is not None else self.workers
        if self._requested_shards <= 0:
            raise ValueError("shards must be a positive integer")
        self.repartition_factor = (
            None if not repartition_factor else float(repartition_factor)
        )
        if self.repartition_factor is not None and self.repartition_factor <= 1.0:
            raise ValueError("repartition_factor must exceed 1.0 (or be None)")
        self.repartitions = 0
        self._shards: list[_Shard] = []
        self._pool: ThreadPoolExecutor | None = None
        super().__init__(store)
        self._shards = self._plan_shards(store)
        self.name = f"sharded:{self.inner_name}"
        self.index_stats.method = self.name
        self.supports_approximate = bool(
            self._shards and self._shards[0].method.supports_approximate
        )

    # -- shard planning ---------------------------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _plan_shards(self, store: SeriesStore) -> list[_Shard]:
        from ..core.registry import create_method

        shards: list[_Shard] = []
        for i, sl in enumerate(chunk_slices(store.count, self._requested_shards)):
            shard_store = self._shard_store(store, i, sl)
            method = create_method(self.inner_name, shard_store, **self.inner_params)
            shards.append(
                _Shard(index=i, offset=sl.start, store=shard_store, method=method)
            )
        return shards

    def _shard_store(self, store: SeriesStore, index: int, sl: slice) -> SeriesStore:
        # Zero-copy partition through the backend layer: in-memory shards view
        # the parent array, mmap shards are (path, row-range) handles onto the
        # same file — both stay picklable and reopen cleanly per worker.
        return store.slice(sl.start, sl.stop, name=f"{store.dataset.name}#shard{index}")

    def _on_store_attached(self, store: SeriesStore | None) -> None:
        # Re-slice shard stores whenever the base store is (re-)attached —
        # this is how a persisted sharded index reconnects to live data.
        if store is None or not getattr(self, "_shards", None):
            return
        for shard, sl in zip(
            self._shards, chunk_slices(store.count, len(self._shards))
        ):
            shard.offset = sl.start
            shard.store = self._shard_store(store, shard.index, sl)
            shard.method.store = shard.store

    def _executor(self) -> ThreadPoolExecutor | None:
        """The method's persistent worker pool (lazily created).

        Serving-path fan-outs reuse it so a query costs task submission, not
        thread spawn + join.  ``workers=1`` never creates one.
        """
        if self.workers <= 1:
            return None
        if self._pool is None:
            # Double-checked creation: concurrent first queries (e.g. batch
            # chunks from parallel_batch_search) must share one pool rather
            # than racing workers^2 threads into existence.
            with _POOL_CREATION_LOCK:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix=f"sharded-{self.inner_name}",
                    )
        return self._pool

    def close(self) -> None:
        """Release the persistent worker pool (idempotent).

        Worker threads are non-daemon and outlive a discarded method object
        until interpreter exit, so long-lived processes that rebuild sharded
        methods (data refreshes, benchmark sweeps) should close the old
        instance.  The method remains usable afterwards — the next parallel
        call lazily creates a fresh pool.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_pool"] = None  # executors are not picklable; recreated lazily
        if state.get("_base_store") is None:
            # Persistence detaches the top store before pickling; detach the
            # shard stores too so no raw data lands in the index file.  The
            # stores are rebuilt by ``_on_store_attached`` when a store is
            # reassigned (which ``save_method`` does right after pickling).
            for shard in self._shards:
                shard.store = None
                shard.method.store = None
        return state

    # -- construction -----------------------------------------------------------
    def _build(self) -> None:
        """Build every shard concurrently and aggregate the index stats."""

        def build_one(shard: _Shard):
            shard.method.build()
            return shard.method.index_stats

        shard_stats = parallel_map(
            build_one, self._shards, self.workers, pool=self._executor()
        )
        counter = self.store.counter
        total = self.index_stats
        for shard, stats in zip(self._shards, shard_stats):
            counter.merge(shard.store.counter)
            total.total_nodes += stats.total_nodes
            total.leaf_nodes += stats.leaf_nodes
            total.memory_bytes += stats.memory_bytes
            total.disk_bytes += stats.disk_bytes
            total.leaf_fill_factors.extend(stats.leaf_fill_factors)
            total.leaf_depths.extend(stats.leaf_depths)

    def _collect_footprint(self) -> None:
        """Aggregated in :meth:`_build`; nothing further to collect."""

    def append(self, position: int) -> None:
        """Route one appended row into the tail shard (see :meth:`extend`)."""
        self.extend(int(position), int(position) + 1)

    def extend(self, start: int, stop: int | None = None) -> int:
        """Bulk-insert newly ingested rows ``[start, stop)`` into the index.

        Appends route to the *tail* shard: its store is re-sliced to cover
        the new rows (zero-copy) and the inner method's own :meth:`extend`
        absorbs them, so every other shard — and any query running against
        it — is untouched.  When sustained ingest skews the tail past
        ``repartition_factor`` times the mean shard size, the collection is
        re-partitioned into balanced contiguous shards and rebuilt
        (:meth:`repartition`), restoring parallel query speedup.
        """
        self._require_built()
        start = int(start)
        stop = self.store.count if stop is None else int(stop)
        if not (0 <= start <= stop <= self.store.count):
            raise ValueError(
                f"extend range [{start}, {stop}) out of bounds for "
                f"{self.store.count} rows"
            )
        if stop <= start:
            return 0
        tail = self._shards[-1]
        local_old = int(tail.store.count)
        indexed = tail.offset + local_old
        if start != indexed:
            raise ValueError(
                f"extend must start at the indexed row count {indexed}; "
                f"got {start}"
            )
        tail.store = self._shard_store(
            self.store, tail.index, slice(tail.offset, stop)
        )
        tail.method.store = tail.store
        tail.method.extend(local_old, stop - tail.offset)
        self._maybe_repartition()
        return stop - start

    def _maybe_repartition(self) -> None:
        if self.repartition_factor is None or len(self._shards) < 2:
            return
        total = sum(int(s.store.count) for s in self._shards)
        tail_rows = int(self._shards[-1].store.count)
        if tail_rows * len(self._shards) > self.repartition_factor * total:
            self.repartition()

    def repartition(self) -> None:
        """Re-plan balanced contiguous shards over the current store and rebuild.

        The heavyweight half of live ingest: amortized by the skew threshold,
        so steady appends pay per-row insert cost almost always and a full
        rebuild only when the tail has grown far past its siblings.
        """
        self._shards = self._plan_shards(self.store)
        self.repartitions += 1

        def build_one(shard: _Shard):
            shard.method.build()

        parallel_map(build_one, self._shards, self.workers, pool=self._executor())
        counter = self.store.counter
        for shard in self._shards:
            counter.merge(shard.store.counter)

    # -- shard task helpers -------------------------------------------------------
    def _deadline(self) -> float | None:
        """Absolute monotonic deadline for one fan-out, or ``None``."""
        if self.deadline_seconds is None:
            return None
        return time.monotonic() + self.deadline_seconds

    def _run_with_attempts(self, execute, shard: _Shard, deadline: float | None):
        """Execute one shard task with re-fork-and-retry failure recovery.

        Each attempt forks the shard store afresh — the forked reader *is* the
        replaceable worker, so a failed execution is thrown away wholesale
        (partial counters included) and re-run from clean state.  Counters are
        only surfaced from the attempt that succeeds.  A
        :class:`CorruptionError` stops the retries immediately: the damage is
        at rest, and re-reading the same bytes cannot produce a different
        digest.  Returns ``(result, counter, extra_attempts)``; raises the
        last failure when every attempt is exhausted.
        """
        failure: Exception | None = None
        for attempt in range(self.shard_attempts):
            if attempt and deadline is not None and time.monotonic() >= deadline:
                break
            reader = shard.store.fork()
            try:
                result = execute(shard, reader)
            except CorruptionError as exc:
                failure = exc
                break
            except Exception as exc:
                failure = exc
                continue
            return result, reader.counter, attempt
        raise failure if failure is not None else TimeoutError(
            f"shard {shard.index} missed the fan-out deadline"
        )

    def _fan_out(self, run_shard, stats: QueryStats | None = None):
        """Run ``run_shard(shard, reader)`` per shard; merge forked counters.

        Every shard gets a forked store (private counter) for the duration of
        the call; after the ordered join the forks are merged into the current
        thread's store counter, so accounting rolls up exactly once whether
        this search runs standalone or nested under an outer execution
        context.

        Failure semantics: a shard task that raises is re-executed on a fresh
        fork up to ``shard_attempts`` times.  If it still fails (or misses the
        per-query deadline), either the original exception propagates
        (``allow_partial=False``) or the shard is dropped and the degradation
        is recorded in ``stats``.  Returns ``(shard, result)`` pairs for the
        shards that succeeded — callers must not assume one entry per shard.
        """
        deadline = self._deadline()

        def one(shard: _Shard):
            return self._run_with_attempts(run_shard, shard, deadline)

        outcomes = parallel_map_outcomes(
            one, self._shards, self.workers, pool=self._executor(), deadline=deadline
        )
        counter = self.store.counter
        successes = []
        failed = 0
        reexecutions = 0
        for shard, outcome in zip(self._shards, outcomes):
            if outcome.ok:
                result, fork_counter, extra = outcome.value
                counter.merge(fork_counter)
                reexecutions += extra
                successes.append((shard, result))
            else:
                failed += 1
        if failed and not self.allow_partial:
            error = next((o.error for o in outcomes if o.error is not None), None)
            if error is not None:
                raise error
            raise TimeoutError(f"{failed} shard task(s) missed the fan-out deadline")
        if stats is not None:
            stats.retries += reexecutions
            if failed:
                stats.shards_failed += failed
                stats.degraded = True
        return successes

    # -- search -------------------------------------------------------------------
    def _knn_exact(self, query: np.ndarray, k: int, stats: QueryStats) -> KnnAnswerSet:
        shared = SharedRadius()

        def run_shard(shard: _Shard, reader: SeriesStore):
            local = QueryStats(dataset_size=reader.count)
            factory = lambda kk: SharedKnnAnswerSet(kk, shared)  # noqa: E731
            with shard.method.execution_context(store=reader, answer_factory=factory):
                answers = shard.method._knn_exact(query, k, local)
            return answers, local

        merged = self._make_answer_set(k)
        for shard, (answers, local) in self._fan_out(run_shard, stats):
            merged.merge(answers, position_offset=shard.offset)
            self._merge_query_stats(stats, local)
        return merged

    def _knn_approximate(
        self, query: np.ndarray, k: int, stats: QueryStats
    ) -> KnnAnswerSet:
        """ng-approximate search: one descent per shard, merged."""

        def run_shard(shard: _Shard, reader: SeriesStore):
            local = QueryStats(dataset_size=reader.count)
            with shard.method.execution_context(store=reader):
                answers = shard.method._knn_approximate(query, k, local)
            return answers, local

        merged = self._make_answer_set(k)
        for shard, (answers, local) in self._fan_out(run_shard, stats):
            merged.merge(answers, position_offset=shard.offset)
            self._merge_query_stats(stats, local)
        return merged

    def _range_exact(
        self, query: np.ndarray, radius: float, stats: QueryStats
    ) -> RangeAnswerSet:
        def run_shard(shard: _Shard, reader: SeriesStore):
            local = QueryStats(dataset_size=reader.count)
            with shard.method.execution_context(store=reader):
                answers = shard.method._range_exact(query, radius, local)
            return answers, local

        merged = RangeAnswerSet(radius=radius)
        for shard, (answers, local) in self._fan_out(run_shard, stats):
            merged.matches.extend(
                Neighbor(distance=n.distance, position=n.position + shard.offset)
                for n in answers.matches
            )
            self._merge_query_stats(stats, local)
        return merged

    def _batch_answer_sets(self, queries: np.ndarray, k: int):
        """Batch fan-out: (shard x query-chunk) tasks on one pool.

        Chunking the batch adds inter-query parallelism on top of the shard
        fan-out when there are more workers than shards; each shard applies
        its own (possibly vectorized) batch path to every chunk.  Every query
        gets its own :class:`~repro.core.parallel.SharedRadius`, so — exactly
        like the single-query path — an answer found for query ``j`` in one
        shard tightens every other shard's pruning for query ``j``.  The
        radii are wired in through the answer-set factory, relying on the
        ``_batch_answer_sets`` contract that implementations create exactly
        one answer set per query, in query order (violations raise rather
        than silently crossing radii between queries).
        """
        total = queries.shape[0]
        if total == 0:
            return [], []
        chunk_count = max(1, min(total, -(-self.workers // max(1, len(self._shards)))))
        chunks = chunk_slices(total, chunk_count)
        tasks = [(shard, sl) for sl in chunks for shard in self._shards]
        radii = [SharedRadius() for _ in range(total)]

        def radius_factory(sl: slice):
            pending = iter(range(sl.start, sl.stop))

            def factory(kk: int) -> SharedKnnAnswerSet:
                try:
                    j = next(pending)
                except StopIteration:
                    raise RuntimeError(
                        "_batch_answer_sets created more answer sets than "
                        "queries; implementations must create exactly one "
                        "answer set per query, in query order"
                    ) from None
                return SharedKnnAnswerSet(kk, radii[j])

            return factory

        deadline = self._deadline()

        def execute(task):
            def attempt(shard: _Shard, reader: SeriesStore):
                with shard.method.execution_context(
                    store=reader, answer_factory=radius_factory(task[1])
                ):
                    return shard.method._batch_answer_sets(queries[task[1]], k)

            return self._run_with_attempts(attempt, task[0], deadline)

        outcomes = parallel_map_outcomes(
            execute, tasks, self.workers, pool=self._executor(), deadline=deadline
        )
        merged_sets = [self._make_answer_set(k) for _ in range(total)]
        merged_stats = [QueryStats(dataset_size=self.store.count) for _ in range(total)]
        counter = self.store.counter
        for (shard, sl), outcome in zip(tasks, outcomes):
            if not outcome.ok:
                if not self.allow_partial:
                    if outcome.error is not None:
                        raise outcome.error
                    raise TimeoutError(
                        f"shard {shard.index} missed the batch fan-out deadline"
                    )
                # Degrade exactly the queries this (shard, chunk) task served.
                for j in range(sl.start, sl.stop):
                    merged_stats[j].shards_failed += 1
                    merged_stats[j].degraded = True
                continue
            (sets, stats_list), fork_counter, extra = outcome.value
            counter.merge(fork_counter)
            for within, (answers, shard_stats) in enumerate(zip(sets, stats_list)):
                j = sl.start + within
                merged_sets[j].merge(answers, position_offset=shard.offset)
                self._merge_query_stats(merged_stats[j], shard_stats)
                merged_stats[j].retries += extra
        return merged_sets, merged_stats

    def knn_epsilon(self, query: KnnQuery, epsilon: float = 0.0) -> SearchResult:
        """Epsilon-approximate k-NN fan-out (inner method must support it).

        Each shard runs the inner bounded search; merged answers keep the
        per-shard ``(1 + epsilon)`` guarantee (with ``epsilon = 0`` the result
        is byte-identical to exact search).  Currently the M-tree is the one
        inner method offering this interface.
        """
        self._require_built()
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if not all(hasattr(s.method, "_knn_bounded") for s in self._shards):
            raise NotImplementedError(
                f"{self.inner_name} does not support epsilon-approximate search"
            )
        before = self.store.counter_snapshot()
        stats = QueryStats(dataset_size=self.store.count)
        series = np.asarray(query.series, dtype=np.float64)
        start = time.perf_counter()

        def run_shard(shard: _Shard, reader: SeriesStore):
            local = QueryStats(dataset_size=reader.count)
            with shard.method.execution_context(store=reader):
                answers = shard.method._knn_bounded(series, query.k, local, epsilon)
            return answers, local

        merged = self._make_answer_set(query.k)
        for shard, (answers, local) in self._fan_out(run_shard, stats):
            merged.merge(answers, position_offset=shard.offset)
            self._merge_query_stats(stats, local)
        stats.cpu_seconds = time.perf_counter() - start
        self._charge_delta(stats, self.store.since(before))
        return self._package_result(merged, stats)

    @staticmethod
    def _merge_query_stats(total: QueryStats, shard_stats: QueryStats) -> None:
        """Fold one shard's per-query stats into the merged totals.

        Every additive counter sums (``QueryStats.merge``); the dataset size
        stays the full collection's so pruning ratios read globally.
        """
        dataset_size = total.dataset_size
        total.merge(shard_stats)
        total.dataset_size = max(dataset_size, shard_stats.dataset_size)

    # -- description ----------------------------------------------------------------
    def describe(self) -> dict:
        info = super().describe()
        info.update(
            inner=self.inner_name,
            shards=self.shard_count,
            workers=self.workers,
            shard_attempts=self.shard_attempts,
            allow_partial=self.allow_partial,
            deadline_seconds=self.deadline_seconds,
            repartition_factor=self.repartition_factor,
            repartitions=self.repartitions,
            inner_params=dict(self.inner_params),
        )
        return info
