"""Pluggable storage backends: where the raw series bytes actually live.

The paper's headline experiments run on disk-resident collections up to 1TB —
far bigger than RAM — while this reproduction historically required the whole
collection as one in-memory ndarray.  This module separates *where the bytes
live* from *how accesses are accounted*: a :class:`StorageBackend` serves raw
row reads, and :class:`~repro.core.storage.SeriesStore` layers the paper's
page-granular accounting on top.  Two backends are provided:

* :class:`MemoryBackend` — the historical behavior: an in-memory frozen array.
* :class:`MmapBackend` — a memory-mapped ``.npy`` or raw-float32 file.  Reads
  are served straight from the mapping, so the collection is never
  materialized: the OS pages data in on demand and a dataset much larger than
  RAM can be built and queried out-of-core.  Backends are picklable by *path*
  (no raw data in the pickle) and :meth:`MmapBackend.fork` reopens the mapping
  with a private file handle, which is the per-worker contract of the parallel
  execution layer.

Backends are deliberately accounting-free: every read primitive here is raw,
and the counters (and therefore the simulated I/O models) are identical for
every backend by construction, which is what makes memory/mmap answer- and
counter-equivalence testable.
"""

from __future__ import annotations

import abc
import mmap as _mmap
import os
from pathlib import Path

import numpy as np

from .series import RAW_SUFFIXES, SERIES_DTYPE

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "MmapBackend",
    "resolve_backend",
    "touch_pages",
    "BACKEND_KINDS",
    "RAW_SUFFIXES",
]

#: the named backend kinds accepted wherever a backend is chosen by string.
BACKEND_KINDS = ("memory", "mmap")


def touch_pages(array: np.ndarray) -> None:
    """Fault in every OS page backing ``array`` (one element read per page).

    Used by the measured-I/O calibration path: a memory-mapped read returns a
    view without touching the file, so timing it would measure nothing.
    Touching one element per page forces the actual page-ins while reading a
    negligible fraction of the data.
    """
    if array.size == 0:
        return
    arr = array if array.flags.c_contiguous else np.ascontiguousarray(array)
    flat = arr.reshape(-1)
    step = max(1, 4096 // flat.itemsize)
    float(flat[::step].sum())


class StorageBackend(abc.ABC):
    """Raw, accounting-free access to a collection of equal-length series.

    Every read primitive returns arrays that must be treated as read-only
    (in-memory reads are views into a frozen array; mapped reads are views
    into a read-only mapping).  Accounting lives entirely in
    :class:`~repro.core.storage.SeriesStore`, so swapping backends can never
    change a method's counters.
    """

    kind: str = "abstract"

    # -- geometry ------------------------------------------------------------
    @property
    @abc.abstractmethod
    def values(self) -> np.ndarray:
        """The whole collection as one read-only ``(count, length)`` array.

        For the mmap backend this is a lazy view into the mapping — returning
        it costs nothing and slicing it reads only the touched rows.
        """

    @property
    def count(self) -> int:
        return int(self.values.shape[0])

    @property
    def length(self) -> int:
        return int(self.values.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def series_bytes(self) -> int:
        return int(self.length * self.dtype.itemsize)

    @property
    def source_path(self) -> str | None:
        """Path of the backing file (``None`` for in-memory backends)."""
        return None

    # -- raw reads -----------------------------------------------------------
    def read_rows(self, start: int, stop: int) -> np.ndarray:
        """Rows ``start:stop`` as a zero-copy view."""
        return self.values[start:stop]

    def take(self, positions: np.ndarray) -> np.ndarray:
        """The rows at ``positions`` (a copy, by fancy-indexing semantics)."""
        return self.values[positions]

    def row(self, position: int) -> np.ndarray:
        """One row as a zero-copy view."""
        return self.values[position]

    def get(self, key) -> np.ndarray:
        """Arbitrary ndarray indexing (the store's unaccounted ``peek``)."""
        return self.values[key]

    # -- structure -----------------------------------------------------------
    @abc.abstractmethod
    def slice(self, start: int, stop: int) -> "StorageBackend":
        """A zero-copy backend over the contiguous row range ``start:stop``.

        This is how the sharded executor partitions a collection: each shard
        store reads through a sliced backend, which for the mmap backend stays
        picklable by (path, row range) with no raw data attached.
        """

    @abc.abstractmethod
    def fork(self) -> "StorageBackend":
        """A reader handle for one worker.

        In-memory backends are stateless and return themselves; the mmap
        backend reopens the mapping so each worker reads through a private
        file handle.
        """

    def release(self, start: int = 0, stop: int | None = None) -> None:
        """Drop any cached residency for rows ``start:stop`` (best effort).

        A no-op for in-memory backends; the mmap backend advises the kernel
        that the pages are no longer needed, which is what keeps the resident
        set of a streaming scan bounded by the chunk size instead of the file
        size.
        """

    def describe(self) -> dict:
        """Provenance metadata recorded in persistence envelopes."""
        return {
            "kind": self.kind,
            "source_path": self.source_path,
            "count": self.count,
            "length": self.length,
            "dtype": str(self.dtype),
        }


class MemoryBackend(StorageBackend):
    """The historical in-memory backend: one frozen ndarray.

    The constructor clears the array's ``WRITEABLE`` flag — reads hand out
    views, and freezing the backing array is what turns an accidental in-place
    write into an error instead of silent corruption of the collection every
    reader shares.
    """

    kind = "memory"

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=SERIES_DTYPE)
        if values.ndim != 2:
            raise ValueError(f"backend values must be 2-d; got ndim={values.ndim}")
        values.setflags(write=False)
        self._values = values

    @property
    def values(self) -> np.ndarray:
        return self._values

    def slice(self, start: int, stop: int) -> "MemoryBackend":
        return MemoryBackend(self._values[start:stop])

    def fork(self) -> "MemoryBackend":
        return self


class MmapBackend(StorageBackend):
    """A memory-mapped ``.npy`` or raw-float32 file, served without loading.

    Parameters
    ----------
    path:
        File to map.  ``.npy`` files carry their own shape; files with a raw
        suffix (``.f32``/``.raw``/``.bin``) are headerless little-endian
        float32 rows and require ``length``.
    length:
        Series length; mandatory for raw files, validated for ``.npy``.
    start / stop:
        Optional contiguous row range, making the backend a zero-copy slice
        of the file (used by the sharded executor).

    The mapping is opened lazily and dropped on pickling, so backends travel
    as (path, row range) only; unpickling (or :meth:`fork`) reopens the file.
    """

    kind = "mmap"

    def __init__(
        self,
        path: str | Path,
        *,
        length: int | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> None:
        self._path = os.fspath(path)
        self._length = int(length) if length is not None else None
        self._start = int(start)
        self._stop = int(stop) if stop is not None else None
        self._root: np.memmap | None = None
        self._view: np.ndarray | None = None
        self._open()  # validate eagerly; reopened lazily after unpickling

    # -- mapping lifecycle -----------------------------------------------------
    @property
    def is_raw(self) -> bool:
        return Path(self._path).suffix.lower() in RAW_SUFFIXES

    def _open(self) -> np.memmap:
        if self._root is not None:
            return self._root
        path = Path(self._path)
        if not path.exists():
            raise FileNotFoundError(f"dataset file not found: {path}")
        if self.is_raw:
            if self._length is None:
                raise ValueError(
                    f"raw series files ({'/'.join(RAW_SUFFIXES)}) need an explicit "
                    "series length"
                )
            itemsize = np.dtype(SERIES_DTYPE).itemsize
            row_bytes = self._length * itemsize
            size = path.stat().st_size
            if size % row_bytes != 0:
                raise ValueError(
                    f"{path}: size {size} is not a multiple of the "
                    f"{row_bytes}-byte rows implied by length={self._length}"
                )
            if size == 0:
                # Zero-byte files cannot be mapped; a frozen empty array keeps
                # the zero-row collection loadable through the same interface.
                root = np.empty((0, self._length), dtype=SERIES_DTYPE)
                root.setflags(write=False)
            else:
                root = np.memmap(
                    path, dtype=SERIES_DTYPE, mode="r", shape=(size // row_bytes, self._length)
                )
        else:
            root = np.load(path, mmap_mode="r")
            if not isinstance(root, np.memmap):
                raise ValueError(f"{path}: not a memory-mappable .npy array file")
            if root.ndim != 2:
                raise ValueError(f"{path}: expected a 2-d (count, length) array")
            if root.dtype != np.dtype(SERIES_DTYPE):
                raise ValueError(
                    f"{path}: expected dtype {np.dtype(SERIES_DTYPE)}, got {root.dtype}"
                )
            if self._length is not None and root.shape[1] != self._length:
                raise ValueError(
                    f"{path}: series length {root.shape[1]} != expected {self._length}"
                )
            self._length = int(root.shape[1])
        if self._stop is None:
            self._stop = int(root.shape[0])
        if not (0 <= self._start <= self._stop <= root.shape[0]):
            raise ValueError(
                f"{path}: row range [{self._start}, {self._stop}) out of bounds "
                f"for {root.shape[0]} rows"
            )
        self._root = root
        self._view = root[self._start : self._stop]
        return root

    @property
    def values(self) -> np.ndarray:
        if self._view is None:
            self._open()
        return self._view

    @property
    def source_path(self) -> str | None:
        return self._path

    def describe(self) -> dict:
        info = super().describe()
        info.update(format="raw-f32" if self.is_raw else "npy", start=self._start, stop=self._stop)
        return info

    # -- structure -------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "MmapBackend":
        if not (0 <= start <= stop <= self.count):
            raise ValueError(f"slice [{start}, {stop}) out of bounds for {self.count} rows")
        return MmapBackend(
            self._path,
            length=self._length,
            start=self._start + start,
            stop=self._start + stop,
        )

    def fork(self) -> "MmapBackend":
        return MmapBackend(
            self._path, length=self._length, start=self._start, stop=self._stop
        )

    def release(self, start: int = 0, stop: int | None = None) -> None:
        """Advise the kernel to drop the pages backing rows ``start:stop``.

        Read-only and file-backed, so dropping is always safe — a later read
        simply faults the page back in.  Best effort: platforms without
        ``madvise`` ignore the call.
        """
        root = self._open()
        handle = getattr(root, "_mmap", None)
        madvise = getattr(handle, "madvise", None)
        if handle is None or madvise is None:
            return
        row0 = self._start + max(0, start)
        row1 = self._start + (self.count if stop is None else min(stop, self.count))
        if row1 <= row0:
            return
        page = _mmap.PAGESIZE
        data_offset = int(getattr(root, "offset", 0)) % _mmap.ALLOCATIONGRANULARITY
        begin = data_offset + row0 * self.series_bytes
        end = data_offset + row1 * self.series_bytes
        begin -= begin % page
        end = min(len(handle), end + (-end) % page)
        if end <= begin:
            return
        try:
            madvise(_mmap.MADV_DONTNEED, begin, end - begin)
        except (OSError, ValueError):  # pragma: no cover - platform dependent
            pass

    # -- pickling ---------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_root"] = None  # mappings are reopened from the path on unpickle
        state["_view"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def resolve_backend(dataset, backend=None) -> StorageBackend:
    """Resolve a backend choice for ``dataset``.

    ``backend`` may be a :class:`StorageBackend` instance (used as-is), one of
    the names in :data:`BACKEND_KINDS`, or ``None`` — which picks the
    dataset's attached file backend when it has one (``Dataset.from_file``)
    and the in-memory backend otherwise, so existing call sites keep today's
    behavior with zero changes.

    Choosing ``"memory"`` for a file-backed dataset materializes the
    collection into RAM (that is the point of comparing the two backends on
    the same file); choosing ``"mmap"`` requires a file-backed dataset — use
    :meth:`Dataset.from_file` or :meth:`Dataset.to_mmap` first.
    """
    if isinstance(backend, StorageBackend):
        return backend
    attached = getattr(dataset, "backend", None)
    if backend is None:
        return attached if attached is not None else MemoryBackend(dataset.values)
    kind = str(backend).lower()
    if kind == "memory":
        if attached is not None and attached.kind != "memory":
            return MemoryBackend(np.array(dataset.values, dtype=SERIES_DTYPE))
        return MemoryBackend(dataset.values)
    if kind == "mmap":
        if attached is not None and attached.kind == "mmap":
            return attached
        raise ValueError(
            "the mmap backend needs a file-backed dataset; open it with "
            "Dataset.from_file() or spill it with Dataset.to_mmap() first"
        )
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKEND_KINDS}")
