"""Pluggable storage backends: where the raw series bytes actually live.

The paper's headline experiments run on disk-resident collections up to 1TB —
far bigger than RAM — while this reproduction historically required the whole
collection as one in-memory ndarray.  This module separates *where the bytes
live* from *how accesses are accounted*: a :class:`StorageBackend` serves raw
row reads, and :class:`~repro.core.storage.SeriesStore` layers the paper's
page-granular accounting on top.  Two backends are provided:

* :class:`MemoryBackend` — the historical behavior: an in-memory frozen array.
* :class:`MmapBackend` — a memory-mapped ``.npy`` or raw-float32 file.  Reads
  are served straight from the mapping, so the collection is never
  materialized: the OS pages data in on demand and a dataset much larger than
  RAM can be built and queried out-of-core.  Backends are picklable by *path*
  (no raw data in the pickle) and :meth:`MmapBackend.fork` reopens the mapping
  with a private file handle, which is the per-worker contract of the parallel
  execution layer.
* :class:`CompressedBackend` — a ``.rcz`` file of per-block quantized
  (int8/int16), optionally DEFLATE-compressed series
  (:mod:`repro.core.quantize`).  The quantized blocks are the primary storage;
  the collection's canonical float32 values are their deterministic
  dequantization, served block-at-a-time through a small decoded-block cache.
  The backend additionally exposes the integer representation itself
  (:meth:`CompressedBackend.quantized_parts`), which is what the two-phase
  pruned-precision scans filter on before fetching full-precision survivors.

Backends are deliberately accounting-free: every read primitive here is raw,
and the counters (and therefore the simulated I/O models) are identical for
every backend by construction, which is what makes memory/mmap answer- and
counter-equivalence testable.  The one backend-dependent quantity — *physical*
bytes stored for a row range — is reported by geometry-only queries
(:meth:`StorageBackend.physical_bytes`), so the logical/physical accounting
split stays deterministic too.
"""

from __future__ import annotations

import abc
import mmap as _mmap
import os
from collections import OrderedDict
from pathlib import Path

import numpy as np

from .series import RAW_SUFFIXES, SERIES_DTYPE

__all__ = [
    "StorageBackend",
    "MemoryBackend",
    "MmapBackend",
    "CompressedBackend",
    "resolve_backend",
    "touch_pages",
    "BACKEND_KINDS",
    "RAW_SUFFIXES",
]

#: the named backend kinds accepted wherever a backend is chosen by string.
#: ``growable`` (repro.core.growable) is the WAL-backed live-ingest backend.
BACKEND_KINDS = ("memory", "mmap", "compressed", "growable")


def touch_pages(array: np.ndarray) -> None:
    """Fault in every OS page backing ``array`` (one element read per page).

    Used by the measured-I/O calibration path: a memory-mapped read returns a
    view without touching the file, so timing it would measure nothing.
    Touching one element per page forces the actual page-ins while reading a
    negligible fraction of the data.
    """
    if array.size == 0:
        return
    arr = array if array.flags.c_contiguous else np.ascontiguousarray(array)
    flat = arr.reshape(-1)
    step = max(1, 4096 // flat.itemsize)
    float(flat[::step].sum())


class StorageBackend(abc.ABC):
    """Raw, accounting-free access to a collection of equal-length series.

    Every read primitive returns arrays that must be treated as read-only
    (in-memory reads are views into a frozen array; mapped reads are views
    into a read-only mapping).  Accounting lives entirely in
    :class:`~repro.core.storage.SeriesStore`, so swapping backends can never
    change a method's counters.
    """

    kind: str = "abstract"

    # -- geometry ------------------------------------------------------------
    @property
    @abc.abstractmethod
    def values(self) -> np.ndarray:
        """The whole collection as one read-only ``(count, length)`` array.

        For the mmap backend this is a lazy view into the mapping — returning
        it costs nothing and slicing it reads only the touched rows.
        """

    @property
    def count(self) -> int:
        return int(self.values.shape[0])

    @property
    def length(self) -> int:
        return int(self.values.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    @property
    def series_bytes(self) -> int:
        return int(self.length * self.dtype.itemsize)

    @property
    def source_path(self) -> str | None:
        """Path of the backing file (``None`` for in-memory backends)."""
        return None

    @property
    def row_offset(self) -> int:
        """Absolute file row this view starts at (0 for unsliced backends).

        Integrity manifests digest *file* blocks; a sliced shard backend maps
        its view rows to file rows through this offset when verifying.
        """
        return 0

    def checksums(self):
        """The backend's block-checksum manifest, if its file has one.

        Returns a shared :class:`~repro.core.integrity.ChecksumManifest`
        (cached process-wide, so forks and slices share one verified-set) or
        ``None`` when no sidecar exists.  In-memory backends have no stored
        bytes to verify and always return ``None``; the compressed backend
        verifies payload digests internally and returns ``None`` too.
        """
        return None

    # -- physical geometry ----------------------------------------------------
    #: whether the backend stores a quantized representation that the pruned
    #: two-phase scans can filter on (see :meth:`CompressedBackend.quantized_parts`).
    supports_quantized_scan: bool = False

    def physical_bytes(self, start: int, stop: int) -> int:
        """Stored bytes backing rows ``start:stop`` (geometry only, no reads).

        Equal to the logical float32 bytes for uncompressed backends; the
        compressed backend reports the stored bytes of the covering blocks.
        """
        return max(0, int(stop) - int(start)) * self.series_bytes

    def physical_bytes_for(self, positions: np.ndarray) -> int:
        """Stored bytes backing the rows at ``positions`` (geometry only)."""
        return int(np.asarray(positions).size) * self.series_bytes

    # -- raw reads -----------------------------------------------------------
    def read_rows(self, start: int, stop: int) -> np.ndarray:
        """Rows ``start:stop`` as a zero-copy view."""
        return self.values[start:stop]

    def take(self, positions: np.ndarray) -> np.ndarray:
        """The rows at ``positions`` (a copy, by fancy-indexing semantics)."""
        return self.values[positions]

    def row(self, position: int) -> np.ndarray:
        """One row as a zero-copy view."""
        return self.values[position]

    def get(self, key) -> np.ndarray:
        """Arbitrary ndarray indexing (the store's unaccounted ``peek``)."""
        return self.values[key]

    # -- structure -----------------------------------------------------------
    @abc.abstractmethod
    def slice(self, start: int, stop: int) -> "StorageBackend":
        """A zero-copy backend over the contiguous row range ``start:stop``.

        This is how the sharded executor partitions a collection: each shard
        store reads through a sliced backend, which for the mmap backend stays
        picklable by (path, row range) with no raw data attached.
        """

    @abc.abstractmethod
    def fork(self) -> "StorageBackend":
        """A reader handle for one worker.

        In-memory backends are stateless and return themselves; the mmap
        backend reopens the mapping so each worker reads through a private
        file handle.
        """

    def release(self, start: int = 0, stop: int | None = None) -> None:
        """Drop any cached residency for rows ``start:stop`` (best effort).

        A no-op for in-memory backends; the mmap backend advises the kernel
        that the pages are no longer needed, which is what keeps the resident
        set of a streaming scan bounded by the chunk size instead of the file
        size.
        """

    def describe(self) -> dict:
        """Provenance metadata recorded in persistence envelopes."""
        return {
            "kind": self.kind,
            "source_path": self.source_path,
            "count": self.count,
            "length": self.length,
            "dtype": str(self.dtype),
        }


class MemoryBackend(StorageBackend):
    """The historical in-memory backend: one frozen ndarray.

    The constructor clears the array's ``WRITEABLE`` flag — reads hand out
    views, and freezing the backing array is what turns an accidental in-place
    write into an error instead of silent corruption of the collection every
    reader shares.
    """

    kind = "memory"

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=SERIES_DTYPE)
        if values.ndim != 2:
            raise ValueError(f"backend values must be 2-d; got ndim={values.ndim}")
        values.setflags(write=False)
        self._values = values

    @property
    def values(self) -> np.ndarray:
        return self._values

    def slice(self, start: int, stop: int) -> "MemoryBackend":
        return MemoryBackend(self._values[start:stop])

    def fork(self) -> "MemoryBackend":
        return self


class MmapBackend(StorageBackend):
    """A memory-mapped ``.npy`` or raw-float32 file, served without loading.

    Parameters
    ----------
    path:
        File to map.  ``.npy`` files carry their own shape; files with a raw
        suffix (``.f32``/``.raw``/``.bin``) are headerless little-endian
        float32 rows and require ``length``.
    length:
        Series length; mandatory for raw files, validated for ``.npy``.
    start / stop:
        Optional contiguous row range, making the backend a zero-copy slice
        of the file (used by the sharded executor).

    The mapping is opened lazily and dropped on pickling, so backends travel
    as (path, row range) only; unpickling (or :meth:`fork`) reopens the file.
    """

    kind = "mmap"

    def __init__(
        self,
        path: str | Path,
        *,
        length: int | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> None:
        self._path = os.fspath(path)
        self._length = int(length) if length is not None else None
        self._start = int(start)
        self._stop = int(stop) if stop is not None else None
        self._root: np.memmap | None = None
        self._view: np.ndarray | None = None
        self._open()  # validate eagerly; reopened lazily after unpickling

    # -- mapping lifecycle -----------------------------------------------------
    @property
    def is_raw(self) -> bool:
        return Path(self._path).suffix.lower() in RAW_SUFFIXES

    def _open(self) -> np.memmap:
        if self._root is not None:
            return self._root
        path = Path(self._path)
        if not path.exists():
            raise FileNotFoundError(f"dataset file not found: {path}")
        if self.is_raw:
            if self._length is None:
                raise ValueError(
                    f"raw series files ({'/'.join(RAW_SUFFIXES)}) need an explicit "
                    "series length"
                )
            itemsize = np.dtype(SERIES_DTYPE).itemsize
            row_bytes = self._length * itemsize
            size = path.stat().st_size
            if size % row_bytes != 0:
                raise ValueError(
                    f"{path}: size {size} is not a multiple of the "
                    f"{row_bytes}-byte rows implied by length={self._length}"
                )
            if size == 0:
                # Zero-byte files cannot be mapped; a frozen empty array keeps
                # the zero-row collection loadable through the same interface.
                root = np.empty((0, self._length), dtype=SERIES_DTYPE)
                root.setflags(write=False)
            else:
                root = np.memmap(
                    path, dtype=SERIES_DTYPE, mode="r", shape=(size // row_bytes, self._length)
                )
        else:
            root = np.load(path, mmap_mode="r")
            if not isinstance(root, np.memmap):
                raise ValueError(f"{path}: not a memory-mappable .npy array file")
            if root.ndim != 2:
                raise ValueError(f"{path}: expected a 2-d (count, length) array")
            if root.dtype != np.dtype(SERIES_DTYPE):
                raise ValueError(
                    f"{path}: expected dtype {np.dtype(SERIES_DTYPE)}, got {root.dtype}"
                )
            if self._length is not None and root.shape[1] != self._length:
                raise ValueError(
                    f"{path}: series length {root.shape[1]} != expected {self._length}"
                )
            self._length = int(root.shape[1])
        if self._stop is None:
            self._stop = int(root.shape[0])
        if not (0 <= self._start <= self._stop <= root.shape[0]):
            raise ValueError(
                f"{path}: row range [{self._start}, {self._stop}) out of bounds "
                f"for {root.shape[0]} rows"
            )
        self._root = root
        self._view = root[self._start : self._stop]
        return root

    @property
    def values(self) -> np.ndarray:
        if self._view is None:
            self._open()
        return self._view

    @property
    def source_path(self) -> str | None:
        return self._path

    @property
    def row_offset(self) -> int:
        return self._start

    def checksums(self):
        from .integrity import CorruptionError, manifest_for

        manifest = manifest_for(self._path)
        if manifest is None:
            return None
        root = self._open()
        if manifest.count != int(root.shape[0]) or manifest.length != self._length:
            raise CorruptionError(
                f"{self._path}: checksum manifest geometry "
                f"({manifest.count} x {manifest.length}) does not match the "
                f"file ({int(root.shape[0])} x {self._length}); the file "
                "changed after its sidecar was written",
                path=self._path,
            )
        return manifest

    def describe(self) -> dict:
        info = super().describe()
        info.update(format="raw-f32" if self.is_raw else "npy", start=self._start, stop=self._stop)
        return info

    # -- structure -------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "MmapBackend":
        if not (0 <= start <= stop <= self.count):
            raise ValueError(f"slice [{start}, {stop}) out of bounds for {self.count} rows")
        return MmapBackend(
            self._path,
            length=self._length,
            start=self._start + start,
            stop=self._start + stop,
        )

    def fork(self) -> "MmapBackend":
        return MmapBackend(
            self._path, length=self._length, start=self._start, stop=self._stop
        )

    def release(self, start: int = 0, stop: int | None = None) -> None:
        """Advise the kernel to drop the pages backing rows ``start:stop``.

        Read-only and file-backed, so dropping is always safe — a later read
        simply faults the page back in.  Best effort: platforms without
        ``madvise`` ignore the call.
        """
        root = self._open()
        handle = getattr(root, "_mmap", None)
        madvise = getattr(handle, "madvise", None)
        if handle is None or madvise is None:
            return
        row0 = self._start + max(0, start)
        row1 = self._start + (self.count if stop is None else min(stop, self.count))
        if row1 <= row0:
            return
        page = _mmap.PAGESIZE
        data_offset = int(getattr(root, "offset", 0)) % _mmap.ALLOCATIONGRANULARITY
        begin = data_offset + row0 * self.series_bytes
        end = data_offset + row1 * self.series_bytes
        begin -= begin % page
        end = min(len(handle), end + (-end) % page)
        if end <= begin:
            return
        try:
            madvise(_mmap.MADV_DONTNEED, begin, end - begin)
        except (OSError, ValueError):  # pragma: no cover - platform dependent
            pass

    # -- pickling ---------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_root"] = None  # mappings are reopened from the path on unpickle
        state["_view"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


class CompressedBackend(StorageBackend):
    """A ``.rcz`` file of quantized, optionally compressed series blocks.

    The quantized blocks are the *primary* storage: the collection's canonical
    float32 values are their deterministic dequantization
    (:func:`repro.core.quantize.dequantize_block`), so every read path —
    row reads, chunk scans, full materialization, any backend fork — serves
    bit-identical bytes.  Relative to the float data the file was written
    from, int8/int16 quantization is lossy; exactness claims are always with
    respect to the stored (dequantized) values.

    Parameters
    ----------
    path:
        The ``.rcz`` file (written by
        :class:`~repro.core.quantize.CompressedFileWriter` or
        :meth:`Dataset.to_compressed`).
    start / stop:
        Optional contiguous row range, making the backend a zero-copy slice
        of the file (the sharded executor's partitioning handle).  Blocks are
        file-global, so a non-block-aligned slice simply trims the decoded
        boundary blocks.
    cache_blocks:
        Decoded-block LRU capacity.  Bounds the transient residency of a
        streamed scan to ``cache_blocks * block_rows`` rows of integers
        regardless of the collection size.

    Lazy-open and picklable by (path, row range): the header/table, file
    handle, block cache, and any materialized values are all dropped from the
    pickle and rebuilt on first use, exactly like :class:`MmapBackend`.
    """

    kind = "compressed"
    supports_quantized_scan = True

    def __init__(
        self,
        path: str | Path,
        *,
        start: int = 0,
        stop: int | None = None,
        cache_blocks: int = 16,
    ) -> None:
        self._path = os.fspath(path)
        self._start = int(start)
        self._stop = int(stop) if stop is not None else None
        self._cache_blocks = max(2, int(cache_blocks))
        self._info = None
        self._handle = None
        self._cache: "OrderedDict[int, tuple]" = OrderedDict()
        self._values: np.ndarray | None = None
        self._open()  # validate eagerly; reopened lazily after unpickling

    # -- file lifecycle --------------------------------------------------------
    def _open(self):
        from .quantize import read_rcz_info

        if self._info is None:
            self._info = read_rcz_info(self._path)
            if self._stop is None:
                self._stop = self._info.count
            if not (0 <= self._start <= self._stop <= self._info.count):
                raise ValueError(
                    f"{self._path}: row range [{self._start}, {self._stop}) out of "
                    f"bounds for {self._info.count} rows"
                )
        if self._handle is None:
            self._handle = open(self._path, "rb")
        return self._info

    @property
    def info(self):
        """Parsed file geometry (:class:`repro.core.quantize.RczInfo`)."""
        return self._open()

    @property
    def source_path(self) -> str | None:
        return self._path

    @property
    def row_offset(self) -> int:
        return self._start

    @property
    def count(self) -> int:
        self._open()
        return self._stop - self._start

    @property
    def length(self) -> int:
        return self._open().length

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(SERIES_DTYPE)

    @property
    def quantized_itemsize(self) -> int:
        """Bytes per stored sample (1 for int8, 2 for int16): the *logical*
        size of the quantized representation a filtering pass reads."""
        return int(self._open().qdtype.itemsize)

    # -- block decode ----------------------------------------------------------
    def _block(self, index: int) -> tuple:
        """Decoded ``(codes, scale, shift)`` of file-global block ``index``."""
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        from .quantize import decode_payload

        info = self._open()
        entry = info.table[index]
        self._handle.seek(int(entry["offset"]))
        payload = self._handle.read(int(entry["nbytes"]))
        if info.has_checksums:
            # Verify the stored payload before decoding: every read path —
            # dequantized rows and the quantized filtering representation
            # alike — goes through this decode, so a flipped bit in any block
            # surfaces as a typed error, never as wrong values.
            from .integrity import CorruptionError, checksum

            expected = int(entry["crc"])
            actual = checksum(payload)
            if actual != expected:
                raise CorruptionError(
                    f"{self._path}: checksum mismatch in block {index} "
                    f"(expected {expected:#010x}, got {actual:#010x})",
                    path=self._path,
                    block=index,
                    expected=expected,
                    actual=actual,
                )
        codes = decode_payload(
            payload, info.codec, info.qdtype, int(entry["rows"]), info.length
        )
        block = (codes, np.float32(entry["scale"]), np.float32(entry["shift"]))
        self._cache[index] = block
        while len(self._cache) > self._cache_blocks:
            self._cache.popitem(last=False)
        return block

    def _block_range(self, start: int, stop: int) -> tuple[int, int]:
        """File-global blocks covering *absolute* rows ``start:stop``."""
        rows = self._open().block_rows
        if stop <= start:
            return 0, 0
        return start // rows, (stop + rows - 1) // rows

    # -- raw reads -------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The whole view materialized (dequantized) — cached until released.

        Methods that take the one-shot ``scan()`` view (UCR Suite, stepwise,
        the spatial trees) pay the full decode once; streamed consumers never
        call this.
        """
        if self._values is None:
            out = np.empty((self.count, self.length), dtype=SERIES_DTYPE)
            step = max(1, self._open().block_rows)
            for lo in range(0, self.count, step):
                hi = min(lo + step, self.count)
                out[lo:hi] = self.read_rows(lo, hi)
            out.setflags(write=False)
            self._values = out
        return self._values

    def read_rows(self, start: int, stop: int) -> np.ndarray:
        from .quantize import dequantize_block

        start = max(0, int(start))
        stop = min(self.count, int(stop))
        if stop <= start:
            return np.empty((0, self.length), dtype=SERIES_DTYPE)
        if self._values is not None:
            return self._values[start:stop]
        a0, a1 = start + self._start, stop + self._start
        rows = self._open().block_rows
        out = np.empty((a1 - a0, self.length), dtype=SERIES_DTYPE)
        b0, b1 = self._block_range(a0, a1)
        for b in range(b0, b1):
            codes, scale, shift = self._block(b)
            lo = max(a0, b * rows)
            hi = min(a1, b * rows + codes.shape[0])
            out[lo - a0 : hi - a0] = dequantize_block(
                codes[lo - b * rows : hi - b * rows], scale, shift
            )
        return out

    def take(self, positions: np.ndarray) -> np.ndarray:
        from .quantize import dequantize_block

        idx = np.asarray(positions, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, self.length), dtype=SERIES_DTYPE)
        if self._values is not None:
            return self._values[idx]
        rows = self._open().block_rows
        absolute = idx + self._start
        out = np.empty((idx.size, self.length), dtype=SERIES_DTYPE)
        blocks = absolute // rows
        for b in np.unique(blocks):
            codes, scale, shift = self._block(int(b))
            mask = blocks == b
            out[mask] = dequantize_block(
                codes[absolute[mask] - int(b) * rows], scale, shift
            )
        return out

    def row(self, position: int) -> np.ndarray:
        return self.read_rows(int(position), int(position) + 1)[0]

    def get(self, key) -> np.ndarray:
        # Serve the common access shapes block-at-a-time so `peek` never
        # materializes the collection; anything fancier falls back to values.
        if isinstance(key, slice):
            start, stop, step = key.indices(self.count)
            if step == 1:
                return self.read_rows(start, stop)
            return self.take(np.arange(start, stop, step))
        if isinstance(key, (int, np.integer)):
            return self.row(int(key))
        arr = np.asarray(key)
        if arr.ndim == 1 and arr.dtype != np.bool_:
            return self.take(arr.astype(np.int64))
        return self.values[key]

    # -- quantized access ------------------------------------------------------
    def quantized_parts(self, start: int, stop: int) -> list[tuple]:
        """The integer representation of rows ``start:stop`` (view-relative).

        Returns ``[(codes, scale, shift), ...]`` covering the range in order,
        one entry per stored block (boundary blocks trimmed).  ``codes`` are
        read-only views into the decoded-block cache — the pruned scans bound
        distances on these, and the survivors' full-precision reads then hit
        the same cached blocks.
        """
        start = max(0, int(start))
        stop = min(self.count, int(stop))
        if stop <= start:
            return []
        a0, a1 = start + self._start, stop + self._start
        rows = self._open().block_rows
        parts = []
        b0, b1 = self._block_range(a0, a1)
        for b in range(b0, b1):
            codes, scale, shift = self._block(b)
            lo = max(a0, b * rows)
            hi = min(a1, b * rows + codes.shape[0])
            parts.append((codes[lo - b * rows : hi - b * rows], scale, shift))
        return parts

    def physical_bytes(self, start: int, stop: int) -> int:
        info = self._open()
        a0 = self._start + max(0, int(start))
        a1 = self._start + min(self.count, int(stop))
        b0, b1 = self._block_range(a0, a1)
        return info.stored_bytes(b0, b1)

    def physical_bytes_for(self, positions: np.ndarray) -> int:
        info = self._open()
        idx = np.asarray(positions, dtype=np.int64)
        if idx.size == 0:
            return 0
        blocks = np.unique((idx + self._start) // info.block_rows)
        return int(info.table["nbytes"][blocks].astype(np.int64).sum())

    # -- structure -------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "CompressedBackend":
        if not (0 <= start <= stop <= self.count):
            raise ValueError(f"slice [{start}, {stop}) out of bounds for {self.count} rows")
        return CompressedBackend(
            self._path,
            start=self._start + start,
            stop=self._start + stop,
            cache_blocks=self._cache_blocks,
        )

    def fork(self) -> "CompressedBackend":
        return CompressedBackend(
            self._path,
            start=self._start,
            stop=self._stop,
            cache_blocks=self._cache_blocks,
        )

    def release(self, start: int = 0, stop: int | None = None) -> None:
        """Evict decoded blocks fully inside rows ``start:stop`` and any
        materialized whole-view copy.  Boundary blocks shared with a
        neighboring chunk stay cached, so a streamed scan never re-decodes a
        block it is still consuming."""
        self._values = None
        if self._info is None or not self._cache:
            return
        rows = self._info.block_rows
        a0 = self._start + max(0, int(start))
        a1 = self._start + (self.count if stop is None else min(int(stop), self.count))
        for b in [b for b in self._cache if b * rows >= a0 and (b + 1) * rows <= a1]:
            del self._cache[b]

    def describe(self) -> dict:
        info = super().describe()
        rcz = self._open()
        info.update(
            format="rcz",
            start=self._start,
            stop=self._stop,
            qdtype=rcz.qdtype_name,
            block_rows=rcz.block_rows,
            compression=rcz.codec,
            stored_bytes=self.physical_bytes(0, self.count),
        )
        return info

    # -- pickling ---------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_info"] = None  # geometry is reparsed from the path on unpickle
        state["_handle"] = None
        state["_cache"] = OrderedDict()
        state["_values"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def resolve_backend(dataset, backend=None) -> StorageBackend:
    """Resolve a backend choice for ``dataset``.

    ``backend`` may be a :class:`StorageBackend` instance (used as-is), one of
    the names in :data:`BACKEND_KINDS`, or ``None`` — which picks the
    dataset's attached file backend when it has one (``Dataset.from_file``)
    and the in-memory backend otherwise, so existing call sites keep today's
    behavior with zero changes.

    Choosing ``"memory"`` for a file-backed dataset materializes the
    collection into RAM (that is the point of comparing backends on the same
    data); choosing ``"mmap"`` or ``"compressed"`` requires a dataset already
    backed by the matching file kind — use :meth:`Dataset.from_file`,
    :meth:`Dataset.to_mmap`, or :meth:`Dataset.to_compressed` first.
    """
    if isinstance(backend, StorageBackend):
        return backend
    attached = getattr(dataset, "backend", None)
    if backend is None:
        return attached if attached is not None else MemoryBackend(dataset.values)
    kind = str(backend).lower()
    if kind == "memory":
        if attached is not None and attached.kind != "memory":
            return MemoryBackend(np.array(dataset.values, dtype=SERIES_DTYPE))
        return MemoryBackend(dataset.values)
    if kind == "mmap":
        if attached is not None and attached.kind == "mmap":
            return attached
        raise ValueError(
            "the mmap backend needs a file-backed dataset; open it with "
            "Dataset.from_file() or spill it with Dataset.to_mmap() first"
        )
    if kind == "compressed":
        if attached is not None and attached.kind == "compressed":
            return attached
        raise ValueError(
            "the compressed backend needs a .rcz-backed dataset; convert with "
            "Dataset.to_compressed() or open one with Dataset.from_file()"
        )
    if kind == "growable":
        if attached is not None and attached.kind == "growable":
            return attached
        raise ValueError(
            "the growable backend needs a store-directory-backed dataset; "
            "open one with Dataset.from_file() or spill with "
            "Dataset.to_growable() first"
        )
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKEND_KINDS}")
