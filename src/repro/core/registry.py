"""Method registry: build any of the paper's ten methods by name."""

from __future__ import annotations

from typing import Any, Callable

from .storage import SeriesStore

__all__ = [
    "METHOD_NAMES",
    "register_method",
    "create_method",
    "available_methods",
]

_FACTORIES: dict[str, Callable[..., object]] = {}


def register_method(name: str, factory: Callable[..., object]) -> None:
    """Register a factory ``factory(store, **params) -> SearchMethod``."""
    key = name.lower()
    _FACTORIES[key] = factory


def available_methods() -> list[str]:
    """Names of every registered method."""
    _ensure_builtin_methods()
    return sorted(_FACTORIES)


def create_method(name: str, store: SeriesStore, **params: Any) -> object:
    """Instantiate a registered method over ``store``.

    Parameters are forwarded to the method constructor; unknown names raise a
    ``KeyError`` listing the available methods.

    Any registered method can be wrapped in the parallel sharded executor by
    prefixing its name with ``"sharded:"`` (e.g. ``"sharded:isax2+"``); the
    wrapper's own knobs (``shards=``, ``workers=``) ride along in ``params``
    and everything else is forwarded to the inner method.
    """
    _ensure_builtin_methods()
    key = name.lower()
    if key.startswith("sharded:") or key == "sharded":
        from ..indexes.sharded import ShardedMethod

        if ":" in key:
            if "inner" in params:
                raise ValueError(
                    "pass the inner method either via the 'sharded:<name>' "
                    "prefix or the inner= parameter, not both"
                )
            inner = key.split(":", 1)[1]
        else:
            inner = str(params.pop("inner", "flat")).lower()
        if inner not in _FACTORIES:
            raise KeyError(
                f"unknown sharded inner method {inner!r}; available: {available_methods()}"
            )
        return ShardedMethod(store, inner=inner, **params)
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown method {name!r}; available: {available_methods()} "
            "(any of these can be wrapped as 'sharded:<name>')"
        )
    return _FACTORIES[key](store, **params)


def _ensure_builtin_methods() -> None:
    if _FACTORIES:
        return
    # Imported lazily to avoid a circular import at package import time.
    from ..indexes import (
        AdsPlusIndex,
        DsTreeIndex,
        Isax2PlusIndex,
        MTreeIndex,
        RStarTreeIndex,
        SfaTrieIndex,
        StepwiseIndex,
        VaPlusFileIndex,
    )
    from ..sequential import FlatScan, MassScan, UcrSuiteScan

    register_method("ads+", AdsPlusIndex)
    register_method("flat", FlatScan)
    register_method("dstree", DsTreeIndex)
    register_method("isax2+", Isax2PlusIndex)
    register_method("m-tree", MTreeIndex)
    register_method("r*-tree", RStarTreeIndex)
    register_method("sfa-trie", SfaTrieIndex)
    register_method("va+file", VaPlusFileIndex)
    register_method("stepwise", StepwiseIndex)
    register_method("ucr-suite", UcrSuiteScan)
    register_method("mass", MassScan)


#: canonical names of the ten methods evaluated in the paper.
METHOD_NAMES: tuple[str, ...] = (
    "ads+",
    "dstree",
    "isax2+",
    "m-tree",
    "r*-tree",
    "sfa-trie",
    "va+file",
    "stepwise",
    "ucr-suite",
    "mass",
)
