"""The growable backend: crash-consistent live collections.

Every other backend serves a *frozen* collection; this one grows.  A store
directory holds::

    MANIFEST.json            sealed-segment manifest (atomic rewrite + fsync)
    segment-000000.npy       sealed segments: ordinary .npy files written by
    segment-000000.npy.crc     the atomic SeriesFileWriter, with CRC sidecars
    wal.log                  the write-ahead log (repro.core.wal)

New rows arrive through :meth:`GrowableBackend.extend`: the batch is durably
logged (CRC-framed record, fsync before the ack returns) and then becomes
readable from an in-memory *tail buffer* — an append-only list of immutable
row chunks, never reallocated, so concurrent snapshot readers are safe
without copying.  :meth:`checkpoint` drains the tail into a sealed segment
file via the existing atomic writers and truncates the log; between
checkpoints the WAL bounds what recovery has to replay.

Recovery-on-open replays the WAL, skips records already sealed (a checkpoint
that died before truncating), discards a torn tail, sweeps orphaned ``*.tmp``
and unmanifested segment files, and reports all of it as a
:class:`~repro.core.wal.RecoveryReport` — never an exception for clean crash
debris.  The invariant the crash harness enforces: after SIGKILL at *any*
point, reopening restores an exact prefix of the acked row sequence at a
record boundary, containing at least every acked row (bit-exact).

Snapshot semantics: rows are immutable once acked and the row count only
grows, so a zero-copy :meth:`slice` with a pinned ``stop`` *is* a consistent
snapshot — :meth:`SeriesStore.snapshot <repro.core.storage.SeriesStore>`
pins the current watermark and queries against it are byte-identical to
querying a frozen store of that prefix, no matter how many ``extend`` calls
land mid-query.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
from pathlib import Path

import numpy as np

from .backends import MmapBackend, StorageBackend
from .integrity import CorruptionError, verify_row_range
from .series import SERIES_DTYPE, SeriesFileWriter
from .wal import RecoveryReport, WriteAheadLog

__all__ = [
    "GrowableBackend",
    "MANIFEST_NAME",
    "WAL_NAME",
    "is_growable_dir",
    "sweep_orphaned_tmp",
]

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
_MANIFEST_FORMAT = "repro-growable"
_MANIFEST_VERSION = 1
_SEGMENT_PREFIX = "segment-"


def is_growable_dir(path) -> bool:
    """Whether ``path`` is (or could be opened as) a growable store directory."""
    path = Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).exists()


def sweep_orphaned_tmp(directory, *, before: float | None = None) -> list[str]:
    """Unlink orphaned ``*.tmp`` files in ``directory``; returns their names.

    Writers stream into uniquified ``<name>.<pid>-<token>.tmp`` files and
    rename into place, so any ``*.tmp`` older than the current open belongs
    to a writer that died before ``abandon()`` could run.  ``before`` (a
    timestamp) protects files modified at or after the sweep started — a
    concurrently *live* writer's temp file is never mistaken for a dead one.
    """
    swept: list[str] = []
    directory = Path(directory)
    if not directory.is_dir():
        return swept
    for tmp in sorted(directory.glob("*.tmp")):
        try:
            if before is not None and tmp.stat().st_mtime >= before:
                continue
            tmp.unlink()
        except OSError:
            continue
        swept.append(tmp.name)
    return swept


class _Layout:
    """An immutable point-in-time view of the store's physical layout.

    Captured under the state lock; everything referenced (segment backends,
    tail chunk arrays) is itself immutable, so reads proceed lock-free."""

    __slots__ = ("segments", "bounds", "sealed", "tail_chunks", "tail_bounds", "total")

    def __init__(self, segments, bounds, sealed, tail_chunks, tail_bounds, total):
        self.segments = segments
        self.bounds = bounds  # cumulative sealed row bounds, len = nseg + 1
        self.sealed = sealed
        self.tail_chunks = tail_chunks
        self.tail_bounds = tail_bounds  # absolute row bounds, len = ntail + 1
        self.total = total


class _GrowableState:
    """The shared mutable core every view of one store directory reads through."""

    def __init__(
        self,
        root: Path,
        length: int,
        wal: WriteAheadLog,
        segments: list[MmapBackend],
        tail_chunks: list[np.ndarray],
        report: RecoveryReport,
        plan,
        read_only: bool,
    ) -> None:
        self.root = root
        self.length = length
        self.wal = wal
        self.segments = segments
        self.tail_chunks = tail_chunks
        self.report = report
        self.plan = plan
        self.read_only = read_only
        self.lock = threading.RLock()

    @property
    def sealed_rows(self) -> int:
        return sum(int(seg.count) for seg in self.segments)

    @property
    def total_rows(self) -> int:
        return self.sealed_rows + sum(int(c.shape[0]) for c in self.tail_chunks)

    def layout(self) -> _Layout:
        with self.lock:
            segments = list(self.segments)
            tail = list(self.tail_chunks)
        bounds = np.zeros(len(segments) + 1, dtype=np.int64)
        for j, seg in enumerate(segments):
            bounds[j + 1] = bounds[j] + int(seg.count)
        sealed = int(bounds[-1])
        tail_bounds = np.zeros(len(tail) + 1, dtype=np.int64)
        tail_bounds[0] = sealed
        for t, chunk in enumerate(tail):
            tail_bounds[t + 1] = tail_bounds[t] + int(chunk.shape[0])
        return _Layout(
            segments, bounds, sealed, tail, tail_bounds, int(tail_bounds[-1])
        )


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` to ``path`` durably: unique tmp, fsync, rename, fsync dir."""
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}-{secrets.token_hex(4)}.tmp"
    )
    with open(tmp, "wb") as handle:
        handle.write(json.dumps(payload, indent=1).encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_path(path.parent)


class GrowableBackend(StorageBackend):
    """Chunked segment files + a WAL-backed tail buffer, behind the backend seam.

    Parameters
    ----------
    root:
        The store directory.  ``create=True`` initializes an empty store
        (requires ``length``); otherwise the directory must hold a manifest,
        and opening *is* recovery — see :attr:`recovery`.
    length:
        Series length; mandatory when creating, validated when opening.
    start / stop:
        Optional pinned row range making this view a zero-copy slice (and,
        with a pinned ``stop``, a consistent snapshot).  The live view
        (``start=0``, ``stop=None``) tracks the committed row count as it
        grows and is the only view that accepts :meth:`extend`.

    Views of one open share a single :class:`_GrowableState`; reads snapshot
    the layout under its lock and then run lock-free over immutable pieces.
    Pickling pins the current watermark and reopens read-only on unpickle
    (no sweeping, no WAL repair), which is the cross-process reader contract.
    """

    kind = "growable"

    def __init__(
        self,
        root: str | Path,
        *,
        length: int | None = None,
        create: bool = False,
        start: int = 0,
        stop: int | None = None,
        plan=None,
        read_only: bool = False,
        _state: _GrowableState | None = None,
    ) -> None:
        if _state is None:
            _state = _open_state(
                Path(root), length=length, create=create, plan=plan,
                read_only=read_only,
            )
        self._state = _state
        self._start = int(start)
        self._stop = int(stop) if stop is not None else None
        total = self._state.total_rows
        effective = total if self._stop is None else self._stop
        if not (0 <= self._start <= effective <= total):
            raise ValueError(
                f"row range [{self._start}, {effective}) out of bounds for "
                f"{total} rows"
            )
        self._values_cache: tuple[int, np.ndarray] | None = None

    # -- geometry --------------------------------------------------------------
    @property
    def mutable(self) -> bool:
        """Whether this view's row count can still change (the live view)."""
        return self._stop is None and not self._state.read_only

    @property
    def recovery(self) -> RecoveryReport:
        """What opening this store found and repaired."""
        return self._state.report

    @property
    def root(self) -> Path:
        return self._state.root

    @property
    def count(self) -> int:
        stop = self._state.total_rows if self._stop is None else self._stop
        return max(0, stop - self._start)

    @property
    def length(self) -> int:
        return self._state.length

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(SERIES_DTYPE)

    @property
    def source_path(self) -> str | None:
        return str(self._state.root)

    @property
    def row_offset(self) -> int:
        return self._start

    @property
    def watermark(self) -> int:
        """The committed (acked-durable) row count right now, store-absolute."""
        return self._state.total_rows

    # -- reads -----------------------------------------------------------------
    def _bounds(self) -> tuple[int, int, _Layout]:
        layout = self._state.layout()
        stop = layout.total if self._stop is None else self._stop
        return self._start, stop, layout

    @property
    def values(self) -> np.ndarray:
        lo, hi, layout = self._bounds()
        if self._values_cache is not None and self._values_cache[0] == hi - lo:
            return self._values_cache[1]
        data = np.ascontiguousarray(self._gather(lo, hi, layout))
        data.setflags(write=False)
        self._values_cache = (hi - lo, data)
        return data

    def _gather(self, lo: int, hi: int, layout: _Layout) -> np.ndarray:
        """Rows ``[lo, hi)`` in absolute coordinates; zero-copy when one piece."""
        if hi <= lo:
            return np.empty((0, self.length), dtype=SERIES_DTYPE)
        pieces: list[np.ndarray] = []
        bounds = layout.bounds
        for j, seg in enumerate(layout.segments):
            s0, s1 = int(bounds[j]), int(bounds[j + 1])
            if s1 <= lo or s0 >= hi:
                continue
            pieces.append(seg.read_rows(max(lo, s0) - s0, min(hi, s1) - s0))
        tb = layout.tail_bounds
        for t, chunk in enumerate(layout.tail_chunks):
            t0, t1 = int(tb[t]), int(tb[t + 1])
            if t1 <= lo or t0 >= hi:
                continue
            pieces.append(chunk[max(lo, t0) - t0 : min(hi, t1) - t0])
        if len(pieces) == 1:
            return pieces[0]
        out = np.concatenate(pieces, axis=0)
        out.setflags(write=False)
        return out

    def read_rows(self, start: int, stop: int) -> np.ndarray:
        lo, hi, layout = self._bounds()
        a = lo + max(0, int(start))
        b = min(lo + int(stop), hi)
        return self._gather(a, b, layout)

    def take(self, positions: np.ndarray) -> np.ndarray:
        lo, hi, layout = self._bounds()
        idx = np.asarray(positions, dtype=np.int64)
        absolute = idx + lo
        if absolute.size and (absolute.min() < lo or absolute.max() >= hi):
            raise IndexError(
                f"positions out of range for view of {hi - lo} rows"
            )
        out = np.empty((absolute.size, self.length), dtype=SERIES_DTYPE)
        bounds = layout.bounds
        for j, seg in enumerate(layout.segments):
            s0, s1 = int(bounds[j]), int(bounds[j + 1])
            mask = (absolute >= s0) & (absolute < s1)
            if mask.any():
                out[mask] = seg.take(absolute[mask] - s0)
        tb = layout.tail_bounds
        for t, chunk in enumerate(layout.tail_chunks):
            t0, t1 = int(tb[t]), int(tb[t + 1])
            mask = (absolute >= t0) & (absolute < t1)
            if mask.any():
                out[mask] = chunk[absolute[mask] - t0]
        out.setflags(write=False)
        return out

    def row(self, position: int) -> np.ndarray:
        return self.read_rows(int(position), int(position) + 1)[0]

    def get(self, key) -> np.ndarray:
        if isinstance(key, (int, np.integer)):
            return self.row(int(key))
        if isinstance(key, slice):
            start, stop, step = key.indices(self.count)
            if step == 1:
                return self.read_rows(start, stop)
        idx = np.asarray(key)
        if idx.ndim == 1 and idx.dtype != np.bool_:
            return self.take(idx.astype(np.int64))
        return self.values[key]

    def set_fault_plan(self, plan) -> None:
        """Route the write path (WAL appends, checkpoints) through ``plan``.

        Read-side fault injection wraps the backend from the outside
        (:class:`~repro.core.faults.FaultInjectingBackend`); the write path's
        crash points live *inside* the WAL/checkpoint sequence, so the store
        hands the plan down here when it wraps a growable backend.
        """
        self._state.plan = plan
        self._state.wal.plan = plan

    # -- writes ----------------------------------------------------------------
    def _require_live(self, op: str) -> None:
        if self._state.read_only:
            raise ValueError(f"cannot {op}: store opened read-only")
        if self._stop is not None or self._start != 0:
            raise ValueError(
                f"cannot {op} through a slice/snapshot view; use the live store"
            )

    def extend(self, rows: np.ndarray) -> int:
        """Durably append ``rows``; returns the new committed row count.

        The rows are acked — WAL record written *and fsynced* — before they
        become readable, so a reader can never observe rows that a crash
        could take back.  The tail chunk is frozen and appended (never
        reallocated); snapshot readers holding older layouts are unaffected.
        """
        self._require_live("extend")
        data = np.ascontiguousarray(np.atleast_2d(rows), dtype=SERIES_DTYPE)
        if data.ndim != 2 or data.shape[1] != self.length:
            raise ValueError(
                f"extend rows must be (m, {self.length}); got {data.shape}"
            )
        if data.shape[0] == 0:
            return self._state.total_rows
        state = self._state
        with state.lock:
            start_row = state.total_rows
            state.wal.append(data, start_row)
            data.setflags(write=False)
            state.tail_chunks.append(data)
            return start_row + int(data.shape[0])

    def checkpoint(self) -> int:
        """Seal the tail buffer into a segment file and truncate the WAL.

        Returns the number of rows sealed (0 when the tail is empty).  The
        sequence — write segment, fsync it, update manifest, fsync, truncate
        WAL — is crash-consistent at every point: replay skips records whose
        rows are already sealed, and sweep-on-open removes debris from
        crashes before the manifest update.
        """
        from .faults import crash_point

        self._require_live("checkpoint")
        state = self._state
        with state.lock:
            if not state.tail_chunks:
                return 0
            tail = list(state.tail_chunks)
            rows = int(sum(c.shape[0] for c in tail))
            name = f"{_SEGMENT_PREFIX}{len(state.segments):06d}.npy"
            path = state.root / name
            writer = SeriesFileWriter(path, length=state.length)
            try:
                mid = len(tail) // 2 if len(tail) > 1 else 0
                for chunk in tail[:mid]:
                    writer.append(chunk)
                crash_point(state.plan, "kill_mid_checkpoint")
                for chunk in tail[mid:]:
                    writer.append(chunk)
            except BaseException:
                writer.abandon()
                raise
            writer.close()
            _fsync_path(path)
            _fsync_path(state.root)
            crash_point(state.plan, "kill_after_checkpoint_segment")
            segment = MmapBackend(path, length=state.length)
            if int(segment.count) != rows:  # pragma: no cover - writer bug guard
                raise CorruptionError(
                    f"{path}: sealed {segment.count} rows, expected {rows}"
                )
            state.segments.append(segment)
            state.tail_chunks.clear()
            _write_store_manifest(state)
            crash_point(state.plan, "kill_before_wal_truncate")
            state.wal.truncate()
            return rows

    # -- integrity -------------------------------------------------------------
    def verify_segments(self) -> int:
        """Verify every sealed segment against its CRC sidecar; returns rows checked.

        Raises :class:`~repro.core.integrity.CorruptionError` on damage.  The
        tail buffer needs no verification — its rows were CRC-checked when
        the WAL was replayed (or written by this very process).
        """
        checked = 0
        for seg in self._state.layout().segments:
            manifest = seg.checksums()
            if manifest is None:
                raise CorruptionError(
                    f"{seg.source_path}: sealed segment has no .crc sidecar"
                )
            verify_row_range(
                manifest, 0, int(seg.count), 0, int(seg.count), seg.read_rows
            )
            checked += int(seg.count)
        return checked

    def checksums(self):
        # Segments carry their own sidecars (verify_segments); the composite
        # view spans files and has no single manifest.
        return None

    # -- structure -------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "GrowableBackend":
        if not (0 <= start <= stop <= self.count):
            raise ValueError(
                f"slice [{start}, {stop}) out of bounds for {self.count} rows"
            )
        return GrowableBackend(
            self._state.root,
            start=self._start + start,
            stop=self._start + stop,
            _state=self._state,
        )

    def fork(self) -> "GrowableBackend":
        return GrowableBackend(
            self._state.root,
            start=self._start,
            stop=self._stop,
            _state=self._state,
        )

    def release(self, start: int = 0, stop: int | None = None) -> None:
        self._values_cache = None
        lo, hi, layout = self._bounds()
        a = lo + max(0, int(start))
        b = hi if stop is None else min(lo + int(stop), hi)
        bounds = layout.bounds
        for j, seg in enumerate(layout.segments):
            s0, s1 = int(bounds[j]), int(bounds[j + 1])
            if s1 <= a or s0 >= b:
                continue
            seg.release(max(a, s0) - s0, min(b, s1) - s0)

    def close(self) -> None:
        """Release the WAL append handle (reopened on the next extend)."""
        self._state.wal.close()

    def describe(self) -> dict:
        state = self._state
        info = super().describe()
        info.update(
            start=self._start,
            stop=self._stop if self._stop is not None else state.total_rows,
            sealed_rows=state.sealed_rows,
            segments=[
                {"file": Path(seg.source_path).name, "rows": int(seg.count)}
                for seg in state.segments
            ],
            wal_bytes=int(state.wal.size_bytes),
            watermark=state.total_rows,
        )
        return info

    # -- pickling --------------------------------------------------------------
    def __getstate__(self) -> dict:
        lo, hi, _ = self._bounds()
        return {
            "root": str(self._state.root),
            "length": self._state.length,
            "start": lo,
            "stop": hi,  # pin the watermark: unpickled readers see a snapshot
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["root"],
            length=state["length"],
            start=state["start"],
            stop=state["stop"],
            read_only=True,
        )


def _write_store_manifest(state: _GrowableState) -> None:
    _atomic_write_json(
        state.root / MANIFEST_NAME,
        {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "length": state.length,
            "segments": [
                {"file": Path(seg.source_path).name, "rows": int(seg.count)}
                for seg in state.segments
            ],
        },
    )


def _open_state(
    root: Path,
    *,
    length: int | None,
    create: bool,
    plan,
    read_only: bool,
) -> _GrowableState:
    """Open (= recover) or create the shared state for a store directory."""
    import time

    report = RecoveryReport()
    manifest_path = root / MANIFEST_NAME
    if not root.exists():
        if not create:
            raise FileNotFoundError(f"growable store not found: {root}")
        root.mkdir(parents=True, exist_ok=True)
    elif not root.is_dir():
        raise NotADirectoryError(f"growable store root is not a directory: {root}")

    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text("utf-8"))
        except (OSError, ValueError) as exc:
            raise CorruptionError(
                f"{manifest_path}: unreadable store manifest ({exc})"
            ) from exc
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise CorruptionError(f"{manifest_path}: not a growable store manifest")
        if int(manifest.get("version", 0)) != _MANIFEST_VERSION:
            raise CorruptionError(
                f"{manifest_path}: unsupported manifest version "
                f"{manifest.get('version')}"
            )
        stored_length = int(manifest["length"])
        if length is not None and int(length) != stored_length:
            raise ValueError(
                f"{root}: series length {stored_length} != expected {length}"
            )
        length = stored_length
    else:
        if not create:
            raise FileNotFoundError(
                f"{root}: no {MANIFEST_NAME}; not a growable store "
                "(pass create=True to initialize one)"
            )
        if length is None:
            raise ValueError("creating a growable store requires length=")
        manifest = {
            "format": _MANIFEST_FORMAT,
            "version": _MANIFEST_VERSION,
            "length": int(length),
            "segments": [],
        }
        if not read_only:
            _atomic_write_json(manifest_path, manifest)
    length = int(length)

    # Crash-debris sweep (the owning open only): orphaned temp files from
    # writers that died before abandon(), and sealed-but-unmanifested
    # segments from a crash between segment seal and manifest update (their
    # rows are still in the WAL, so deleting the file loses nothing).
    listed = [dict(entry) for entry in manifest.get("segments", [])]
    listed_names = {entry["file"] for entry in listed}
    if not read_only:
        # repro-lint: disable=no-wall-clock -- the sweep compares file
        # *mtimes*, which are civil-clock values; perf_counter has no epoch.
        report.swept_tmp = sweep_orphaned_tmp(root, before=time.time())
        for orphan in sorted(root.glob(f"{_SEGMENT_PREFIX}*.npy")):
            if orphan.name in listed_names:
                continue
            try:
                orphan.unlink()
                Path(str(orphan) + ".crc").unlink(missing_ok=True)
            except OSError:
                continue
            report.swept_segments.append(orphan.name)

    segments: list[MmapBackend] = []
    for entry in listed:
        seg_path = root / entry["file"]
        try:
            segment = MmapBackend(seg_path, length=length)
        except FileNotFoundError:
            raise CorruptionError(
                f"{seg_path}: segment listed in the manifest is missing"
            ) from None
        if int(segment.count) != int(entry["rows"]):
            raise CorruptionError(
                f"{seg_path}: segment holds {segment.count} rows, manifest "
                f"says {entry['rows']}"
            )
        segments.append(segment)
    sealed = sum(int(seg.count) for seg in segments)
    report.sealed_rows = sealed

    wal = WriteAheadLog(root / WAL_NAME, length, plan=plan)
    records, wal_report = wal.replay(repair=not read_only)
    report.torn_bytes = wal_report.torn_bytes
    report.torn_reason = wal_report.torn_reason

    tail_chunks: list[np.ndarray] = []
    expected = sealed
    for start_row, rows in records:
        end = start_row + int(rows.shape[0])
        if end <= sealed:
            # Already sealed into a segment: a checkpoint completed but the
            # process died before truncating the log.  Replay is idempotent.
            report.skipped_records += 1
            continue
        if start_row != expected:
            raise CorruptionError(
                f"{root}: WAL record starts at row {start_row}, expected "
                f"{expected}; the log and segments disagree"
            )
        tail_chunks.append(rows)  # frombuffer views are already read-only
        expected = end
    report.replayed_records = len(records) - report.skipped_records
    report.replayed_rows = expected - sealed

    return _GrowableState(
        root=root,
        length=length,
        wal=wal,
        segments=segments,
        tail_chunks=tail_chunks,
        report=report,
        plan=plan,
        read_only=read_only,
    )
