"""Distance kernels shared by every similarity-search method.

The paper applies the *same* set of Euclidean-distance optimizations to every
method to remove implementation bias: working on squared distances (no square
root), early abandoning, and early abandoning with the dimensions reordered by
the query's absolute z-score.  This module is the single place where those
kernels live, so every index and sequential scan in the library shares them.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "squared_euclidean",
    "euclidean",
    "squared_euclidean_batch",
    "early_abandon_squared",
    "reorder_by_query",
    "early_abandon_reordered",
    "dynamic_time_warping",
]


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two series of equal length."""
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.dot(diff, diff))


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two series of equal length."""
    return float(np.sqrt(squared_euclidean(a, b)))


def squared_euclidean_batch(query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance between ``query`` and every row of ``candidates``.

    Vectorized over the candidate set; this is the kernel used when a method
    scans a whole leaf (or the whole dataset) at once.
    """
    q = np.asarray(query, dtype=np.float64)
    c = np.asarray(candidates, dtype=np.float64)
    if c.ndim == 1:
        c = c[np.newaxis, :]
    diff = c - q[np.newaxis, :]
    return np.einsum("ij,ij->i", diff, diff)


_BLOCK_BOUNDS_CACHE: dict[int, tuple[tuple[int, int], ...]] = {}


def _block_bounds(n: int) -> tuple[tuple[int, int], ...]:
    """Precomputed (start, stop) block boundaries for early abandoning.

    The block size trades Python-loop overhead against abandoning granularity;
    the boundaries are cached per series length so the hot loop never
    recomputes them.
    """
    bounds = _BLOCK_BOUNDS_CACHE.get(n)
    if bounds is None:
        block = 16 if n >= 64 else max(4, n // 4 or 1)
        bounds = tuple((start, min(start + block, n)) for start in range(0, n, block))
        _BLOCK_BOUNDS_CACHE[n] = bounds
    return bounds


def early_abandon_squared(a: np.ndarray, b: np.ndarray, threshold: float) -> float:
    """Squared Euclidean distance with early abandoning.

    Accumulates the squared differences in blocks and stops as soon as the
    partial sum exceeds ``threshold`` (the current best-so-far squared
    distance).  Returns either the exact squared distance (if below the
    threshold) or a value strictly greater than the threshold.  When the
    threshold is infinite no abandoning is possible, so a single vectorized
    ``np.dot`` is used instead of the blocked loop.
    """
    av = np.asarray(a, dtype=np.float64)
    bv = np.asarray(b, dtype=np.float64)
    if not threshold < np.inf:  # inf or NaN threshold: abandoning cannot trigger
        diff = av - bv
        return float(np.dot(diff, diff))
    acc = 0.0
    for start, stop in _block_bounds(av.shape[0]):
        diff = av[start:stop] - bv[start:stop]
        acc += np.dot(diff, diff)
        if acc > threshold:
            return float(acc)
    return float(acc)


def reorder_by_query(query: np.ndarray) -> np.ndarray:
    """Return the dimension order used for reordered early abandoning.

    For z-normalized data the dimensions where the query deviates the most from
    zero are the ones most likely to contribute large squared differences, so
    visiting them first makes early abandoning trigger sooner (UCR-Suite
    optimization (c) in the paper).
    """
    q = np.asarray(query, dtype=np.float64)
    return np.argsort(-np.abs(q), kind="stable")


def early_abandon_reordered(
    query: np.ndarray,
    candidate: np.ndarray,
    threshold: float,
    order: np.ndarray | None = None,
) -> float:
    """Early-abandoning squared distance visiting dimensions in ``order``.

    ``order`` is normally precomputed once per query with
    :func:`reorder_by_query` and reused for every candidate.
    """
    q = np.asarray(query, dtype=np.float64)
    c = np.asarray(candidate, dtype=np.float64)
    if not threshold < np.inf:  # no abandoning possible: one vectorized pass
        diff = q - c
        return float(np.dot(diff, diff))
    if order is None:
        order = reorder_by_query(q)
    qo = q[order]
    co = c[order]
    acc = 0.0
    for start, stop in _block_bounds(qo.shape[0]):
        diff = qo[start:stop] - co[start:stop]
        acc += np.dot(diff, diff)
        if acc > threshold:
            return float(acc)
    return float(acc)


def dynamic_time_warping(
    a: np.ndarray, b: np.ndarray, window: int | None = None
) -> float:
    """Dynamic Time Warping distance with an optional Sakoe-Chiba band.

    DTW is out of scope for the paper's evaluation (which uses Euclidean
    distance exclusively) but is provided as an extension because the paper
    notes its insights "could carry over to ... dynamic time warping distance".

    Parameters
    ----------
    a, b:
        The two series (may have different lengths).
    window:
        Sakoe-Chiba band half-width; ``None`` means unconstrained.
    """
    av = np.asarray(a, dtype=np.float64)
    bv = np.asarray(b, dtype=np.float64)
    n, m = len(av), len(bv)
    if n == 0 or m == 0:
        raise ValueError("DTW requires non-empty series")
    if window is None:
        window = max(n, m)
    window = max(window, abs(n - m))
    inf = np.inf
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    for i in range(1, n + 1):
        curr = np.full(m + 1, inf)
        lo = max(1, i - window)
        hi = min(m, i + window)
        for j in range(lo, hi + 1):
            cost = (av[i - 1] - bv[j - 1]) ** 2
            curr[j] = cost + min(prev[j], curr[j - 1], prev[j - 1])
        prev = curr
    return float(np.sqrt(prev[m]))
