"""Deterministic fault injection for chaos-testing the storage stack.

Real deployments of a disk-resident search system see transient I/O errors,
latency spikes, short reads, and flipped bits.  This module makes all of them
*reproducible*: a :class:`FaultPlan` is a small seeded description of how
often each fault fires, and a :class:`FaultInjectingBackend` wraps any
:class:`~repro.core.backends.StorageBackend` (memory/mmap/compressed) and
injects the planned faults into the raw read primitives the whole library is
built on.  Chaos tests drive every scan, build, and sharded path through real
failures and assert that the retry/verification layers above produce either
the byte-identical fault-free answer or a typed error — never silently wrong
results.

Determinism model
-----------------
Every decision hashes ``(seed, fault kind, read site)``:

* **Corruption** is keyed by absolute file-row *region* only — it models
  damage at rest, so the same rows come back corrupted on every read, through
  every fork, for as long as the plan lives.  Integrity verification must
  catch it; retrying cannot.
* **Transient faults** (I/O errors, short reads) are keyed by read site plus
  the backend's *incarnation* — each :meth:`fork` gets a fresh incarnation.
  A faulty site fails a bounded number of consecutive attempts
  (``1..max_failures``) and then succeeds, so bounded in-place retries always
  converge; a re-forked reader (the sharded executor's recovery move)
  re-rolls its faults entirely.
* **Latency spikes** sleep without failing — they exercise deadlines.

Plans come from code (``SeriesStore(..., faults=FaultPlan(...))``), from a
compact spec string (``"seed=7,transient=0.2,latency=0.05"``), or from the
``REPRO_FAULT_PLAN`` environment variable, which applies the plan to every
store the process creates.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, fields, replace
from hashlib import blake2b

import numpy as np

from .backends import StorageBackend
from .integrity import CorruptionError

__all__ = [
    "FAULT_PLAN_ENV",
    "CRASH_POINTS",
    "TransientIOError",
    "FaultPlan",
    "FaultInjectingBackend",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "crash_point",
    "reset_crash_counters",
    "take_kill_budget",
]

#: environment variable holding a fault-plan spec applied to every new store.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: named process-kill sites on the ingest write path (WAL + checkpoint).
#: A plan with ``crash="kill_after_wal_write"`` SIGKILLs the process the
#: ``crash_hit``-th time execution reaches that point — modeling a power cut
#: at exactly that instant.  The crash-recovery harness drives an ingesting
#: child through each of these and asserts that reopening the store restores
#: every acked row bit-exact.
CRASH_POINTS = (
    # after the WAL record is written + fsynced, before the ack returns
    "kill_after_wal_write",
    # after the record bytes are buffered, before flush/fsync (torn tail)
    "kill_before_wal_fsync",
    # mid segment write during checkpoint (orphaned .tmp left behind)
    "kill_mid_checkpoint",
    # segment sealed, manifest not yet updated (orphaned segment file)
    "kill_after_checkpoint_segment",
    # manifest updated, WAL not yet truncated (replay must be idempotent)
    "kill_before_wal_truncate",
)

#: per-process hit counters for crash points.  Module-global (not on the
#: frozen plan) — safe because reaching the configured hit kills the process.
_crash_hits: dict[str, int] = {}
_crash_lock = threading.Lock()


def reset_crash_counters() -> None:
    """Forget crash-point hit counts (test isolation within one process)."""
    with _crash_lock:
        _crash_hits.clear()


def crash_point(plan: "FaultPlan | None", name: str) -> None:
    """SIGKILL the current process if ``plan`` schedules a crash at ``name``.

    The ``crash_hit``-th arrival at the named point dies; earlier arrivals
    pass through.  SIGKILL (not ``sys.exit``) so no ``finally:`` blocks,
    ``atexit`` hooks, or buffered writes soften the crash — exactly what a
    power cut looks like to the files underneath.
    """
    if plan is None or not plan.crash or plan.crash != name:
        return
    with _crash_lock:
        hit = _crash_hits.get(name, 0) + 1
        _crash_hits[name] = hit
    if hit >= int(plan.crash_hit):
        os.kill(os.getpid(), signal.SIGKILL)


def take_kill_budget(plan: "FaultPlan | None") -> bool:
    """Consume one unit of ``plan.kill_worker`` budget; True means "kill".

    Called by the sharded coordinator as it dispatches each process task: the
    first ``kill_worker`` dispatches get a kill flag (the worker SIGKILLs
    itself on arrival), later dispatches — including retries of the killed
    tasks — run normally.  Consuming the budget in the coordinator (not the
    workers) is what makes the fault transient: per-worker counters would die
    with the worker and every retry would be assassinated forever.  Shares the
    crash-point counter table, so :func:`reset_crash_counters` clears it.
    """
    if plan is None or int(plan.kill_worker) <= 0:
        return False
    with _crash_lock:
        spent = _crash_hits.get("kill_worker", 0)
        if spent >= int(plan.kill_worker):
            return False
        _crash_hits["kill_worker"] = spent + 1
    return True


class TransientIOError(IOError):
    """An injected (or detected) transient read failure; retrying may succeed."""


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of injected storage faults.

    Rates are per *read site* (one distinct read call shape), not per byte:
    ``transient=0.2`` makes roughly one in five read sites fail with a
    :class:`TransientIOError` for its first ``1..max_failures`` attempts.
    """

    seed: int = 0
    #: fraction of read sites that raise :class:`TransientIOError`.
    transient: float = 0.0
    #: fraction of read sites that sleep ``latency_seconds`` before serving.
    latency: float = 0.0
    latency_seconds: float = 0.002
    #: fraction of row-range read sites that return fewer rows than asked.
    truncate: float = 0.0
    #: fraction of file-row regions served with a flipped bit (damage at
    #: rest: the same regions are corrupt on every read and every fork).
    corrupt: float = 0.0
    #: corruption granularity in file rows.
    region_rows: int = 64
    #: a faulty site fails at most this many consecutive attempts.
    max_failures: int = 3
    #: named crash point (one of :data:`CRASH_POINTS`) — SIGKILL the process
    #: on the ``crash_hit``-th arrival.  Empty string disables crashing.
    crash: str = ""
    #: which arrival at the crash point dies (1 = the first).
    crash_hit: int = 1
    #: pretend ``fsync`` succeeded without flushing (a lying disk / volatile
    #: write cache): WAL appends skip flush+fsync, so a SIGKILL genuinely
    #: loses userspace-buffered bytes and recovery sees real torn tails.
    lie_fsync: int = 0
    #: SIGKILL budget for process-executor workers: the first ``kill_worker``
    #: shard tasks dispatched to a process pool assassinate their worker on
    #: arrival.  The budget is consumed coordinator-side (see
    #: :func:`take_kill_budget`), so retried tasks survive — modeling a worker
    #: lost mid-flight, not a poison-pill task.
    kill_worker: int = 0

    def __post_init__(self) -> None:
        for name in ("transient", "latency", "truncate", "corrupt"):
            rate = float(getattr(self, name))
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1]; got {rate}")
        if int(self.region_rows) <= 0:
            raise ValueError("region_rows must be positive")
        if int(self.max_failures) <= 0:
            raise ValueError("max_failures must be positive")
        if self.crash and self.crash not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {self.crash!r}; expected one of {CRASH_POINTS}"
            )
        if int(self.crash_hit) < 1:
            raise ValueError("crash_hit must be at least 1")
        if int(self.kill_worker) < 0:
            raise ValueError("kill_worker must be non-negative")

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``"seed=7,transient=0.2,latency=0.05"`` into a plan."""
        plan = cls()
        known = {f.name: f.type for f in fields(cls)}
        updates = {}
        for item in str(spec).split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad fault-plan item {item!r}; expected key=value")
            key, value = (part.strip() for part in item.split("=", 1))
            if key not in known:
                raise ValueError(
                    f"unknown fault-plan key {key!r}; expected one of {sorted(known)}"
                )
            if key == "crash":
                # "crash=kill_after_wal_write:3" folds the hit count in.
                if ":" in value:
                    value, _, hit = value.partition(":")
                    updates["crash_hit"] = int(hit)
                updates[key] = value.strip()
            elif key in (
                "seed",
                "region_rows",
                "max_failures",
                "crash_hit",
                "lie_fsync",
                "kill_worker",
            ):
                updates[key] = int(value)
            else:
                updates[key] = float(value)
        return replace(plan, **updates)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan described by ``REPRO_FAULT_PLAN``, or ``None`` if unset."""
        spec = os.environ.get(FAULT_PLAN_ENV, "").strip()
        return cls.from_spec(spec) if spec else None

    def describe(self) -> str:
        active = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != f.default
        }
        return "FaultPlan(" + ", ".join(f"{k}={v}" for k, v in active.items()) + ")"

    # -- deterministic rolls ---------------------------------------------------
    def roll(self, *parts) -> float:
        """A uniform [0, 1) value determined by ``(seed, *parts)``."""
        digest = blake2b(repr((self.seed,) + parts).encode(), digest_size=8).digest()
        return int.from_bytes(digest, "little") / float(2**64)


class _Incarnations:
    """A shared counter handing each forked wrapper a fresh fault context."""

    def __init__(self) -> None:
        self._n = 0
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            self._n += 1
            return self._n

    def __getstate__(self) -> dict:
        return {"_n": self._n}

    def __setstate__(self, state: dict) -> None:
        self._n = state["_n"]
        self._lock = threading.Lock()


class FaultInjectingBackend(StorageBackend):
    """Wrap any backend and inject the faults a :class:`FaultPlan` describes.

    Read primitives (``read_rows``/``take``/``row``/``get`` and the
    compressed backend's ``quantized_parts``) pass through the plan;
    geometry, accounting, slicing, and release delegate untouched, so the
    wrapper is invisible to counters.  ``fork()`` wraps a fork of the inner
    backend under a *new incarnation* — transient faults re-roll, which is
    what lets a re-forked shard recover — while ``slice()`` keeps the current
    incarnation (a shard partition is not a retry).
    """

    def __init__(
        self,
        inner: StorageBackend,
        plan: FaultPlan,
        *,
        _incarnations: _Incarnations | None = None,
        _incarnation: int | None = None,
    ) -> None:
        if isinstance(inner, FaultInjectingBackend):
            inner = inner.inner  # never stack injection layers
        self.inner = inner
        self.plan = plan
        self._incarnations = _incarnations or _Incarnations()
        self._incarnation = self._incarnations.next() if _incarnation is None else _incarnation
        self._attempts: dict[tuple, int] = {}
        self._attempts_lock = threading.Lock()

    @property
    def kind(self) -> str:  # type: ignore[override]
        return self.inner.kind

    # -- fault machinery -------------------------------------------------------
    def _faulty(self, kind: str, rate: float, site: tuple) -> bool:
        """Deterministically decide whether this site suffers ``kind`` now.

        A faulty site fails its first ``1..max_failures`` attempts within one
        incarnation, then succeeds — bounded retries always converge.
        """
        if rate <= 0.0:
            return False
        key = (kind, self._incarnation) + site
        if self.plan.roll(*key) >= rate:
            return False
        failures = 1 + int(
            self.plan.roll("n", *key) * (self.plan.max_failures - 1) + 0.5
        )
        with self._attempts_lock:
            attempt = self._attempts.get(key, 0) + 1
            self._attempts[key] = attempt
        return attempt <= failures

    def _enter(self, op: str, site: tuple) -> None:
        plan = self.plan
        if plan.latency and plan.roll("lat", op, self._incarnation, *site) < plan.latency:
            time.sleep(plan.latency_seconds)
        if self._faulty("io", plan.transient, (op,) + site):
            raise TransientIOError(
                f"injected transient I/O error in {op}{site} "
                f"(plan seed {plan.seed}, incarnation {self._incarnation})"
            )

    def _corrupt(self, data: np.ndarray, first_file_row: int) -> np.ndarray:
        """Flip one bit per planned corrupt *file-row region* inside ``data``.

        Keyed by absolute region only — damage at rest: identical on every
        read, every attempt, and every fork.  The inner read may hand out a
        read-only view; corrupted results are returned as a modified copy.
        """
        plan = self.plan
        if plan.corrupt <= 0.0 or data.ndim != 2 or data.shape[0] == 0:
            return data
        rows = int(data.shape[0])
        region = int(plan.region_rows)
        out = None
        first_region = first_file_row // region
        last_region = (first_file_row + rows - 1) // region
        for r in range(first_region, last_region + 1):
            if plan.roll("rot", r) >= plan.corrupt:
                continue
            if out is None:
                out = np.array(data, copy=True)
            lo = max(0, r * region - first_file_row)
            hi = min(rows, (r + 1) * region - first_file_row)
            bits = out[lo:hi].view(np.uint32)
            bits[:, 0] ^= np.uint32(1 << 13)  # one mantissa bit per row
        return data if out is None else out

    def _file_row(self, view_row: int) -> int:
        return int(view_row) + self.inner.row_offset

    # -- read primitives -------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        # One-shot whole-view materialization (the `scan()` path).  Faulting
        # it would mean copying the entire collection per access; the chaos
        # coverage for scans comes through the chunked/row primitives.
        return self.inner.values

    def read_rows(self, start: int, stop: int) -> np.ndarray:
        site = (int(start), int(stop))
        self._enter("read_rows", site)
        data = self.inner.read_rows(start, stop)
        if self._faulty("cut", self.plan.truncate, ("read_rows",) + site):
            data = data[: max(0, data.shape[0] - max(1, data.shape[0] // 4))]
        return self._corrupt(data, self._file_row(max(0, int(start))))

    def take(self, positions: np.ndarray) -> np.ndarray:
        idx = np.asarray(positions, dtype=np.int64)
        digest = blake2b(idx.tobytes(), digest_size=8).hexdigest()
        site = (int(idx.size), digest)
        self._enter("take", site)
        data = self.inner.take(idx)
        if self._faulty("cut", self.plan.truncate, ("take",) + site):
            data = data[: max(0, data.shape[0] - 1)]
        if self.plan.corrupt and idx.size:
            # Per-row corruption by each row's own file region.
            out = None
            regions = (idx + self.inner.row_offset) // int(self.plan.region_rows)
            for r in np.unique(regions):
                if self.plan.roll("rot", int(r)) >= self.plan.corrupt:
                    continue
                if out is None:
                    out = np.array(data, copy=True)
                mask = (regions == r)[: out.shape[0]]
                bits = out[mask].view(np.uint32)
                bits[:, 0] ^= np.uint32(1 << 13)
                out[mask] = bits.view(np.float32)
            data = data if out is None else out
        return data

    def row(self, position: int) -> np.ndarray:
        site = (int(position),)
        self._enter("row", site)
        data = self.inner.row(position)
        return self._corrupt(
            data.reshape(1, -1), self._file_row(int(position))
        ).reshape(data.shape)

    def get(self, key) -> np.ndarray:
        self._enter("get", (repr(np.asarray(key).tolist()) if isinstance(key, np.ndarray) else repr(key),))
        return self.inner.get(key)

    def quantized_parts(self, start: int, stop: int):
        self._enter("quantized_parts", (int(start), int(stop)))
        return self.inner.quantized_parts(start, stop)

    # -- delegation ------------------------------------------------------------
    @property
    def count(self) -> int:
        return self.inner.count

    @property
    def length(self) -> int:
        return self.inner.length

    @property
    def dtype(self) -> np.dtype:
        return self.inner.dtype

    @property
    def source_path(self) -> str | None:
        return self.inner.source_path

    @property
    def row_offset(self) -> int:
        return self.inner.row_offset

    @property
    def supports_quantized_scan(self) -> bool:  # type: ignore[override]
        return self.inner.supports_quantized_scan

    def checksums(self):
        return self.inner.checksums()

    def physical_bytes(self, start: int, stop: int) -> int:
        return self.inner.physical_bytes(start, stop)

    def physical_bytes_for(self, positions: np.ndarray) -> int:
        return self.inner.physical_bytes_for(positions)

    def release(self, start: int = 0, stop: int | None = None) -> None:
        self.inner.release(start, stop)

    def slice(self, start: int, stop: int) -> "FaultInjectingBackend":
        return FaultInjectingBackend(
            self.inner.slice(start, stop),
            self.plan,
            _incarnations=self._incarnations,
            _incarnation=self._incarnation,
        )

    def fork(self) -> "FaultInjectingBackend":
        return FaultInjectingBackend(
            self.inner.fork(), self.plan, _incarnations=self._incarnations
        )

    def describe(self) -> dict:
        info = self.inner.describe()
        info["faults"] = self.plan.describe()
        return info

    def __getattr__(self, name):
        # Anything not intercepted (e.g. `info`, `quantized_itemsize`)
        # delegates to the wrapped backend.
        return getattr(self.inner, name)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_attempts"] = {}
        state["_attempts_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._attempts_lock = threading.Lock()


#: jitter source for retry backoff: a private Generator so backoff never
#: touches (or de-seeds) the interpreter-global RNG stream.  Unseeded by
#: design — jitter only scales sleep delays, never answers — and concurrent
#: draws can at worst degrade jitter quality, which is harmless here.
_JITTER_RNG = np.random.default_rng()


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for transient read faults.

    ``attempts`` counts total tries (1 = no retry).  Delays grow as
    ``base_delay * multiplier**(attempt-1)`` capped at ``max_delay``, with up
    to ``jitter`` of each delay randomized away so synchronized workers
    de-correlate.  :meth:`is_transient` is the permanent/transient split:
    corruption and structural errors (missing files, bad permissions) are
    permanent — re-reading damaged bytes cannot help — while other
    :class:`OSError`/:class:`TimeoutError` failures are worth retrying.
    """

    attempts: int = 4
    base_delay: float = 0.002
    multiplier: float = 2.0
    max_delay: float = 0.1
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if int(self.attempts) < 1:
            raise ValueError("attempts must be at least 1")

    _PERMANENT = (
        CorruptionError,
        FileNotFoundError,
        PermissionError,
        IsADirectoryError,
        NotADirectoryError,
    )

    def is_transient(self, exc: BaseException) -> bool:
        if isinstance(exc, self._PERMANENT):
            return False
        return isinstance(exc, (OSError, TimeoutError))

    def delay_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** max(0, attempt - 1)
        )
        if self.jitter:
            delay *= 1.0 - self.jitter * float(_JITTER_RNG.random())
        return float(delay)


#: the storage layer's default: 4 attempts, 2/4/8 ms backoff with jitter.
DEFAULT_RETRY_POLICY = RetryPolicy()
