"""Query objects and workloads.

The paper evaluates exact whole-matching 1-NN queries; the query classes here
also model k-NN with arbitrary ``k``, r-range queries, and the approximate
flavours defined in §2 of the paper (ng-approximate, epsilon-approximate,
delta-epsilon-approximate) so the definitions have a concrete home in code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

import numpy as np
import numpy.typing as npt

from .series import SERIES_DTYPE, znormalize

__all__ = [
    "MatchingAccuracy",
    "KnnQuery",
    "RangeQuery",
    "QueryWorkload",
]


class MatchingAccuracy(str, Enum):
    """Accuracy guarantees of a similarity-search algorithm (paper §2)."""

    EXACT = "exact"
    NG_APPROXIMATE = "ng-approximate"
    EPSILON_APPROXIMATE = "epsilon-approximate"
    DELTA_EPSILON_APPROXIMATE = "delta-epsilon-approximate"


@dataclass
class KnnQuery:
    """A whole-matching k-nearest-neighbor query.

    Attributes
    ----------
    series:
        The query series (same length as every series in the collection).
    k:
        Number of neighbors requested (the paper uses ``k=1``).
    label:
        Optional workload label (e.g. ``"easy"`` / ``"hard"`` for the controlled
        workloads in Table 2).
    """

    series: npt.NDArray[np.float32]
    k: int = 1
    label: str = ""

    def __post_init__(self) -> None:
        self.series = np.asarray(self.series, dtype=SERIES_DTYPE)
        if self.series.ndim != 1:
            raise ValueError("query series must be one-dimensional")
        if self.k <= 0:
            raise ValueError("k must be positive")

    @property
    def length(self) -> int:
        return int(self.series.shape[0])


@dataclass
class RangeQuery:
    """A whole-matching r-range query (Definition 2 in the paper)."""

    series: npt.NDArray[np.float32]
    radius: float
    label: str = ""

    def __post_init__(self) -> None:
        self.series = np.asarray(self.series, dtype=SERIES_DTYPE)
        if self.series.ndim != 1:
            raise ValueError("query series must be one-dimensional")
        if self.radius < 0:
            raise ValueError("radius must be non-negative")

    @property
    def length(self) -> int:
        return int(self.series.shape[0])


@dataclass
class QueryWorkload:
    """A named collection of queries run back-to-back (paper workloads have 100)."""

    name: str
    queries: list[KnnQuery] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.queries:
            lengths = {q.length for q in self.queries}
            if len(lengths) != 1:
                raise ValueError("all queries in a workload must share one length")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[KnnQuery]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> KnnQuery:
        return self.queries[index]

    @property
    def length(self) -> int:
        if not self.queries:
            raise ValueError("workload is empty")
        return self.queries[0].length

    @classmethod
    def from_array(
        cls,
        series: npt.ArrayLike,
        name: str = "workload",
        k: int = 1,
        normalize: bool = False,
        labels: list[str] | None = None,
    ) -> "QueryWorkload":
        """Build a workload from a 2-d array with one query per row."""
        arr = np.asarray(series, dtype=SERIES_DTYPE)
        if arr.ndim != 2:
            raise ValueError("expected a 2-d array of queries")
        if normalize:
            arr = znormalize(arr)
        if labels is None:
            labels = ["" for _ in range(arr.shape[0])]
        if len(labels) != arr.shape[0]:
            raise ValueError("labels must match the number of queries")
        queries = [
            KnnQuery(series=row, k=k, label=label) for row, label in zip(arr, labels)
        ]
        return cls(name=name, queries=queries)
