"""Growable contiguous array storage for index-node payloads.

The tree indexes keep their leaf payloads (series positions and, for the
iSAX family, the PAA rows needed to re-split) in :class:`GrowableArray`
instances: contiguous NumPy buffers that grow by amortized doubling.  Storing
payloads structure-of-arrays style means

* query-time leaf scans hand one ready-made integer vector straight to the
  store instead of converting a Python list on every visit,
* leaf splits are slice-and-mask operations over one matrix instead of
  per-element Python loops, and
* bulk loading can adopt whole position blocks in a single ``memcpy``-style
  extend.

The incremental insert path keeps working through :meth:`GrowableArray.append`
with O(1) amortized cost.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GrowableArray", "group_values", "position_vector"]

_MIN_CAPACITY = 8


def position_vector() -> "GrowableArray":
    """A growable int64 vector — the canonical leaf-position payload."""
    return GrowableArray(dtype=np.int64)


def group_values(values: np.ndarray):
    """Group a 1-D array by value, yielding ``(value, indices)`` per group.

    The slice-and-mask leaf splits group one payload column (a re-symbolized
    segment, a trie level's symbols) and hand each child its index block:
    one stable argsort, then contiguous runs.  Stability keeps indices
    ascending within each group; groups come in ascending value order.
    """
    order = np.argsort(values, kind="stable")
    ordered = values[order]
    change = np.flatnonzero(ordered[1:] != ordered[:-1]) + 1
    starts = np.concatenate(([0], change, [order.size]))
    for start, stop in zip(starts[:-1], starts[1:]):
        yield ordered[start], order[start:stop]


class GrowableArray:
    """A contiguous NumPy array growable along axis 0 (amortized doubling).

    Parameters
    ----------
    width:
        Number of columns; ``None`` makes the array one-dimensional (the shape
        used for position vectors).
    dtype:
        Element dtype (``int64`` for positions, ``float64`` for PAA rows).
    capacity:
        Initial row capacity.
    """

    __slots__ = ("_data", "_size")

    def __init__(
        self,
        width: int | None = None,
        dtype=np.float64,
        capacity: int = _MIN_CAPACITY,
    ) -> None:
        shape = (capacity,) if width is None else (capacity, width)
        self._data = np.empty(shape, dtype=dtype)
        self._size = 0

    # -- access ----------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """Contiguous read-only view of the live rows.

        The view is frozen (``WRITEABLE`` cleared) so callers cannot corrupt
        a leaf payload through it — mutation raises, mirroring the read-only
        views :class:`~repro.core.storage.SeriesStore` hands out.
        """
        view = self._data[: self._size]
        view.setflags(write=False)
        return view

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self):
        return iter(self.data)

    def __getitem__(self, index):
        return self.data[index]

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        view = self.data
        if dtype is not None and dtype != view.dtype:
            return view.astype(dtype)
        if copy:
            return view.copy()
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GrowableArray(size={self._size}, shape={self._data.shape})"

    # -- growth ----------------------------------------------------------------
    def _reserve(self, needed: int) -> None:
        capacity = self._data.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity, _MIN_CAPACITY)
        grown = np.empty(
            (new_capacity,) + self._data.shape[1:], dtype=self._data.dtype
        )
        grown[: self._size] = self._data[: self._size]
        self._data = grown

    def append(self, row) -> None:
        """Append one row (amortized O(1))."""
        self._reserve(self._size + 1)
        self._data[self._size] = row
        self._size += 1

    def extend(self, block) -> None:
        """Append a whole block of rows in one array copy."""
        arr = np.asarray(block)
        count = arr.shape[0]
        if count == 0:
            return
        self._reserve(self._size + count)
        self._data[self._size : self._size + count] = arr
        self._size += count

    def clear(self) -> None:
        """Drop every row and release the backing buffer."""
        self._data = np.empty((0,) + self._data.shape[1:], dtype=self._data.dtype)
        self._size = 0

    # -- pickling (required because of __slots__) ---------------------------------
    def __getstate__(self):
        return {"data": self.data.copy()}

    def __setstate__(self, state):
        self._data = state["data"]
        self._size = self._data.shape[0]
