"""Write-ahead log for the growable backend's ingest path.

Durability contract: :meth:`WriteAheadLog.append` returns only after the
CRC-framed record holding the new rows has been written *and fsynced* — a
caller who has seen ``append`` return ("acked" rows) is guaranteed to find
those rows again after any process kill or power cut.  Rows whose append was
in flight when the process died either survive whole (the record made it to
disk intact) or vanish whole (a torn tail, truncated on recovery); a record
is never half-applied, so the recovered store is always an exact prefix of
the acked-row sequence at a record boundary.

File layout — one header, then back-to-back records::

    header  <4s H H I I I>   magic RWAL, version, pad, series length,
                             reserved, CRC of the preceding 20 bytes
    record  <I Q I I>        row count m, absolute start row, CRC of the
                             m*length*4 payload bytes, CRC of the preceding
                             16 header bytes
            payload          m rows of float32, C-order

Everything is little-endian.  The absolute start row in each record makes
replay idempotent: records whose rows are already sealed into segments (the
checkpoint ran but the truncate did not) are skipped, so a crash *anywhere*
in the checkpoint sequence recovers cleanly.

:meth:`replay` never raises for a clean torn tail — a partially-written
final record is expected crash debris, reported in the
:class:`RecoveryReport` and truncated away.  It *does* raise
:class:`~repro.core.integrity.CorruptionError` for a damaged header or a
record that fails its CRC *before* intact later records, which indicates
damage at rest rather than a crash.
"""

from __future__ import annotations

import io
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .faults import FaultPlan, crash_point
from .integrity import CorruptionError, checksum

__all__ = ["WriteAheadLog", "RecoveryReport", "WAL_SUFFIX"]

WAL_SUFFIX = ".wal"

_MAGIC = b"RWAL"
_VERSION = 1
#: magic, version, pad, series length, reserved, self-CRC
_HEADER = struct.Struct("<4sHHIII")
#: rows, absolute start row, payload CRC, header CRC
_RECORD = struct.Struct("<IQII")

_DTYPE = np.dtype("<f4")


@dataclass
class RecoveryReport:
    """What opening a growable store found and did.  Never an exception for
    expected crash debris — a clean torn tail or orphaned temp files are
    normal aftermath, and this report is how they surface to the caller."""

    #: rows restored from sealed segments (the manifest's row count).
    sealed_rows: int = 0
    #: WAL records replayed into the tail buffer.
    replayed_records: int = 0
    #: rows those records carried.
    replayed_rows: int = 0
    #: records skipped because their rows were already sealed (a checkpoint
    #: completed but the process died before truncating the log).
    skipped_records: int = 0
    #: bytes of torn tail discarded from the end of the WAL.
    torn_bytes: int = 0
    #: why the tail was considered torn ("" when the log ended cleanly).
    torn_reason: str = ""
    #: orphaned ``*.tmp`` files swept during open.
    swept_tmp: list[str] = field(default_factory=list)
    #: sealed segment files present but absent from the manifest (a crash
    #: between segment seal and manifest update), removed during open.
    swept_segments: list[str] = field(default_factory=list)

    @property
    def total_rows(self) -> int:
        return self.sealed_rows + self.replayed_rows

    @property
    def clean(self) -> bool:
        """True when open found no crash debris at all."""
        return not (
            self.torn_bytes
            or self.skipped_records
            or self.swept_tmp
            or self.swept_segments
        )

    def describe(self) -> dict:
        return {
            "sealed_rows": self.sealed_rows,
            "replayed_records": self.replayed_records,
            "replayed_rows": self.replayed_rows,
            "skipped_records": self.skipped_records,
            "torn_bytes": self.torn_bytes,
            "torn_reason": self.torn_reason,
            "swept_tmp": list(self.swept_tmp),
            "swept_segments": list(self.swept_segments),
            "total_rows": self.total_rows,
            "clean": self.clean,
        }


class WriteAheadLog:
    """CRC-framed, fsync-acked append log of float32 row batches.

    One instance owns the append handle; replay/truncate reopen as needed.
    Not thread-safe by itself — the growable backend serializes writers.
    """

    def __init__(
        self, path: Path | str, length: int, *, plan: FaultPlan | None = None
    ) -> None:
        self.path = Path(path)
        self.length = int(length)
        self.plan = plan
        self._handle: io.BufferedWriter | None = None

    # -- append path -----------------------------------------------------------
    def _ensure_open(self) -> io.BufferedWriter:
        if self._handle is None:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            # repro-lint: disable=atomic-writes -- the WAL is append-only by
            # definition; durability comes from CRC framing + fsync + replay,
            # not from rename (a renamed log would lose the acked tail).
            self._handle = open(self.path, "ab")
            if fresh:
                self._handle.write(self._header_bytes())
                self._sync()
        return self._handle

    def _header_bytes(self) -> bytes:
        head = _HEADER.pack(_MAGIC, _VERSION, 0, self.length, 0, 0)[:-4]
        return head + struct.pack("<I", checksum(head))

    def _sync(self) -> None:
        """Flush + fsync — unless the plan models a lying disk."""
        assert self._handle is not None
        if self.plan is not None and self.plan.lie_fsync:
            return  # buffered bytes are genuinely lost if the process dies
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, rows: np.ndarray, start_row: int) -> None:
        """Durably log ``rows`` as one record starting at ``start_row``.

        Returns only after fsync — the ack the durability contract is built
        on.  A crash before the return leaves either an intact record
        (recovered) or a torn tail (discarded); never a partial batch.
        """
        data = np.ascontiguousarray(rows, dtype=_DTYPE)
        if data.ndim != 2 or data.shape[1] != self.length:
            raise ValueError(
                f"WAL rows must be (m, {self.length}); got {data.shape}"
            )
        if data.shape[0] == 0:
            return
        payload = data.tobytes()
        head = _RECORD.pack(data.shape[0], int(start_row), checksum(payload), 0)[:-4]
        frame = head + struct.pack("<I", checksum(head)) + payload
        handle = self._ensure_open()
        handle.write(frame)
        crash_point(self.plan, "kill_before_wal_fsync")
        self._sync()
        crash_point(self.plan, "kill_after_wal_write")

    # -- recovery path ---------------------------------------------------------
    def replay(
        self, *, repair: bool = True
    ) -> tuple[list[tuple[int, np.ndarray]], RecoveryReport]:
        """Read back every intact record; truncate any torn tail.

        Returns ``([(start_row, rows), ...], report)`` in log order.  With
        ``repair=False`` (read-only reopen, e.g. an unpickled slice in
        another process) the torn tail is still *ignored* but the file is
        left untouched — only the owning writer repairs.
        """
        report = RecoveryReport()
        if not self.path.exists():
            return [], report
        raw = self.path.read_bytes()
        if len(raw) == 0:
            return [], report
        if len(raw) < _HEADER.size:
            # Shorter than one header: a writer died creating the log.
            report.torn_bytes = len(raw)
            report.torn_reason = "short header"
            if repair:
                self._truncate_to(0)
            return [], report
        magic, version, _, length, _, crc = _HEADER.unpack_from(raw, 0)
        if magic != _MAGIC or crc != checksum(raw[: _HEADER.size - 4]):
            raise CorruptionError(f"WAL header damaged in {self.path}")
        if version != _VERSION:
            raise CorruptionError(
                f"WAL version {version} unsupported (expected {_VERSION})"
            )
        if length != self.length:
            raise CorruptionError(
                f"WAL series length {length} != store length {self.length}"
            )

        records: list[tuple[int, np.ndarray]] = []
        offset = _HEADER.size
        row_bytes = self.length * _DTYPE.itemsize
        while offset < len(raw):
            if offset + _RECORD.size > len(raw):
                report.torn_reason = "short record header"
                break
            m, start_row, payload_crc, head_crc = _RECORD.unpack_from(raw, offset)
            if head_crc != checksum(raw[offset : offset + _RECORD.size - 4]):
                report.torn_reason = "record header CRC mismatch"
                break
            body_lo = offset + _RECORD.size
            body_hi = body_lo + m * row_bytes
            if body_hi > len(raw):
                report.torn_reason = "short payload"
                break
            if payload_crc != checksum(raw[body_lo:body_hi]):
                report.torn_reason = "payload CRC mismatch"
                break
            rows = np.frombuffer(raw[body_lo:body_hi], dtype=_DTYPE).reshape(
                m, self.length
            )
            records.append((int(start_row), rows))
            offset = body_hi
        if offset < len(raw):
            # Torn tail.  Intact records *after* the damage mean this is not
            # crash debris but damage at rest — refuse to silently drop data.
            if self._intact_record_beyond(raw, offset):
                raise CorruptionError(
                    f"WAL record damaged mid-log in {self.path} "
                    f"({report.torn_reason} at byte {offset})"
                )
            report.torn_bytes = len(raw) - offset
            if repair:
                self._truncate_to(offset)
        report.replayed_records = len(records)
        report.replayed_rows = sum(r.shape[0] for _, r in records)
        return records, report

    def _intact_record_beyond(self, raw: bytes, damaged_at: int) -> bool:
        """Scan past damage for a framed record that still checks out."""
        row_bytes = self.length * _DTYPE.itemsize
        offset = damaged_at + 1
        limit = len(raw) - _RECORD.size
        while offset <= limit:
            m, _, payload_crc, head_crc = _RECORD.unpack_from(raw, offset)
            if head_crc == checksum(raw[offset : offset + _RECORD.size - 4]) and m:
                body_lo = offset + _RECORD.size
                body_hi = body_lo + m * row_bytes
                if body_hi <= len(raw) and payload_crc == checksum(
                    raw[body_lo:body_hi]
                ):
                    return True
            offset += 1
        return False

    def _truncate_to(self, size: int) -> None:
        self.close()
        # repro-lint: disable=atomic-writes -- in-place truncation of a torn
        # tail at a verified record boundary; any crash point here is re-run
        # by the same replay that chose the boundary.
        with open(self.path, "r+b") as handle:
            handle.truncate(size)
            os.fsync(handle.fileno())

    def truncate(self) -> None:
        """Reset the log to an empty (header-only) state, durably."""
        self.close()
        # repro-lint: disable=atomic-writes -- resetting the log in place is
        # safe: truncate() runs only after the tail was sealed into a fsynced
        # segment, and a crash mid-rewrite is caught by header validation on
        # the next open (the sealed rows live in the segment, not the WAL).
        with open(self.path, "wb") as handle:
            handle.write(self._header_bytes())
            handle.flush()
            os.fsync(handle.fileno())

    # -- bookkeeping -----------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        if self._handle is not None:
            self._handle.flush()
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
            finally:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
