"""Data series containers and normalization.

A *data series* is an ordered sequence of real-valued points.  In the
similarity-search setting of the paper, a series of length ``n`` is treated as a
single point in an ``n``-dimensional space.  This module provides the light-weight
dataset container used throughout the library, plus z-normalization helpers.

All series are stored as single-precision floats (``float32``), matching the
paper's experimental setup ("All methods use single precision values").
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

import numpy as np

__all__ = [
    "SERIES_DTYPE",
    "RAW_SUFFIXES",
    "znormalize",
    "is_znormalized",
    "Dataset",
    "SeriesFileWriter",
    "write_series_file",
    "unique_tmp_path",
]

#: dtype used for every series in the library (the paper uses single precision).
SERIES_DTYPE = np.float32

#: file suffixes treated as headerless raw little-endian float32 row data
#: (anything else is read/written as a standard ``.npy`` array file).
RAW_SUFFIXES = (".f32", ".raw", ".bin")


def unique_tmp_path(path: str | Path) -> Path:
    """A collision-proof ``.tmp`` sibling for an atomic write of ``path``.

    The name embeds the writer's pid plus a random token, so a writer whose
    process died before ``abandon()`` could run can never collide with — or
    be mistaken for — a live writer targeting the same file.  Orphans keep
    the ``.tmp`` suffix so recovery sweeps
    (:func:`repro.core.growable.sweep_orphaned_tmp`) find them.
    """
    import secrets

    path = Path(path)
    return path.with_name(
        f"{path.name}.{os.getpid()}-{secrets.token_hex(4)}.tmp"
    )


def znormalize(series: np.ndarray, epsilon: float = 1e-8) -> np.ndarray:
    """Return a z-normalized copy of ``series`` (mean 0, standard deviation 1).

    Works on a single series (1-d array) or a batch of series (2-d array, one
    series per row).  Series with (near-)zero standard deviation are mapped to
    all-zeros rather than dividing by zero.

    Parameters
    ----------
    series:
        Input array of shape ``(n,)`` or ``(m, n)``.
    epsilon:
        Standard deviations below this threshold are treated as zero.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        mean = arr.mean()
        std = arr.std()
        if std < epsilon:
            return np.zeros_like(arr, dtype=SERIES_DTYPE)
        return ((arr - mean) / std).astype(SERIES_DTYPE)
    if arr.ndim != 2:
        raise ValueError(f"expected a 1-d or 2-d array, got ndim={arr.ndim}")
    mean = arr.mean(axis=1, keepdims=True)
    std = arr.std(axis=1, keepdims=True)
    flat = std[:, 0] < epsilon
    std[flat, 0] = 1.0
    out = ((arr - mean) / std).astype(SERIES_DTYPE)
    out[flat] = 0.0
    return out


def is_znormalized(series: np.ndarray, atol: float = 1e-2) -> bool:
    """Check whether ``series`` (1-d or 2-d) is approximately z-normalized."""
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    means = arr.mean(axis=1)
    stds = arr.std(axis=1)
    # Constant (all-zero after normalization) series are accepted.
    ok_mean = np.abs(means) <= atol
    ok_std = (np.abs(stds - 1.0) <= atol) | (stds <= atol)
    return bool(np.all(ok_mean & ok_std))


class Dataset:
    """A collection of equal-length data series.

    The paper operates on multi-hundred-gigabyte raw files; this reproduction
    serves the collection through :class:`repro.core.storage.SeriesStore`,
    either from an in-memory array or from an attached file backend.

    Attributes
    ----------
    values:
        Array of shape ``(count, length)`` holding one series per row.  For a
        dataset constructed with ``values=None`` and a file backend, this is a
        *lazy* property: geometry (``count``/``length``) comes from the
        backend and the array materializes only when ``values`` itself is
        touched — streamed consumers (``scan_chunks`` and friends) never do,
        which is what keeps the compressed backend out-of-core.
    name:
        Human readable dataset name (used by the benchmark harness).
    normalized:
        Whether the rows are z-normalized.  The paper normalizes every dataset
        in advance; the workload generators in :mod:`repro.workloads` do the
        same by default.
    backend:
        Attached storage backend for file-backed datasets
        (``Dataset.from_file``); ``None`` for plain in-memory datasets.  When
        present the dataset pickles by path, not by bytes.
    """

    def __init__(
        self,
        values: np.ndarray | None = None,
        name: str = "dataset",
        normalized: bool = True,
        metadata: dict | None = None,
        backend: object | None = None,
    ) -> None:
        self.name = name
        self.normalized = normalized
        self.metadata = {} if metadata is None else metadata
        self.backend = backend
        if values is None:
            if backend is None:
                raise ValueError("Dataset needs values or a storage backend")
            if backend.length == 0:
                raise ValueError("Dataset series must contain at least one point")
            self._values = None
        else:
            values = np.asarray(values, dtype=SERIES_DTYPE)
            if values.ndim != 2:
                raise ValueError(
                    f"Dataset values must be 2-d (count, length); got ndim={values.ndim}"
                )
            if values.shape[1] == 0:
                raise ValueError("Dataset series must contain at least one point")
            self._values = values

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            if getattr(self.backend, "mutable", False):
                # A live (growable) backend's row count still changes; serve
                # its current values without pinning a stale materialization.
                return self.backend.values
            self._values = self.backend.values
        return self._values

    @values.setter
    def values(self, values: np.ndarray | None) -> None:
        self._values = values

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Dataset(name={self.name!r}, count={self.count}, "
            f"length={self.length}, normalized={self.normalized})"
        )

    # -- basic geometry ----------------------------------------------------
    @property
    def count(self) -> int:
        """Number of series in the collection."""
        if self._values is None:
            return int(self.backend.count)
        return int(self._values.shape[0])

    @property
    def length(self) -> int:
        """Length (dimensionality) of each series."""
        if self._values is None:
            return int(self.backend.length)
        return int(self._values.shape[1])

    @property
    def nbytes(self) -> int:
        """Size of the raw (uncompressed) data in bytes (single precision)."""
        return self.count * self.length * int(np.dtype(SERIES_DTYPE).itemsize)

    @property
    def paper_equivalent_gb(self) -> float:
        """Raw size in gigabytes.

        The paper labels datasets by their on-disk size; the benchmark harness
        uses this property to print comparable labels for the scaled-down
        datasets used here.
        """
        return self.nbytes / float(1024**3)

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index: int) -> np.ndarray:
        return self.values[index]

    def iter_series(self):
        """Iterate over the series in storage order."""
        for row in self.values:
            yield row

    # -- pickling -----------------------------------------------------------
    # File-backed datasets travel by path: the values array is dropped from
    # the pickle and rebuilt lazily from the backend on first use, so shard
    # stores and persisted envelopes never embed (or rematerialize) the raw
    # collection.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        backend = state.get("backend")
        if backend is not None and getattr(backend, "source_path", None) is not None:
            state["_values"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_array(
        cls, values: np.ndarray, name: str = "dataset", normalize: bool = False
    ) -> "Dataset":
        """Build a dataset from an array, optionally z-normalizing each row."""
        arr = np.asarray(values, dtype=SERIES_DTYPE)
        if normalize:
            arr = znormalize(arr)
        return cls(values=arr, name=name, normalized=normalize or is_znormalized(arr))

    @classmethod
    def from_file(
        cls,
        path: str | Path,
        *,
        length: int | None = None,
        name: str | None = None,
        normalized: bool = True,
        mmap: bool = True,
        metadata: dict | None = None,
    ) -> "Dataset":
        """Open a dataset file lazily, without loading the collection.

        ``path`` is a ``.npy`` array file, a headerless raw little-endian
        float32 file (``.f32``/``.raw``/``.bin``, which require ``length``),
        a compressed quantized-block file (``.rcz``, written by
        :meth:`to_compressed`), or a growable store *directory* (created by
        :meth:`to_growable` or live ingest) — opening the latter runs crash
        recovery and attaches a
        :class:`~repro.core.growable.GrowableBackend`.  With ``mmap=True``
        (the default) the returned dataset serves reads lazily through an
        attached backend (:class:`~repro.core.backends.MmapBackend` or
        :class:`~repro.core.backends.CompressedBackend`), so every store built
        on it runs out-of-core; ``mmap=False`` materializes the file into RAM
        (an ordinary in-memory dataset).
        """
        from .backends import CompressedBackend, MmapBackend
        from .quantize import RCZ_SUFFIX

        if Path(path).is_dir():
            from .growable import GrowableBackend

            backend = GrowableBackend(path, length=length)
        elif Path(path).suffix.lower() == RCZ_SUFFIX:
            backend = CompressedBackend(path)
            if length is not None and backend.length != int(length):
                raise ValueError(
                    f"{path}: series length {backend.length} != expected {length}"
                )
        else:
            backend = MmapBackend(path, length=length)
        meta = {
            "source_path": str(Path(path)),
            "format": backend.describe().get("format", backend.kind),
        }
        meta.update(metadata or {})
        if not mmap:
            return cls(
                values=np.array(backend.values, dtype=SERIES_DTYPE),
                name=name or Path(path).stem,
                normalized=normalized,
                metadata=meta,
            )
        return cls(
            values=None,
            name=name or Path(path).stem,
            normalized=normalized,
            metadata=meta,
            backend=backend,
        )

    def _iter_chunks(self, chunk_rows: int = 65536):
        """Stream the collection in row chunks, lazily when file-backed."""
        if self._values is not None or self.backend is None:
            yield self.values
            return
        for start in range(0, self.count, chunk_rows):
            yield self.backend.read_rows(start, min(start + chunk_rows, self.count))

    def to_file(self, path: str | Path) -> Path:
        """Write the collection to ``path`` (``.npy``, or raw f32 by suffix)."""
        path = Path(path)
        with SeriesFileWriter(path, length=self.length) as writer:
            for chunk in self._iter_chunks():
                writer.append(chunk)
        return path

    def to_compressed(
        self,
        path: str | Path,
        *,
        qdtype: str = "int8",
        block_rows: int | None = None,
        compression: str = "zlib",
        level: int = 6,
    ) -> "Dataset":
        """Quantize and compress the collection to a ``.rcz`` file, reopened lazily.

        Series are stored as fixed-``block_rows`` blocks of ``qdtype``
        (``"int8"``/``"int16"``) codes with per-block scale/shift, optionally
        ``compression``-packed (``"zlib"``/``"none"``; ``"lz4"`` when the
        package is installed).  Quantization is lossy relative to *this*
        dataset's float values; the returned dataset's canonical values are
        the deterministic dequantization, and every search on it is exact with
        respect to those stored values.  The conversion streams chunk by
        chunk, so collections larger than RAM convert in bounded memory.
        """
        from .quantize import DEFAULT_BLOCK_ROWS, CompressedFileWriter

        path = Path(path)
        block_rows = DEFAULT_BLOCK_ROWS if block_rows is None else int(block_rows)
        with CompressedFileWriter(
            path,
            length=self.length,
            qdtype=qdtype,
            block_rows=block_rows,
            compression=compression,
            level=level,
        ) as writer:
            for chunk in self._iter_chunks(chunk_rows=max(block_rows, 16384)):
                writer.append(chunk)
        return Dataset.from_file(
            path,
            name=self.name,
            normalized=self.normalized,
            metadata=dict(self.metadata),
        )

    def to_growable(
        self, path: str | Path, *, checkpoint: bool = True
    ) -> "Dataset":
        """Spill the collection into a growable store directory at ``path``.

        Rows are ingested through the WAL (so the written store carries the
        full durability contract from its first byte) and, with
        ``checkpoint=True``, sealed into segment files so the log starts
        empty.  The returned dataset is the store reopened live — extendable
        via :meth:`SeriesStore.extend <repro.core.storage.SeriesStore>`.
        """
        from .growable import GrowableBackend

        backend = GrowableBackend(path, length=self.length, create=True)
        for chunk in self._iter_chunks():
            backend.extend(chunk)
        if checkpoint:
            backend.checkpoint()
        backend.close()
        return Dataset.from_file(
            path,
            length=self.length,
            name=self.name,
            normalized=self.normalized,
            metadata=dict(self.metadata),
        )

    def to_mmap(self, path: str | Path) -> "Dataset":
        """Spill the collection to ``path`` and reopen it memory-mapped.

        Convenience for serving an already-generated dataset through the mmap
        backend: the returned dataset has the same name, normalization flag,
        and metadata, with ``values`` now a lazy view into the written file.
        """
        self.to_file(path)
        return Dataset.from_file(
            path,
            length=self.length,
            name=self.name,
            normalized=self.normalized,
            metadata=dict(self.metadata),
        )

    def row_sample(self, positions) -> np.ndarray:
        """The rows at ``positions``, read through the backend when attached.

        Used by the persistence fingerprint: for a file-backed dataset only
        the sampled rows are read (no full materialization).
        """
        positions = np.asarray(positions, dtype=np.int64)
        if self.backend is not None:
            return self.backend.take(positions)
        return self.values[positions]

    def sample(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Return ``count`` series sampled without replacement."""
        if count > self.count:
            raise ValueError(
                f"cannot sample {count} series from a dataset of {self.count}"
            )
        rng = rng or np.random.default_rng()
        idx = rng.choice(self.count, size=count, replace=False)
        return self.values[idx].copy()


_NPY_MAGIC = b"\x93NUMPY\x01\x00"
#: fixed preamble size: large enough for any (count, length) digit width, so
#: the placeholder written at open time and the final header written at close
#: time occupy exactly the same bytes and the data offset never moves.
_NPY_PREAMBLE_BYTES = 128


def _npy_preamble(count: int, length: int) -> bytes:
    """A fixed-size ``.npy`` v1 preamble for a ``(count, length)`` f32 array."""
    header = (
        "{'descr': '%s', 'fortran_order': False, 'shape': (%d, %d), }"
        % (np.lib.format.dtype_to_descr(np.dtype(SERIES_DTYPE)), count, length)
    )
    used = len(_NPY_MAGIC) + 2 + len(header) + 1
    if used > _NPY_PREAMBLE_BYTES:  # pragma: no cover - needs absurd shapes
        raise ValueError(f"npy header for shape ({count}, {length}) does not fit")
    header = header + " " * (_NPY_PREAMBLE_BYTES - used) + "\n"
    return _NPY_MAGIC + struct.pack("<H", len(header)) + header.encode("latin1")


class SeriesFileWriter:
    """Streamed dataset-file writer: append chunks, never hold the collection.

    Writes either a standard ``.npy`` file (the shape is patched into a
    fixed-size header on close, so the row count need not be known up front)
    or a headerless raw float32 file (``.f32``/``.raw``/``.bin``).  Workload
    generators use this to synthesize collections larger than RAM chunk by
    chunk::

        with SeriesFileWriter("walks.npy", length=256) as writer:
            for chunk in chunks:          # each (m, 256)
                writer.append(chunk)

    The result is readable by :meth:`Dataset.from_file` (and, for ``.npy``,
    by plain :func:`numpy.load`).

    The writer streams into ``<path>.tmp`` and moves it into place atomically
    on close, so an interrupted run never leaves a truncated file at ``path``
    that parses as valid.  Unless ``checksums=False``, closing also writes a
    ``<path>.crc`` sidecar of per-block CRC-32 digests (see
    :mod:`repro.core.integrity`) that the storage layer verifies reads
    against; the sidecar is chunking-invariant, like the file bytes.
    """

    def __init__(
        self, path: str | Path, length: int | None = None, *, checksums: bool = True
    ) -> None:
        from .integrity import ChecksumAccumulator

        self.path = Path(path)
        self._length = int(length) if length is not None else None
        self._count = 0
        self._is_npy = self.path.suffix.lower() not in RAW_SUFFIXES
        self._crc = ChecksumAccumulator() if checksums else None
        self._tmp_path = unique_tmp_path(self.path)
        self._handle = open(self._tmp_path, "wb")
        if self._is_npy:
            # Placeholder preamble; rewritten with the final count on close.
            self._handle.write(_npy_preamble(0, self._length or 0))

    @property
    def count(self) -> int:
        """Rows written so far."""
        return self._count

    @property
    def length(self) -> int | None:
        return self._length

    def append(self, chunk: np.ndarray) -> int:
        """Write one ``(m, length)`` chunk (or a single 1-d series); returns ``m``."""
        if self._handle is None:
            raise ValueError("writer is closed")
        arr = np.ascontiguousarray(np.atleast_2d(np.asarray(chunk, dtype=SERIES_DTYPE)))
        if arr.ndim != 2:
            raise ValueError(f"chunks must be 2-d (m, length); got ndim={arr.ndim}")
        if arr.shape[1] == 0:
            # An empty chunk (e.g. the last block of an exactly-divided stream)
            # carries no rows and no geometry; writing nothing keeps the file
            # valid instead of poisoning the writer with length 0.
            return 0
        if self._length is None:
            self._length = int(arr.shape[1])
        elif arr.shape[1] != self._length:
            raise ValueError(
                f"chunk length {arr.shape[1]} != writer length {self._length}"
            )
        self._handle.write(arr.tobytes())
        if self._crc is not None:
            self._crc.update(arr)
        self._count += int(arr.shape[0])
        return int(arr.shape[0])

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            if self._is_npy:
                if self._length is None:
                    raise ValueError(
                        "cannot finalize a .npy series file of unknown length; "
                        "pass length= or append at least one chunk"
                    )
                # A zero-row file is valid: the fixed-size preamble records the
                # (0, length) shape and Dataset.from_file loads it back empty.
                self._handle.seek(0)
                self._handle.write(_npy_preamble(self._count, self._length))
        finally:
            handle, self._handle = self._handle, None
            handle.close()
        os.replace(self._tmp_path, self.path)
        if self._crc is not None:
            from .integrity import write_manifest

            write_manifest(
                self.path,
                block_rows=self._crc.block_rows,
                count=self._count,
                length=self._length or 0,
                crcs=self._crc.digests(),
            )

    def abandon(self) -> None:
        """Discard the half-written temp file; the target path is untouched."""
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        handle.close()
        try:
            os.unlink(self._tmp_path)
        except OSError:
            pass

    def __enter__(self) -> "SeriesFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # Abandon the half-written temp without the empty-file finalize error.
            self.abandon()
            return
        self.close()


def write_series_file(
    path: str | Path, chunks, *, length: int | None = None
) -> tuple[int, int]:
    """Stream an iterable of series chunks to ``path``; returns ``(count, length)``."""
    with SeriesFileWriter(path, length=length) as writer:
        for chunk in chunks:
            writer.append(chunk)
        if writer.length is None:
            raise ValueError("no chunks were written and no length was given")
        return writer.count, writer.length
