"""Data series containers and normalization.

A *data series* is an ordered sequence of real-valued points.  In the
similarity-search setting of the paper, a series of length ``n`` is treated as a
single point in an ``n``-dimensional space.  This module provides the light-weight
dataset container used throughout the library, plus z-normalization helpers.

All series are stored as single-precision floats (``float32``), matching the
paper's experimental setup ("All methods use single precision values").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SERIES_DTYPE",
    "znormalize",
    "is_znormalized",
    "Dataset",
]

#: dtype used for every series in the library (the paper uses single precision).
SERIES_DTYPE = np.float32


def znormalize(series: np.ndarray, epsilon: float = 1e-8) -> np.ndarray:
    """Return a z-normalized copy of ``series`` (mean 0, standard deviation 1).

    Works on a single series (1-d array) or a batch of series (2-d array, one
    series per row).  Series with (near-)zero standard deviation are mapped to
    all-zeros rather than dividing by zero.

    Parameters
    ----------
    series:
        Input array of shape ``(n,)`` or ``(m, n)``.
    epsilon:
        Standard deviations below this threshold are treated as zero.
    """
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        mean = arr.mean()
        std = arr.std()
        if std < epsilon:
            return np.zeros_like(arr, dtype=SERIES_DTYPE)
        return ((arr - mean) / std).astype(SERIES_DTYPE)
    if arr.ndim != 2:
        raise ValueError(f"expected a 1-d or 2-d array, got ndim={arr.ndim}")
    mean = arr.mean(axis=1, keepdims=True)
    std = arr.std(axis=1, keepdims=True)
    flat = std[:, 0] < epsilon
    std[flat, 0] = 1.0
    out = ((arr - mean) / std).astype(SERIES_DTYPE)
    out[flat] = 0.0
    return out


def is_znormalized(series: np.ndarray, atol: float = 1e-2) -> bool:
    """Check whether ``series`` (1-d or 2-d) is approximately z-normalized."""
    arr = np.asarray(series, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[np.newaxis, :]
    means = arr.mean(axis=1)
    stds = arr.std(axis=1)
    # Constant (all-zero after normalization) series are accepted.
    ok_mean = np.abs(means) <= atol
    ok_std = (np.abs(stds - 1.0) <= atol) | (stds <= atol)
    return bool(np.all(ok_mean & ok_std))


@dataclass
class Dataset:
    """An in-memory collection of equal-length data series.

    The paper operates on multi-hundred-gigabyte raw files; this reproduction
    keeps the collection in a NumPy array and simulates the raw-file access
    pattern through :class:`repro.core.storage.SeriesStore`.

    Attributes
    ----------
    values:
        Array of shape ``(count, length)`` holding one series per row.
    name:
        Human readable dataset name (used by the benchmark harness).
    normalized:
        Whether the rows are z-normalized.  The paper normalizes every dataset
        in advance; the workload generators in :mod:`repro.workloads` do the
        same by default.
    """

    values: np.ndarray
    name: str = "dataset"
    normalized: bool = True
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=SERIES_DTYPE)
        if values.ndim != 2:
            raise ValueError(
                f"Dataset values must be 2-d (count, length); got ndim={values.ndim}"
            )
        if values.shape[0] == 0 or values.shape[1] == 0:
            raise ValueError("Dataset must contain at least one non-empty series")
        self.values = values

    # -- basic geometry ----------------------------------------------------
    @property
    def count(self) -> int:
        """Number of series in the collection."""
        return int(self.values.shape[0])

    @property
    def length(self) -> int:
        """Length (dimensionality) of each series."""
        return int(self.values.shape[1])

    @property
    def nbytes(self) -> int:
        """Size of the raw data in bytes (single precision)."""
        return int(self.values.nbytes)

    @property
    def paper_equivalent_gb(self) -> float:
        """Raw size in gigabytes.

        The paper labels datasets by their on-disk size; the benchmark harness
        uses this property to print comparable labels for the scaled-down
        datasets used here.
        """
        return self.nbytes / float(1024**3)

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index: int) -> np.ndarray:
        return self.values[index]

    def iter_series(self):
        """Iterate over the series in storage order."""
        for row in self.values:
            yield row

    # -- construction helpers ----------------------------------------------
    @classmethod
    def from_array(
        cls, values: np.ndarray, name: str = "dataset", normalize: bool = False
    ) -> "Dataset":
        """Build a dataset from an array, optionally z-normalizing each row."""
        arr = np.asarray(values, dtype=SERIES_DTYPE)
        if normalize:
            arr = znormalize(arr)
        return cls(values=arr, name=name, normalized=normalize or is_znormalized(arr))

    def sample(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Return ``count`` series sampled without replacement."""
        if count > self.count:
            raise ValueError(
                f"cannot sample {count} series from a dataset of {self.count}"
            )
        rng = rng or np.random.default_rng()
        idx = rng.choice(self.count, size=count, replace=False)
        return self.values[idx].copy()
