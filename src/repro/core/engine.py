"""High-level similarity-search engine and access-path advisor.

:class:`SimilaritySearchEngine` is the public entry point for users who just
want answers: point it at a dataset, pick (or let it pick) a method, and ask
k-NN queries.  The access-path advisor encodes the paper's recommendation
matrix (Figure 10) plus the "scan vs index" observation made for hard queries:
when the expected pruning is poor, a sequential scan wins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .answers import Neighbor
from .queries import KnnQuery, RangeQuery
from .registry import create_method
from .series import Dataset, znormalize
from .storage import SeriesStore

__all__ = ["SimilaritySearchEngine", "recommend_method", "Recommendation"]


@dataclass
class Recommendation:
    """A method recommendation with the reasoning behind it."""

    method: str
    reason: str


def recommend_method(
    dataset_gb: float,
    series_length: int,
    memory_gb: float = 75.0,
    workload_queries: int = 10_000,
    expected_pruning: float | None = None,
) -> Recommendation:
    """Recommend a method following the paper's decision matrix (Figure 10).

    Parameters
    ----------
    dataset_gb:
        Raw dataset size in gigabytes.
    series_length:
        Length of each series.
    memory_gb:
        Available memory; datasets below this threshold are "in-memory".
    workload_queries:
        Expected number of queries amortizing the index construction cost.
    expected_pruning:
        Optional estimate of the achievable pruning ratio; when it is very low
        the advisor falls back to a sequential scan (the paper's observation on
        hard queries in Table 2).
    """
    if expected_pruning is not None and expected_pruning < 0.2:
        return Recommendation(
            method="ucr-suite",
            reason="expected pruning is too low for any index to beat a sequential scan",
        )
    in_memory = dataset_gb <= memory_gb
    long_series = series_length >= 2048
    if workload_queries < 100:
        # Few queries: index construction dominates, so the adaptive index wins.
        return Recommendation(
            method="ads+",
            reason="small query workloads are dominated by indexing cost, where ADS+ is fastest",
        )
    if in_memory and not long_series:
        return Recommendation(
            method="isax2+",
            reason="in-memory collections of short series: iSAX2+ (with DSTree close behind)",
        )
    if in_memory and long_series:
        return Recommendation(
            method="dstree",
            reason="in-memory long series: DSTree or VA+file depending on size; DSTree by default",
        )
    if not in_memory and long_series:
        return Recommendation(
            method="va+file",
            reason="disk-resident long series: VA+file (skip-sequential scans become cheap)",
        )
    return Recommendation(
        method="dstree",
        reason="disk-resident short series: DSTree (VA+file competitive at larger sizes)",
    )


class SimilaritySearchEngine:
    """Unified front end over every method in the library.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import Dataset, SimilaritySearchEngine
    >>> rng = np.random.default_rng(0)
    >>> data = rng.standard_normal((1000, 64)).cumsum(axis=1)
    >>> engine = SimilaritySearchEngine(Dataset.from_array(data, normalize=True))
    >>> engine.build("dstree", leaf_capacity=50)
    >>> result = engine.search(data[10], k=5)
    >>> result.positions()[0]
    10
    """

    def __init__(
        self,
        dataset: Dataset,
        page_bytes: int = 65536,
        backend=None,
        measure_io: bool = False,
        executor: str | None = None,
    ) -> None:
        """``backend`` selects the storage backend (``"memory"``/``"mmap"``/
        an instance; ``None`` follows the dataset — file-backed datasets from
        :meth:`Dataset.from_file` are served memory-mapped automatically).
        ``measure_io=True`` additionally records measured wall-clock I/O.
        ``executor`` selects the fan-out backend for sharded methods built
        through this engine (``"thread"``/``"process"``; ``None`` defers to
        ``REPRO_EXECUTOR``) — ignored by unsharded methods."""
        self.dataset = dataset
        self.store = SeriesStore(
            dataset, page_bytes=page_bytes, backend=backend, measure_io=measure_io
        )
        self.executor = executor
        self.method = None
        self.method_name: str | None = None

    # -- construction --------------------------------------------------------------
    def build(self, method: str | None = None, **params):
        """Build (or rebuild) the chosen method; ``None`` lets the advisor pick."""
        if method is None:
            advice = self.recommend()
            method = advice.method
        if self.executor is not None and str(method).startswith("sharded"):
            params.setdefault("executor", self.executor)
        self.method = create_method(method, self.store, **params)
        self.method_name = self.method.name
        self.store.reset_counters()
        stats = self.method.build()
        return stats

    def recommend(self, workload_queries: int = 10_000) -> Recommendation:
        """Access-path recommendation for this dataset (paper Figure 10)."""
        return recommend_method(
            dataset_gb=self.dataset.paper_equivalent_gb,
            series_length=self.dataset.length,
            workload_queries=workload_queries,
        )

    # -- live ingest ---------------------------------------------------------------
    def extend(self, rows: np.ndarray, *, checkpoint: bool = False) -> int:
        """Durably ingest ``rows`` and make them searchable; returns the new count.

        The rows are acked (fsynced to the store's write-ahead log) before the
        call returns, then bulk-inserted into the built method — queries
        issued afterwards see them, queries already running do not (they read
        through their snapshot).  Requires a growable store
        (``Dataset.to_growable`` / ``--backend growable``).  With
        ``checkpoint=True`` the tail is also sealed into a segment file.
        """
        old_count = self.store.count
        new_count = self.store.extend(rows)
        if self.method is not None and self.method.is_built:
            self.method.extend(old_count, new_count)
        if checkpoint:
            self.store.checkpoint()
        return new_count

    def checkpoint(self) -> int:
        """Seal ingested rows into segment files (growable stores only)."""
        return self.store.checkpoint()

    # -- querying ---------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int = 1,
        exact: bool = True,
        normalize: bool = False,
    ):
        """Answer a k-NN query with the built method.

        Parameters
        ----------
        query:
            Query series (same length as the dataset's series).
        k:
            Number of neighbors.
        exact:
            ``False`` runs the method's ng-approximate algorithm where available.
        normalize:
            Z-normalize the query first (use when the dataset is normalized but
            the query is raw).
        """
        if self.method is None:
            raise RuntimeError("build() must be called before search()")
        series = np.asarray(query, dtype=np.float64)
        if normalize:
            series = znormalize(series)
        knn = KnnQuery(series=series, k=k)
        if exact:
            return self.method.knn_exact(knn)
        return self.method.knn_approximate(knn)

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 1,
        normalize: bool = False,
        workers: int | None = None,
    ) -> list:
        """Answer many exact k-NN queries in one call.

        Parameters
        ----------
        queries:
            A ``(Q, length)`` array of query series (a single 1-D query is
            accepted).
        k:
            Number of neighbors per query.
        normalize:
            Z-normalize every query first.
        workers:
            Inter-query parallelism: split the batch into contiguous chunks
            answered concurrently on a thread pool (``None`` keeps the
            sequential batch call; ``workers=N`` uses up to ``N`` threads,
            each with worker-local accounting).  Answers are byte-identical
            for every worker count for methods whose batch path loops the
            per-query search (all tree indexes, UCR Suite, Stepwise); the
            flat/MASS vectorized batch kernels see a different GEMM tile
            shape per chunk, which can move distances in the final ulp —
            the same caveat their batch path already carries versus
            per-query search.  Composes with a ``"sharded:*"`` method, whose
            shard fan-out parallelizes *within* each chunk.

        Returns one :class:`~repro.indexes.base.SearchResult` per query, in
        order, with exactly the answers :meth:`search` would return
        per query.  Methods with a vectorized batch path (the flat and MASS
        scans) amortize the data pass and the distance kernel over the whole
        batch; every other method transparently falls back to a per-query
        loop, so the batch API is uniform across all registered methods.
        """
        if self.method is None:
            raise RuntimeError("build() must be called before search_batch()")
        qs = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if normalize:
            qs = np.vstack([znormalize(q) for q in qs])
        if workers is not None and workers != 1:
            from .parallel import parallel_batch_search

            return parallel_batch_search(self.method, qs, k=k, workers=workers)
        return self.method.knn_exact_batch(qs, k=k)

    def range_search(
        self, query: np.ndarray, radius: float, normalize: bool = False
    ):
        """Answer an exact r-range query: every series within ``radius`` of the query."""
        if self.method is None:
            raise RuntimeError("build() must be called before range_search()")
        series = np.asarray(query, dtype=np.float64)
        if normalize:
            series = znormalize(series)
        return self.method.range_exact(RangeQuery(series=series, radius=radius))

    def brute_force(self, query: np.ndarray, k: int = 1) -> list[Neighbor]:
        """Exact answer by full scan, independent of the built method (ground truth)."""
        from .distance import squared_euclidean_batch

        q = np.asarray(query, dtype=np.float64)
        distances = squared_euclidean_batch(q, self.dataset.values)
        order = np.argsort(distances, kind="stable")[:k]
        return [
            Neighbor(distance=float(np.sqrt(distances[i])), position=int(i)) for i in order
        ]

    # -- reporting ---------------------------------------------------------------------
    def last_build_stats(self):
        if self.method is None:
            raise RuntimeError("no method has been built")
        return self.method.index_stats

    def describe(self) -> dict:
        info = {
            "dataset": self.dataset.name,
            "series": self.dataset.count,
            "length": self.dataset.length,
        }
        if self.method is not None:
            info["method"] = self.method.describe()
        return info
