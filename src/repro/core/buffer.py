"""Simulated memory buffer used during index construction.

The methods in the paper use internal buffers to manage raw data that does not
fit in memory during index building (§4.3.1 studies buffer-size sensitivity).
:class:`BufferPool` models that behaviour: callers append series to per-node
buffers; when the configured capacity is exceeded the pool "spills" the largest
buffers, which is accounted as sequential writes followed by later re-reads.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass

from .stats import AccessCounter

__all__ = ["BufferPool", "BufferStats"]


@dataclass
class BufferStats:
    """Spill accounting for one index build."""

    spills: int = 0
    series_spilled: int = 0
    series_buffered: int = 0
    peak_series_in_memory: int = 0


class BufferPool:
    """Tracks buffered series per index node and simulates spilling to disk.

    Thread safety: all mutating operations (:meth:`add`, :meth:`flush`,
    :meth:`flush_all`) and the spill machinery they drive are guarded by an
    ``RLock``, so a pool may be shared by concurrent builders (e.g. appends
    arriving while another thread builds).  Note the attached ``counter`` is
    charged *while holding the lock*, so spill accounting from concurrent
    users of one pool never interleaves mid-update; parallel shard builds
    avoid even that by giving every shard its own pool and counter and
    merging afterwards.

    Parameters
    ----------
    capacity_series:
        Maximum number of series the pool may hold in memory before spilling.
        ``None`` means unbounded (everything fits, no spills).
    series_bytes:
        On-disk size of one series, used to account spilled bytes.
    counter:
        Optional shared :class:`AccessCounter` that receives the simulated I/O
        caused by spills (one random access per spilled buffer plus sequential
        pages proportional to the spilled series).
    page_series:
        Number of series per page for the sequential-page accounting.
    """

    def __init__(
        self,
        capacity_series: int | None = None,
        series_bytes: int = 1024,
        counter: AccessCounter | None = None,
        page_series: int = 64,
    ) -> None:
        if capacity_series is not None and capacity_series <= 0:
            raise ValueError("capacity_series must be positive or None")
        self.capacity_series = capacity_series
        self.series_bytes = series_bytes
        self.counter = counter if counter is not None else AccessCounter()
        self.page_series = max(1, page_series)
        self.stats = BufferStats()
        self._lock = threading.RLock()
        self._buffers: dict[object, int] = {}
        self._in_memory = 0
        # Max-heap of (-count, sequence, key) candidates for the next spill.
        # Entries are pushed on every count change and invalidated lazily: an
        # entry is live only while the buffer still holds exactly that count.
        # This keeps each spill O(log n) where the old linear max() scan made
        # buffer-constrained builds quadratic in the number of nodes.
        self._spill_heap: list[tuple[int, int, object]] = []
        self._heap_sequence = 0

    # -- operations -----------------------------------------------------------
    def add(self, node_key: object, count: int = 1) -> None:
        """Buffer ``count`` series for ``node_key``, spilling if over capacity."""
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            new_count = self._buffers.get(node_key, 0) + count
            self._buffers[node_key] = new_count
            self._push_candidate(node_key, new_count)
            self._in_memory += count
            self.stats.series_buffered += count
            self.stats.peak_series_in_memory = max(
                self.stats.peak_series_in_memory, self._in_memory
            )
            if self.capacity_series is not None:
                while self._in_memory > self.capacity_series and self._buffers:
                    self._spill_largest()

    def flush(self, node_key: object) -> int:
        """Flush one node's buffer (e.g. when its leaf is finalized)."""
        with self._lock:
            count = self._buffers.pop(node_key, 0)
            self._in_memory -= count
            return count

    def flush_all(self) -> int:
        """Flush every buffer (end of the build)."""
        with self._lock:
            total = sum(self._buffers.values())
            self._buffers.clear()
            self._spill_heap.clear()
            self._in_memory = 0
            return total

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_lock", None)  # locks are not picklable
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- internals --------------------------------------------------------------
    def _push_candidate(self, node_key: object, count: int) -> None:
        self._heap_sequence += 1
        heapq.heappush(self._spill_heap, (-count, self._heap_sequence, node_key))
        # Stale entries (old counts, flushed keys) accumulate; rebuild the heap
        # from the live buffers when they dominate, bounding memory at O(nodes).
        if len(self._spill_heap) > max(64, 4 * len(self._buffers)):
            self._spill_heap = [
                (-c, i, key) for i, (key, c) in enumerate(self._buffers.items())
            ]
            heapq.heapify(self._spill_heap)
            self._heap_sequence = len(self._spill_heap)

    def _spill_largest(self) -> None:
        node_key = None
        count = 0
        while self._spill_heap:
            neg_count, _, key = heapq.heappop(self._spill_heap)
            if self._buffers.get(key) == -neg_count:
                node_key, count = key, -neg_count
                break
        if node_key is None:
            # Every heap entry was stale; fall back to a direct scan.
            node_key = max(self._buffers, key=self._buffers.get)
            count = self._buffers[node_key]
        self._buffers.pop(node_key)
        self._in_memory -= count
        self.stats.spills += 1
        self.stats.series_spilled += count
        # Spilling costs one seek to the node's file plus a sequential write of
        # the buffered series; the spilled series will be re-read later, which
        # is modelled as the same cost again.  The write and read halves of the
        # round trip are charged to their own byte counters.
        pages = (count + self.page_series - 1) // self.page_series
        self.counter.random_accesses += 2
        self.counter.sequential_pages += 2 * pages
        self.counter.bytes_written += count * self.series_bytes
        self.counter.bytes_read += count * self.series_bytes

    # -- inspection ---------------------------------------------------------------
    @property
    def in_memory_series(self) -> int:
        return self._in_memory

    def buffered(self, node_key: object) -> int:
        return self._buffers.get(node_key, 0)
