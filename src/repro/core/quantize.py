"""Block quantization and the ``.rcz`` compressed series-file format.

The paper's exact-search cost is dominated by bytes moved from storage (its
HDD-vs-SSD recommendations flip on exactly that term).  This module implements
the storage side of the compressed backend: series are stored as fixed-row
*blocks*, each block float-quantized to ``int8`` or ``int16`` with a per-block
``scale``/``shift`` pair and (optionally) DEFLATE-compressed.  The quantized
representation is the *primary* storage — the collection's canonical float32
values are its deterministic dequantization — which is what buys the ~4x
capacity win, and the integer blocks double as a VA-file-style filter: a
*sound* lower bound on the distance to every stored row can be computed from
the integers alone, so full-precision bytes are fetched only for blocks that
can still contain an answer.

Layout of a ``.rcz`` file (all little-endian)::

    header   (64 bytes, fixed): magic 'RCZ1', version, codec, qdtype code,
              row count, series length, block_rows, table offset
    blocks   back-to-back (possibly compressed) C-order int payloads
    table    one 32-byte entry per block: payload offset + stored size,
              float32 scale + shift, row count, payload CRC-32 (version 2)

The header is written as a placeholder at open time and patched on close
(the :class:`~repro.core.series.SeriesFileWriter` pattern), so the writer
streams chunks of any size without knowing the final count up front; chunks
are re-buffered to block granularity, making the file bytes independent of
the append chunking.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path

import numpy as np

from . import integrity
from .series import SERIES_DTYPE, unique_tmp_path

__all__ = [
    "RCZ_SUFFIX",
    "QUANTIZED_DTYPES",
    "CompressedFileWriter",
    "RczInfo",
    "read_rcz_info",
    "quantize_block",
    "dequantize_block",
    "decode_payload",
    "quantized_lower_bounds",
    "write_rcz_file",
]

#: file suffix identifying the compressed quantized-block format.
RCZ_SUFFIX = ".rcz"

#: quantized storage dtypes by name; the code is what the header records.
QUANTIZED_DTYPES = {"int8": np.int8, "int16": np.int16}
_QDTYPE_CODES = {"int8": 1, "int16": 2}
_CODES_QDTYPE = {code: name for name, code in _QDTYPE_CODES.items()}

#: codec codes recorded in the header ('none' stores raw integer payloads).
_CODECS = {"none": 0, "zlib": 1, "lz4": 2}
_CODES_CODEC = {code: name for name, code in _CODECS.items()}

_MAGIC = b"RCZ1"
#: version 2 records a CRC-32 digest of every stored payload in the block
#: table (in the slot version 1 kept as alignment padding — same byte
#: layout); version-1 files remain readable, without checksum coverage.
_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)
#: fixed 64-byte header: magic, version, codec, qdtype code, pad,
#: count, length, block_rows, table offset, 16 reserved bytes.
_HEADER = struct.Struct("<4sHHB7xQQQQ16x")
assert _HEADER.size == 64

#: per-block footer-table entry: payload offset, stored bytes, scale, shift,
#: rows in the block, CRC-32 of the stored payload (zero in version-1 files,
#: where the slot was alignment padding).
TABLE_DTYPE = np.dtype(
    [
        ("offset", "<u8"),
        ("nbytes", "<u8"),
        ("scale", "<f4"),
        ("shift", "<f4"),
        ("rows", "<u4"),
        ("crc", "<u4"),
    ]
)
assert TABLE_DTYPE.itemsize == 32

DEFAULT_BLOCK_ROWS = 1024


def _lz4_module():
    try:  # pragma: no cover - optional dependency, absent in CI
        import lz4.block as lz4block

        return lz4block
    except ImportError:
        return None


def _require_codec(codec: str) -> str:
    if codec not in _CODECS:
        raise ValueError(f"unknown codec {codec!r}; expected one of {sorted(_CODECS)}")
    if codec == "lz4" and _lz4_module() is None:
        raise ValueError(
            "the lz4 codec needs the 'lz4' package, which is not installed; "
            "use compression='zlib' (stdlib) or 'none'"
        )
    return codec


# -- quantization kernels ------------------------------------------------------


def quantize_block(values: np.ndarray, qdtype) -> tuple[np.ndarray, np.float32, np.float32]:
    """Quantize one float block to ``(integers, scale, shift)``.

    The code range is symmetric (``±127`` / ``±32767``) around the block's
    midrange, so dequantization ``q * scale + shift`` covers ``[min, max]``.
    ``scale``/``shift`` are float32 — the precision they are stored at — so
    quantizing and dequantizing through a file round-trips bit-exactly.
    """
    arr = np.ascontiguousarray(values, dtype=SERIES_DTYPE)
    qdtype = np.dtype(qdtype)
    qmax = int(np.iinfo(qdtype).max)
    if arr.size == 0:
        return arr.astype(qdtype), np.float32(1.0), np.float32(0.0)
    mn = float(arr.min())
    mx = float(arr.max())
    shift = np.float32((mn + mx) / 2.0)
    half = max(mx - float(shift), float(shift) - mn)
    if not np.isfinite(half) or half <= 0.0:
        # Constant block: every code is 0 and dequantization returns `shift`.
        scale = np.float32(1.0)
    else:
        scale = np.float32(half / qmax)
        if float(scale) == 0.0:  # subnormal underflow on absurdly tight blocks
            scale = np.float32(np.finfo(np.float32).tiny)
    codes = (arr.astype(np.float64) - float(shift)) / float(scale)
    codes = np.clip(np.rint(codes), -qmax, qmax)
    return codes.astype(qdtype), scale, shift


def dequantize_block(codes: np.ndarray, scale, shift) -> np.ndarray:
    """The canonical float32 values of a quantized block.

    Computed entirely in float32 (``codes * scale + shift`` with float32
    scalars), so every read path — row reads, chunk scans, full
    materialization — reconstructs bit-identical bytes.
    """
    return codes.astype(SERIES_DTYPE) * np.float32(scale) + np.float32(shift)


def quantized_lower_bounds(
    codes: np.ndarray, scale, shift, queries: np.ndarray
) -> np.ndarray:
    """Sound lower bounds on the squared distance to a block's *stored* rows.

    ``codes`` is the ``(rows, length)`` integer block and ``queries`` a
    ``(Q, length)`` float64 batch; returns a ``(Q, rows)`` array ``lb`` with
    ``lb[i, j] <= ||queries[i] - dequantize(codes[j])||^2`` for every pair.

    The identity ``||u - (s*q + o)||^2 = s^2 * ||(u - o)/s - q||^2`` gives the
    exact distance to the real-arithmetic dequantization; the margin subtracted
    below covers (a) the float32 rounding of the *stored* values
    (``<= 2 eps32 (|shift| + qmax*scale)`` per element, amplified through the
    norm by ``2 e sqrt(L d) + e^2 L``) and (b) the float64 rounding of both
    this bound and the refinement kernel's norm-expansion distances (the
    ``1e-6`` relative-plus-absolute term, orders of magnitude above either).
    A row is pruned only when its bound *strictly* exceeds the pruning radius,
    so ties survive — the same convention every index in the library follows.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    s = float(scale)
    o = float(shift)
    qmax = float(np.iinfo(codes.dtype).max)
    length = codes.shape[1]
    qf = codes.astype(np.float64)
    y = (queries - o) / s
    code_norms = np.einsum("ij,ij->i", qf, qf)
    y_norms = np.einsum("ij,ij->i", y, y)
    d = (s * s) * (y_norms[:, np.newaxis] - 2.0 * (y @ qf.T) + code_norms[np.newaxis, :])
    amp = abs(o) + qmax * s
    e = 4.0 * float(np.finfo(np.float32).eps) * amp
    margin = (
        2.0 * e * np.sqrt(length * np.clip(d, 0.0, None))
        + (e * e) * length
        + 1e-6 * (np.abs(d) + 1.0)
    )
    return np.clip(d - margin, 0.0, None)


# -- payload codec -------------------------------------------------------------


def _encode_payload(codes: np.ndarray, codec: str, level: int) -> bytes:
    raw = np.ascontiguousarray(codes).tobytes()
    if codec == "zlib":
        return zlib.compress(raw, level)
    if codec == "lz4":  # pragma: no cover - optional dependency
        return _lz4_module().compress(raw, store_size=False)
    return raw


def decode_payload(
    data: bytes, codec: str, qdtype, rows: int, length: int
) -> np.ndarray:
    """Decode one stored block payload back to its ``(rows, length)`` codes."""
    qdtype = np.dtype(qdtype)
    expected = rows * length * qdtype.itemsize
    if codec == "zlib":
        data = zlib.decompress(data)
    elif codec == "lz4":  # pragma: no cover - optional dependency
        data = _lz4_module().decompress(data, uncompressed_size=expected)
    if len(data) != expected:
        raise ValueError(
            f"corrupt block payload: {len(data)} bytes decoded, expected {expected}"
        )
    codes = np.frombuffer(data, dtype=qdtype).reshape(rows, length)
    codes.setflags(write=False)
    return codes


# -- file writer ---------------------------------------------------------------


class CompressedFileWriter:
    """Streamed ``.rcz`` writer: append float chunks, never hold the collection.

    Chunks of any shape are re-buffered internally to ``block_rows``
    granularity before quantization, so the produced bytes are identical for
    every append chunking (the :class:`~repro.core.series.SeriesFileWriter`
    contract).  Usage mirrors the plain writer::

        with CompressedFileWriter("walks.rcz", length=128) as writer:
            for chunk in chunks:
                writer.append(chunk)
    """

    def __init__(
        self,
        path,
        *,
        length: int,
        qdtype: str = "int8",
        block_rows: int = DEFAULT_BLOCK_ROWS,
        compression: str = "zlib",
        level: int = 6,
    ) -> None:
        if qdtype not in QUANTIZED_DTYPES:
            raise ValueError(
                f"unknown quantized dtype {qdtype!r}; expected one of "
                f"{sorted(QUANTIZED_DTYPES)}"
            )
        if int(length) <= 0:
            raise ValueError("length must be positive")
        if int(block_rows) <= 0:
            raise ValueError("block_rows must be positive")
        self.path = Path(path)
        self.qdtype = qdtype
        self.block_rows = int(block_rows)
        self.codec = _require_codec("none" if compression in (None, "none") else compression)
        self.level = int(level)
        self._length = int(length)
        self._count = 0
        self._pending: list[np.ndarray] = []
        self._pending_rows = 0
        self._entries: list[tuple[int, int, float, float, int, int]] = []
        self._offset = _HEADER.size
        # Stream into a sibling temp file; close() finalizes it into place
        # atomically, so an interrupted writer never leaves a file that
        # parses as valid (readers see either nothing or the complete file).
        self._tmp_path = unique_tmp_path(self.path)
        self._handle = open(self._tmp_path, "wb")
        self._handle.write(b"\x00" * _HEADER.size)  # placeholder, patched on close

    @property
    def count(self) -> int:
        """Rows appended so far (buffered rows included)."""
        return self._count

    @property
    def length(self) -> int:
        return self._length

    def append(self, chunk: np.ndarray) -> int:
        """Append one ``(m, length)`` float chunk (or a single 1-d series)."""
        if self._handle is None:
            raise ValueError("writer is closed")
        arr = np.atleast_2d(np.asarray(chunk, dtype=SERIES_DTYPE))
        if arr.ndim != 2:
            raise ValueError(f"chunks must be 2-d (m, length); got ndim={arr.ndim}")
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            return 0
        if arr.shape[1] != self._length:
            raise ValueError(
                f"chunk length {arr.shape[1]} != writer length {self._length}"
            )
        self._pending.append(np.ascontiguousarray(arr))
        self._pending_rows += int(arr.shape[0])
        self._count += int(arr.shape[0])
        while self._pending_rows >= self.block_rows:
            self._flush_block(self.block_rows)
        return int(arr.shape[0])

    def _flush_block(self, rows: int) -> None:
        """Quantize and write the next ``rows`` buffered rows as one block."""
        staged = np.concatenate(self._pending, axis=0) if len(self._pending) > 1 else self._pending[0]
        block, rest = staged[:rows], staged[rows:]
        self._pending = [rest] if rest.shape[0] else []
        self._pending_rows = int(rest.shape[0])
        codes, scale, shift = quantize_block(block, QUANTIZED_DTYPES[self.qdtype])
        payload = _encode_payload(codes, self.codec, self.level)
        self._entries.append(
            (
                self._offset,
                len(payload),
                float(scale),
                float(shift),
                int(rows),
                integrity.checksum(payload),
            )
        )
        self._handle.write(payload)
        self._offset += len(payload)

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            if self._pending_rows:
                self._flush_block(self._pending_rows)
            table = np.zeros(len(self._entries), dtype=TABLE_DTYPE)
            for i, entry in enumerate(self._entries):
                table[i] = entry
            table_offset = self._offset
            self._handle.write(table.tobytes())
            self._handle.seek(0)
            self._handle.write(
                _HEADER.pack(
                    _MAGIC,
                    _VERSION,
                    _CODECS[self.codec],
                    _QDTYPE_CODES[self.qdtype],
                    self._count,
                    self._length,
                    self.block_rows,
                    table_offset,
                )
            )
        finally:
            handle, self._handle = self._handle, None
            handle.close()
        os.replace(self._tmp_path, self.path)

    def abandon(self) -> None:
        """Discard the half-written temp file; the target path is untouched."""
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        handle.close()
        try:
            os.unlink(self._tmp_path)
        except OSError:
            pass

    def __enter__(self) -> "CompressedFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # Abandon the half-written temp rather than finalizing garbage.
            self.abandon()
            return
        self.close()


def write_rcz_file(path, chunks, *, length: int, **writer_kwargs) -> int:
    """Stream an iterable of float chunks to a ``.rcz`` file; returns the count."""
    with CompressedFileWriter(path, length=length, **writer_kwargs) as writer:
        for chunk in chunks:
            writer.append(chunk)
        return writer.count


# -- file reader metadata ------------------------------------------------------


class RczInfo:
    """Parsed ``.rcz`` header and block table (the backend's geometry)."""

    __slots__ = (
        "count",
        "length",
        "block_rows",
        "qdtype_name",
        "qdtype",
        "codec",
        "table",
        "stored_prefix",
        "has_checksums",
    )

    def __init__(self, count, length, block_rows, qdtype_name, codec, table,
                 has_checksums: bool = False):
        self.count = int(count)
        self.length = int(length)
        self.block_rows = int(block_rows)
        self.qdtype_name = qdtype_name
        self.qdtype = np.dtype(QUANTIZED_DTYPES[qdtype_name])
        self.codec = codec
        self.table = table
        #: whether the table records per-payload CRC-32 digests (version >= 2).
        self.has_checksums = bool(has_checksums)
        #: cumulative stored payload bytes by block — physical accounting is a
        #: prefix-sum difference, O(1) per accounted read.
        self.stored_prefix = np.concatenate(
            ([0], np.cumsum(table["nbytes"].astype(np.int64)))
        )

    @property
    def blocks(self) -> int:
        return int(self.table.shape[0])

    def stored_bytes(self, first_block: int, last_block: int) -> int:
        """Total stored payload bytes of blocks ``first_block:last_block``."""
        return int(self.stored_prefix[last_block] - self.stored_prefix[first_block])


def read_rcz_info(path) -> RczInfo:
    """Parse a ``.rcz`` file's header and footer table (no payload reads)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"dataset file not found: {path}")
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise ValueError(f"{path}: truncated .rcz header")
        magic, version, codec_code, qcode, count, length, block_rows, table_offset = (
            _HEADER.unpack(header)
        )
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a .rcz compressed series file")
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"{path}: unsupported .rcz version {version}")
        if qcode not in _CODES_QDTYPE:
            raise ValueError(f"{path}: unknown quantized dtype code {qcode}")
        if codec_code not in _CODES_CODEC:
            raise ValueError(f"{path}: unknown codec code {codec_code}")
        codec = _CODES_CODEC[codec_code]
        _require_codec(codec)
        blocks = (count + block_rows - 1) // block_rows if count else 0
        handle.seek(table_offset)
        raw = handle.read(blocks * TABLE_DTYPE.itemsize)
        if len(raw) != blocks * TABLE_DTYPE.itemsize:
            raise ValueError(f"{path}: truncated .rcz block table")
        table = np.frombuffer(raw, dtype=TABLE_DTYPE)
        if int(table["rows"].sum()) != count:
            raise ValueError(f"{path}: block table rows do not sum to the row count")
    return RczInfo(
        count,
        length,
        block_rows,
        _CODES_QDTYPE[qcode],
        codec,
        table,
        has_checksums=version >= 2,
    )
