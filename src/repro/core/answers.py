"""Answer containers for k-NN and range similarity queries."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Neighbor", "KnnAnswerSet", "RangeAnswerSet"]


@dataclass(frozen=True, order=True)
class Neighbor:
    """One answer: the position of a series in the collection and its distance.

    Distances are *Euclidean* (not squared) so answers read the same way the
    paper reports them; internal heaps work on squared distances for speed.
    """

    distance: float
    position: int


class KnnAnswerSet:
    """A bounded max-heap holding the current k best candidates.

    Every method in the library funnels candidates through this structure, so
    the best-so-far (bsf) pruning threshold is maintained identically everywhere.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be a positive integer")
        self.k = k
        # max-heap via negated squared distances
        self._heap: list[tuple[float, int]] = []
        # positions currently in the heap; a series can only be an answer once,
        # even if several access paths (approximate leaf + refinement scan)
        # offer it to the answer set.
        self._positions: set[int] = set()

    # -- updates -----------------------------------------------------------
    def offer(self, position: int, squared_distance: float) -> bool:
        """Offer a candidate; returns True if it entered the current top-k."""
        if squared_distance < 0:
            squared_distance = 0.0
        if position in self._positions:
            return False
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-squared_distance, position))
            self._positions.add(position)
            return True
        worst = -self._heap[0][0]
        if squared_distance < worst:
            _, evicted = heapq.heapreplace(self._heap, (-squared_distance, position))
            self._positions.discard(evicted)
            self._positions.add(position)
            return True
        return False

    def offer_batch(self, positions: np.ndarray, squared_distances: np.ndarray) -> int:
        """Offer many candidates at once; returns how many entered the top-k."""
        admitted = 0
        for pos, sq in zip(np.asarray(positions), np.asarray(squared_distances)):
            if self.offer(int(pos), float(sq)):
                admitted += 1
        return admitted

    # -- thresholds -----------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def worst_squared_distance(self) -> float:
        """Current pruning threshold (squared).  Infinite until k answers exist."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    @property
    def best_squared_distance(self) -> float:
        if not self._heap:
            return float("inf")
        return min(-d for d, _ in self._heap)

    # -- extraction ----------------------------------------------------------
    def neighbors(self) -> list[Neighbor]:
        """The answers sorted by increasing Euclidean distance."""
        ordered = sorted((-d, pos) for d, pos in self._heap)
        return [Neighbor(distance=float(np.sqrt(sq)), position=pos) for sq, pos in ordered]

    def positions(self) -> list[int]:
        return [n.position for n in self.neighbors()]

    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors()]


@dataclass
class RangeAnswerSet:
    """Answers of an r-range query: every series within ``radius`` of the query."""

    radius: float
    matches: list[Neighbor] = field(default_factory=list)

    def offer(self, position: int, squared_distance: float) -> bool:
        distance = float(np.sqrt(max(0.0, squared_distance)))
        if distance <= self.radius:
            self.matches.append(Neighbor(distance=distance, position=position))
            return True
        return False

    def neighbors(self) -> list[Neighbor]:
        return sorted(self.matches)

    @property
    def size(self) -> int:
        return len(self.matches)
