"""Answer containers for k-NN and range similarity queries."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Neighbor", "KnnAnswerSet", "RangeAnswerSet"]


@dataclass(frozen=True, order=True)
class Neighbor:
    """One answer: the position of a series in the collection and its distance.

    Distances are *Euclidean* (not squared) so answers read the same way the
    paper reports them; internal heaps work on squared distances for speed.
    """

    distance: float
    position: int


class KnnAnswerSet:
    """A bounded max-heap holding the current k best candidates.

    Every method in the library funnels candidates through this structure, so
    the best-so-far (bsf) pruning threshold is maintained identically everywhere.

    Ties are deterministic: candidates are ranked by ``(squared_distance,
    position)``, so among equal distances the *smaller position* wins a slot.
    The final contents are therefore the lexicographic top-k of everything
    offered, independent of offer order — which is what makes sharded /
    parallel searches byte-identical to their sequential counterparts.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be a positive integer")
        self.k = k
        # Min-heap of (-squared_distance, -position): the head is the
        # lexicographically largest (distance, position) pair, i.e. the entry
        # evicted first when a better candidate arrives.
        self._heap: list[tuple[float, int]] = []
        # positions currently in the heap; a series can only be an answer once,
        # even if several access paths (approximate leaf + refinement scan)
        # offer it to the answer set.
        self._positions: set[int] = set()

    # -- updates -----------------------------------------------------------
    def offer(self, position: int, squared_distance: float) -> bool:
        """Offer a candidate; returns True if it entered the current top-k."""
        if squared_distance < 0:
            squared_distance = 0.0
        if position in self._positions:
            return False
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-squared_distance, -position))
            self._positions.add(position)
            return True
        worst_neg_sq, worst_neg_pos = self._heap[0]
        worst = -worst_neg_sq
        if squared_distance < worst or (
            squared_distance == worst and position < -worst_neg_pos
        ):
            heapq.heapreplace(self._heap, (-squared_distance, -position))
            self._positions.discard(-worst_neg_pos)
            self._positions.add(position)
            return True
        return False

    def offer_batch(self, positions: np.ndarray, squared_distances: np.ndarray) -> int:
        """Offer many candidates at once; returns how many entered the top-k.

        Runs in O(n + k log k) instead of the O(n log k) per-element loop: the
        batch is first filtered against the current pruning threshold, then
        ``np.argpartition`` keeps only the candidates that can possibly enter
        the heap (at most ``k`` plus the current occupancy, to absorb
        duplicate-position collisions), and only that handful goes through
        :meth:`offer`.  The result is exactly what offering each candidate
        individually produces: the lexicographic ``(distance, position)``
        top-k (candidates tying the k-th distance are filtered with ``<=`` so
        the positional tie-break in :meth:`offer` can still decide them).  A
        position repeated within one batch keeps its smallest distance (a
        position has a single true distance, so real call sites never hit
        this).
        """
        pos = np.asarray(positions, dtype=np.int64).ravel()
        sq = np.asarray(squared_distances, dtype=np.float64).ravel()
        if pos.size != sq.size:
            raise ValueError("positions and squared_distances must have equal length")
        if pos.size == 0:
            return 0
        if not np.all(np.isfinite(sq)):
            # NaN/inf distances follow the legacy one-by-one semantics (they
            # can still fill an under-occupied heap); keep the slow path here.
            admitted = 0
            for p, s in zip(pos, sq):
                if self.offer(int(p), float(s)):
                    admitted += 1
            return admitted
        sq = np.maximum(sq, 0.0)
        admitted = 0
        threshold = self.worst_squared_distance
        if np.isfinite(threshold):
            # <= rather than <: candidates tying the current k-th distance may
            # still enter on the positional tie-break.
            candidates = np.flatnonzero(sq <= threshold)
        else:
            candidates = np.arange(pos.size)
        while candidates.size:
            # Only the (k + occupancy) smallest can enter: at most ``occupancy``
            # of them may be rejected as duplicates of positions already held.
            cap = self.k + len(self._positions)
            if candidates.size > cap:
                part = np.argpartition(sq[candidates], cap - 1)
                selected = candidates[part[:cap]]
                rest = candidates[part[cap:]]
            else:
                selected, rest = candidates, candidates[:0]
            selected = np.sort(selected)
            selected = selected[np.argsort(sq[selected], kind="stable")]
            for i in selected:
                if self.offer(int(pos[i]), float(sq[i])):
                    admitted += 1
            if rest.size == 0:
                break
            # Duplicate collisions may have left room for candidates beyond the
            # cap; re-filter the remainder against the updated threshold.
            candidates = rest[sq[rest] <= self.worst_squared_distance]
        return admitted

    def merge(self, other: "KnnAnswerSet", position_offset: int = 0) -> int:
        """Fold another answer set into this one; returns how many entered.

        ``position_offset`` translates the other set's positions into this
        set's coordinate space (a shard's local positions become global ones).
        Distance ties are broken by (translated) position via :meth:`offer`,
        so merging per-shard sets in any order yields the same final top-k —
        byte-identical to offering every underlying candidate to one set.
        """
        admitted = 0
        for sq, position in other.squared_items():
            if self.offer(position + position_offset, sq):
                admitted += 1
        return admitted

    def squared_items(self) -> list[tuple[float, int]]:
        """The current answers as ``(squared_distance, position)``, best first."""
        return sorted((-neg_sq, -neg_pos) for neg_sq, neg_pos in self._heap)

    # -- thresholds -----------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def worst_squared_distance(self) -> float:
        """Current pruning threshold (squared).  Infinite until k answers exist."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    @property
    def best_squared_distance(self) -> float:
        if not self._heap:
            return float("inf")
        return min(-d for d, _ in self._heap)

    # -- extraction ----------------------------------------------------------
    def neighbors(self) -> list[Neighbor]:
        """The answers sorted by increasing (distance, position)."""
        return [
            Neighbor(distance=float(np.sqrt(sq)), position=pos)
            for sq, pos in self.squared_items()
        ]

    def positions(self) -> list[int]:
        return [n.position for n in self.neighbors()]

    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors()]


@dataclass
class RangeAnswerSet:
    """Answers of an r-range query: every series within ``radius`` of the query."""

    radius: float
    matches: list[Neighbor] = field(default_factory=list)

    def offer(self, position: int, squared_distance: float) -> bool:
        distance = float(np.sqrt(max(0.0, squared_distance)))
        if distance <= self.radius:
            self.matches.append(Neighbor(distance=distance, position=position))
            return True
        return False

    def offer_batch(self, positions: np.ndarray, squared_distances: np.ndarray) -> int:
        """Offer many candidates at once; returns how many were within range.

        Vectorized counterpart of :meth:`offer`: the radius test runs on the
        whole array and only the matches are materialized as :class:`Neighbor`
        objects, in batch order.
        """
        pos = np.asarray(positions, dtype=np.int64).ravel()
        sq = np.asarray(squared_distances, dtype=np.float64).ravel()
        if pos.size != sq.size:
            raise ValueError("positions and squared_distances must have equal length")
        if pos.size == 0:
            return 0
        distances = np.sqrt(np.maximum(sq, 0.0))
        within = distances <= self.radius
        self.matches.extend(
            Neighbor(distance=float(d), position=int(p))
            for p, d in zip(pos[within], distances[within])
        )
        return int(np.count_nonzero(within))

    def neighbors(self) -> list[Neighbor]:
        return sorted(self.matches)

    @property
    def size(self) -> int:
        return len(self.matches)
