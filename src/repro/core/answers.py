"""Answer containers for k-NN and range similarity queries."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Neighbor", "KnnAnswerSet", "RangeAnswerSet"]


@dataclass(frozen=True, order=True)
class Neighbor:
    """One answer: the position of a series in the collection and its distance.

    Distances are *Euclidean* (not squared) so answers read the same way the
    paper reports them; internal heaps work on squared distances for speed.
    """

    distance: float
    position: int


class KnnAnswerSet:
    """A bounded max-heap holding the current k best candidates.

    Every method in the library funnels candidates through this structure, so
    the best-so-far (bsf) pruning threshold is maintained identically everywhere.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be a positive integer")
        self.k = k
        # max-heap via negated squared distances
        self._heap: list[tuple[float, int]] = []
        # positions currently in the heap; a series can only be an answer once,
        # even if several access paths (approximate leaf + refinement scan)
        # offer it to the answer set.
        self._positions: set[int] = set()

    # -- updates -----------------------------------------------------------
    def offer(self, position: int, squared_distance: float) -> bool:
        """Offer a candidate; returns True if it entered the current top-k."""
        if squared_distance < 0:
            squared_distance = 0.0
        if position in self._positions:
            return False
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-squared_distance, position))
            self._positions.add(position)
            return True
        worst = -self._heap[0][0]
        if squared_distance < worst:
            _, evicted = heapq.heapreplace(self._heap, (-squared_distance, position))
            self._positions.discard(evicted)
            self._positions.add(position)
            return True
        return False

    def offer_batch(self, positions: np.ndarray, squared_distances: np.ndarray) -> int:
        """Offer many candidates at once; returns how many entered the top-k.

        Runs in O(n + k log k) instead of the O(n log k) per-element loop: the
        batch is first filtered against the current pruning threshold, then
        ``np.argpartition`` keeps only the candidates that can possibly enter
        the heap (at most ``k`` plus the current occupancy, to absorb
        duplicate-position collisions), and only that handful goes through
        :meth:`offer`.  The resulting top-k *distances* are identical to
        offering each candidate individually; among candidates whose distances
        tie exactly at the k-th value the admitted *positions* may differ from
        the sequential loop (``argpartition`` breaks such ties arbitrarily),
        and a position repeated within one batch keeps its smallest distance
        (the sequential loop kept the first seen; a position has a single true
        distance, so real call sites never hit this).
        """
        pos = np.asarray(positions, dtype=np.int64).ravel()
        sq = np.asarray(squared_distances, dtype=np.float64).ravel()
        if pos.size != sq.size:
            raise ValueError("positions and squared_distances must have equal length")
        if pos.size == 0:
            return 0
        if not np.all(np.isfinite(sq)):
            # NaN/inf distances follow the legacy one-by-one semantics (they
            # can still fill an under-occupied heap); keep the slow path here.
            admitted = 0
            for p, s in zip(pos, sq):
                if self.offer(int(p), float(s)):
                    admitted += 1
            return admitted
        sq = np.maximum(sq, 0.0)
        admitted = 0
        threshold = self.worst_squared_distance
        if np.isfinite(threshold):
            candidates = np.flatnonzero(sq < threshold)
        else:
            candidates = np.arange(pos.size)
        while candidates.size:
            # Only the (k + occupancy) smallest can enter: at most ``occupancy``
            # of them may be rejected as duplicates of positions already held.
            cap = self.k + len(self._positions)
            if candidates.size > cap:
                part = np.argpartition(sq[candidates], cap - 1)
                selected = candidates[part[:cap]]
                rest = candidates[part[cap:]]
            else:
                selected, rest = candidates, candidates[:0]
            selected = np.sort(selected)
            selected = selected[np.argsort(sq[selected], kind="stable")]
            for i in selected:
                if self.offer(int(pos[i]), float(sq[i])):
                    admitted += 1
            if rest.size == 0:
                break
            # Duplicate collisions may have left room for candidates beyond the
            # cap; re-filter the remainder against the updated threshold.
            candidates = rest[sq[rest] < self.worst_squared_distance]
        return admitted

    # -- thresholds -----------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def worst_squared_distance(self) -> float:
        """Current pruning threshold (squared).  Infinite until k answers exist."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    @property
    def best_squared_distance(self) -> float:
        if not self._heap:
            return float("inf")
        return min(-d for d, _ in self._heap)

    # -- extraction ----------------------------------------------------------
    def neighbors(self) -> list[Neighbor]:
        """The answers sorted by increasing Euclidean distance."""
        ordered = sorted((-d, pos) for d, pos in self._heap)
        return [Neighbor(distance=float(np.sqrt(sq)), position=pos) for sq, pos in ordered]

    def positions(self) -> list[int]:
        return [n.position for n in self.neighbors()]

    def distances(self) -> list[float]:
        return [n.distance for n in self.neighbors()]


@dataclass
class RangeAnswerSet:
    """Answers of an r-range query: every series within ``radius`` of the query."""

    radius: float
    matches: list[Neighbor] = field(default_factory=list)

    def offer(self, position: int, squared_distance: float) -> bool:
        distance = float(np.sqrt(max(0.0, squared_distance)))
        if distance <= self.radius:
            self.matches.append(Neighbor(distance=distance, position=position))
            return True
        return False

    def offer_batch(self, positions: np.ndarray, squared_distances: np.ndarray) -> int:
        """Offer many candidates at once; returns how many were within range.

        Vectorized counterpart of :meth:`offer`: the radius test runs on the
        whole array and only the matches are materialized as :class:`Neighbor`
        objects, in batch order.
        """
        pos = np.asarray(positions, dtype=np.int64).ravel()
        sq = np.asarray(squared_distances, dtype=np.float64).ravel()
        if pos.size != sq.size:
            raise ValueError("positions and squared_distances must have equal length")
        if pos.size == 0:
            return 0
        distances = np.sqrt(np.maximum(sq, 0.0))
        within = distances <= self.radius
        self.matches.extend(
            Neighbor(distance=float(d), position=int(p))
            for p, d in zip(pos[within], distances[within])
        )
        return int(np.count_nonzero(within))

    def neighbors(self) -> list[Neighbor]:
        return sorted(self.matches)

    @property
    def size(self) -> int:
        return len(self.matches)
