"""End-to-end data integrity: per-block checksums for every storage format.

The system now reads real bytes from real files (mmap ``.npy``/raw float32
and compressed ``.rcz``), so a flipped bit on disk — or anywhere on the read
path — must surface as a typed error, never as a silently wrong answer.  This
module provides the pieces shared by every format:

* :func:`checksum` — the CRC-32 digest used everywhere (``zlib.crc32``; the
  stdlib polynomial, playing the CRC32C role without an extra dependency);
* :class:`CorruptionError` — the typed failure carrying file, block, and the
  expected/actual digests;
* the ``.crc`` sidecar manifest for raw/``.npy`` files: a per-block digest
  table written streamed by :class:`~repro.core.series.SeriesFileWriter`
  (:class:`ChecksumAccumulator`) and loaded through a process-wide cache
  (:func:`manifest_for`) so forked/sliced shard stores share one verified-set;
* verifiers used by :class:`~repro.core.storage.SeriesStore`:
  :class:`SequentialVerifier` accumulates digests *during* a streaming scan
  (no second read of the data), and :func:`verify_row_range` /
  :func:`verify_positions` check the blocks covering a random access by
  reading each unverified block once through the store's backend.

Blocks are fixed at ``block_rows`` rows of the file (not of a sliced view),
and each digest covers the block's little-endian float32 bytes.  Every block
is verified at most once per process: manifests keep a shared ``verified``
set, so steady-state verification cost on hot paths is one CRC pass over data
the scan already touched.

A block that a sliced view cannot cover in full (it straddles the slice
boundary) is *not* verifiable from that view and is skipped; the parent
store — or any shard whose range covers it — verifies it instead.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from pathlib import Path

import numpy as np

__all__ = [
    "CRC_SUFFIX",
    "DEFAULT_CRC_BLOCK_ROWS",
    "CorruptionError",
    "checksum",
    "ChecksumManifest",
    "ChecksumAccumulator",
    "write_manifest",
    "load_manifest",
    "manifest_for",
    "invalidate_manifest_cache",
    "SequentialVerifier",
    "verify_row_range",
    "verify_positions",
]

#: suffix appended to a dataset file's name for its checksum sidecar
#: (``walks.npy`` → ``walks.npy.crc``).
CRC_SUFFIX = ".crc"

#: rows per checksummed block in sidecar manifests; matches the compressed
#: format's default block granularity so verification units line up across
#: backends.
DEFAULT_CRC_BLOCK_ROWS = 1024

_MAGIC = b"RCRC"
_MANIFEST_VERSION = 1
#: sidecar header: magic, version, pad, block_rows, row count, series length.
_MANIFEST_HEADER = struct.Struct("<4sHHQQQ")
assert _MANIFEST_HEADER.size == 32


class CorruptionError(IOError):
    """Stored data failed its integrity check.

    Subclasses :class:`IOError` so callers guarding file reads still catch it,
    but retry layers treat it as *permanent*: re-reading corrupt bytes cannot
    help.  ``path``/``block`` locate the damage; ``expected``/``actual`` are
    the CRC-32 digests (``None`` when the failure is structural, e.g. a
    malformed manifest).
    """

    def __init__(
        self,
        message: str,
        *,
        path=None,
        block: int | None = None,
        expected: int | None = None,
        actual: int | None = None,
    ) -> None:
        super().__init__(message)
        self.path = None if path is None else str(path)
        self.block = block
        self.expected = expected
        self.actual = actual


def checksum(buffer, value: int = 0) -> int:
    """CRC-32 digest of ``buffer`` (bytes or a C-contiguous array)."""
    return zlib.crc32(buffer, value) & 0xFFFFFFFF


# -- sidecar manifest ----------------------------------------------------------


class ChecksumManifest:
    """Parsed ``.crc`` sidecar: per-block digests plus a shared verified-set.

    ``verified`` holds block indexes already checked against the data this
    process has read; it lives on the (cached) manifest object, so every
    store, fork, and shard slice over the same file shares one set and each
    block is CRC'd at most once per process.
    """

    __slots__ = ("data_path", "block_rows", "count", "length", "crcs", "verified")

    def __init__(self, data_path, block_rows, count, length, crcs) -> None:
        self.data_path = str(data_path)
        self.block_rows = int(block_rows)
        self.count = int(count)
        self.length = int(length)
        self.crcs = np.asarray(crcs, dtype=np.uint32)
        self.verified: set[int] = set()

    @property
    def blocks(self) -> int:
        return int(self.crcs.shape[0])

    def block_span(self, block: int) -> tuple[int, int]:
        """Absolute file-row range ``[start, stop)`` of ``block``."""
        start = block * self.block_rows
        return start, min(start + self.block_rows, self.count)

    def check(self, block: int, digest: int) -> None:
        """Record ``digest`` for ``block``; raise on mismatch."""
        expected = int(self.crcs[block])
        if digest != expected:
            raise CorruptionError(
                f"{self.data_path}: checksum mismatch in block {block} "
                f"(expected {expected:#010x}, got {digest:#010x})",
                path=self.data_path,
                block=block,
                expected=expected,
                actual=digest,
            )
        self.verified.add(block)


class ChecksumAccumulator:
    """Streaming per-block CRC accumulation for a fixed-row block layout.

    Fed contiguous row chunks of *any* size (the
    :class:`~repro.core.series.SeriesFileWriter` contract), it produces the
    same digests as checksumming the final file block by block — the sidecar
    stays chunking-invariant, like the file bytes themselves.
    """

    def __init__(self, block_rows: int = DEFAULT_CRC_BLOCK_ROWS) -> None:
        self.block_rows = int(block_rows)
        self._crcs: list[int] = []
        self._partial = 0
        self._partial_rows = 0

    def update(self, rows: np.ndarray) -> None:
        """Fold one C-contiguous ``(m, length)`` float32 chunk into the stream."""
        m = int(rows.shape[0])
        i = 0
        while i < m:
            take = min(self.block_rows - self._partial_rows, m - i)
            self._partial = checksum(rows[i : i + take], self._partial)
            self._partial_rows += take
            i += take
            if self._partial_rows == self.block_rows:
                self._crcs.append(self._partial)
                self._partial = 0
                self._partial_rows = 0

    def digests(self) -> list[int]:
        """Per-block digests, including the trailing partial block (if any)."""
        out = list(self._crcs)
        if self._partial_rows:
            out.append(self._partial)
        return out


def write_manifest(data_path, *, block_rows: int, count: int, length: int, crcs) -> Path:
    """Write the ``.crc`` sidecar for ``data_path`` atomically; returns its path."""
    sidecar = Path(str(data_path) + CRC_SUFFIX)
    table = np.asarray(crcs, dtype="<u4")
    body = _MANIFEST_HEADER.pack(
        _MAGIC, _MANIFEST_VERSION, 0, int(block_rows), int(count), int(length)
    ) + table.tobytes()
    body += struct.pack("<I", checksum(body))  # self-digest guards the sidecar
    from .series import unique_tmp_path

    tmp = unique_tmp_path(sidecar)
    with open(tmp, "wb") as handle:
        handle.write(body)
    os.replace(tmp, sidecar)
    return sidecar


def load_manifest(data_path) -> ChecksumManifest:
    """Parse the ``.crc`` sidecar of ``data_path`` (raises if absent/malformed)."""
    data_path = Path(data_path)
    sidecar = Path(str(data_path) + CRC_SUFFIX)
    raw = sidecar.read_bytes()
    if len(raw) < _MANIFEST_HEADER.size + 4:
        raise CorruptionError(f"{sidecar}: truncated checksum manifest", path=sidecar)
    body, (self_crc,) = raw[:-4], struct.unpack("<I", raw[-4:])
    if checksum(body) != self_crc:
        raise CorruptionError(
            f"{sidecar}: checksum manifest failed its own digest",
            path=sidecar,
            expected=self_crc,
            actual=checksum(body),
        )
    magic, version, _, block_rows, count, length = _MANIFEST_HEADER.unpack(
        body[: _MANIFEST_HEADER.size]
    )
    if magic != _MAGIC or version != _MANIFEST_VERSION:
        raise CorruptionError(f"{sidecar}: not a checksum manifest", path=sidecar)
    blocks = (count + block_rows - 1) // block_rows if count else 0
    table = np.frombuffer(body[_MANIFEST_HEADER.size :], dtype="<u4")
    if table.shape[0] != blocks:
        raise CorruptionError(
            f"{sidecar}: manifest has {table.shape[0]} digests, expected {blocks}",
            path=sidecar,
        )
    return ChecksumManifest(data_path, block_rows, count, length, table)


# Manifests are cached process-wide keyed by (realpath, mtime, size, content
# digest): forked and sliced stores resolve to the *same* object, sharing its
# verified-set.  The digest — the sidecar's trailing self-CRC, a 4-byte read —
# is what keeps the key honest when a checkpoint legitimately rewrites a file
# at identical size within the filesystem's mtime granularity: (path, mtime,
# size) alone would collide and serve the stale generation's checksums.
_MANIFESTS: dict[tuple, ChecksumManifest] = {}
_MANIFESTS_LOCK = threading.Lock()


def _sidecar_digest(sidecar: Path) -> bytes:
    """The sidecar's trailing self-CRC bytes (its content fingerprint)."""
    try:
        with open(sidecar, "rb") as handle:
            handle.seek(-4, os.SEEK_END)
            return handle.read(4)
    except OSError:
        return b""


def manifest_for(data_path) -> ChecksumManifest | None:
    """The cached sidecar manifest for ``data_path``, or ``None`` if absent."""
    sidecar = Path(str(data_path) + CRC_SUFFIX)
    try:
        stat = sidecar.stat()
    except OSError:
        return None
    real = os.path.realpath(sidecar)
    key = (real, stat.st_mtime_ns, stat.st_size, _sidecar_digest(sidecar))
    with _MANIFESTS_LOCK:
        cached = _MANIFESTS.get(key)
    if cached is not None:
        return cached
    manifest = load_manifest(data_path)
    with _MANIFESTS_LOCK:
        # Drop stale generations of the same sidecar (rewritten files).
        for other in [k for k in _MANIFESTS if k[0] == real and k != key]:
            del _MANIFESTS[other]
        return _MANIFESTS.setdefault(key, manifest)


def invalidate_manifest_cache() -> None:
    """Forget every cached manifest (tests that rewrite files in place)."""
    with _MANIFESTS_LOCK:
        _MANIFESTS.clear()


# -- verifiers -----------------------------------------------------------------


class SequentialVerifier:
    """Verify a streaming scan against a manifest as the chunks flow by.

    Digests accumulate over the chunks the scan already produced — no second
    read — and every block completed inside the stream is checked the moment
    its last row passes.  Blocks entered mid-way (the stream started inside
    them) cannot be digested from a partial prefix and are left to the random
    verifiers.  Already-verified blocks are skipped without CRC work.
    """

    def __init__(self, manifest: ChecksumManifest, row_offset: int) -> None:
        self._m = manifest
        self._off = int(row_offset)
        self._block = -1
        self._crc = 0
        self._rows = 0
        self._next = None  # expected absolute row of the next feed

    def feed(self, start: int, chunk: np.ndarray) -> None:
        """Fold ``chunk`` (view rows starting at ``start``) into the stream."""
        m = self._m
        pos = self._off + int(start)
        if pos != self._next:  # non-contiguous: drop any partial block
            self._block = -1
        rows = int(chunk.shape[0])
        self._next = pos + rows
        i = 0
        while i < rows:
            block = pos // m.block_rows
            b_start, b_stop = m.block_span(block)
            take = min(b_stop - pos, rows - i)
            if block in m.verified:
                self._block = -1
            elif pos == b_start:
                self._block, self._crc, self._rows = block, 0, 0
            if self._block == block:
                self._crc = checksum(chunk[i : i + take], self._crc)
                self._rows += take
                if pos + take == b_stop:
                    m.check(block, self._crc)
                    self._block = -1
            pos += take
            i += take


def verify_row_range(
    manifest: ChecksumManifest,
    row_offset: int,
    view_rows: int,
    start: int,
    stop: int,
    reader,
) -> None:
    """Verify every manifest block covering view rows ``[start, stop)``.

    ``reader(view_start, view_stop)`` reads rows *through the store's
    backend* (so damage anywhere on the read path is seen), once per
    unverified block.  Blocks extending past the view's own range cannot be
    read in full from here and are skipped.
    """
    m = manifest
    a0 = max(0, int(start)) + row_offset
    a1 = min(int(stop), view_rows) + row_offset
    if a1 <= a0:
        return
    for block in range(a0 // m.block_rows, (a1 - 1) // m.block_rows + 1):
        _verify_block(m, block, row_offset, view_rows, reader)


def verify_positions(
    manifest: ChecksumManifest,
    row_offset: int,
    view_rows: int,
    positions: np.ndarray,
    reader,
) -> None:
    """Verify the manifest blocks containing each of ``positions`` (view rows)."""
    m = manifest
    absolute = np.asarray(positions, dtype=np.int64) + row_offset
    for block in np.unique(absolute // m.block_rows):
        _verify_block(m, int(block), row_offset, view_rows, reader)


def _verify_block(m, block, row_offset, view_rows, reader) -> None:
    if block in m.verified:
        return
    b_start, b_stop = m.block_span(block)
    v_start, v_stop = b_start - row_offset, b_stop - row_offset
    if v_start < 0 or v_stop > view_rows:
        return  # straddles the slice boundary; not verifiable from this view
    data = reader(v_start, v_stop)
    m.check(block, checksum(np.ascontiguousarray(data)))
