"""Raw-data storage with page-granular access accounting.

The paper's findings hinge on the *access pattern* each method induces on the
raw data file: full sequential scans (UCR Suite), skip-sequential scans with
many seeks (ADS+, VA+file), or clustered leaf reads (DSTree, iSAX2+, SFA).
The :class:`SeriesStore` counts every access at page granularity,
distinguishing sequential page reads from random accesses (seeks); the
hardware cost models in :mod:`repro.evaluation.hardware` turn those counts
into simulated I/O time.

Where the bytes actually live is delegated to a pluggable
:class:`~repro.core.backends.StorageBackend`: the in-memory backend preserves
the historical all-in-RAM behavior, and the mmap backend serves the same read
API from a memory-mapped dataset file without ever materializing the
collection — same counters, same answers, real out-of-core capacity.  With
``measure_io=True`` the store additionally times every backend read (faulting
the touched pages in), accumulating *measured* wall-clock I/O next to the
simulated accounting so the cost models can be calibrated against the actual
storage device (:func:`repro.evaluation.hardware.measure_platform`).
"""

from __future__ import annotations

import time

import numpy as np

from .backends import StorageBackend, resolve_backend, touch_pages
from .faults import (
    DEFAULT_RETRY_POLICY,
    FaultInjectingBackend,
    FaultPlan,
    RetryPolicy,
    TransientIOError,
)
from .integrity import SequentialVerifier, verify_positions, verify_row_range
from .series import SERIES_DTYPE, Dataset
from .stats import AccessCounter

__all__ = ["SeriesStore", "DEFAULT_PAGE_BYTES"]

#: default page size in bytes (a typical file-system block / RAID stripe unit).
DEFAULT_PAGE_BYTES = 65536

#: default streaming-scan chunk size in bytes (see :meth:`SeriesStore.scan_chunks`).
DEFAULT_SCAN_CHUNK_BYTES = 8 * 1024 * 1024

#: default chunk size for the *builder* streams (:meth:`SeriesStore.scan_blocks`,
#: :meth:`SeriesStore.peek_chunks`).  Smaller than the scan default because a
#: build pass double-buffers each chunk in float64 (2x) next to per-chunk
#: kernel temporaries, so the chunk size bounds roughly 4-6x its bytes of
#: transient residency.
DEFAULT_BUILD_CHUNK_BYTES = 4 * 1024 * 1024


class SeriesStore:
    """Page-oriented, accounted view over a :class:`~repro.core.series.Dataset`.

    The store exposes the access styles used by the methods in the paper:

    * :meth:`scan` — full sequential scan (UCR Suite, MASS, index build passes);
    * :meth:`scan_chunks` — the same scan as a bounded-memory chunk stream
      (identical accounting; the streaming form of out-of-core passes);
    * :meth:`read_block` — contiguous block read, counted as one random access
      (seek) plus the sequential pages of the block (leaf reads, skip-sequential
      refinement of ADS+/VA+file);
    * :meth:`read_one` — single-series random access.

    Every call updates the shared :class:`~repro.core.stats.AccessCounter`, which
    the experiment runner snapshots around each query.  Accounting is computed
    from the store's page geometry alone, so it is identical for every backend.

    Reads return *views* wherever NumPy indexing allows (:meth:`scan`,
    :meth:`read_contiguous`, :meth:`read_one`, and slice :meth:`peek` calls);
    only fancy-indexed block reads materialize copies.  Callers must therefore
    never mutate a returned block.  The store enforces this by serving reads
    from a frozen array (in-memory backend) or a read-only mapping (mmap
    backend), so an accidental in-place write raises instead of silently
    corrupting the collection every other reader shares.
    """

    def __init__(
        self,
        dataset: Dataset,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        backend: StorageBackend | str | None = None,
        measure_io: bool = False,
        faults: FaultPlan | str | None = None,
        retry: RetryPolicy | None = None,
        verify: bool | None = None,
    ) -> None:
        """``faults`` wraps the backend in deterministic fault injection (a
        :class:`~repro.core.faults.FaultPlan`, a spec string, or — when left
        ``None`` — whatever ``REPRO_FAULT_PLAN`` describes).  ``retry`` is
        the transient-fault :class:`~repro.core.faults.RetryPolicy` applied
        around every backend read (default: 4 attempts with jittered
        exponential backoff; ``RetryPolicy(attempts=1)`` disables retries).
        ``verify`` controls checksum verification against the backend's
        integrity data (``None``/``True``: verify whenever a ``.crc`` sidecar
        exists; ``False``: off)."""
        if page_bytes <= 0:
            raise ValueError("page_bytes must be positive")
        self.dataset = dataset
        resolved = resolve_backend(dataset, backend)
        if isinstance(faults, str):
            faults = FaultPlan.from_spec(faults)
        if faults is None:
            faults = FaultPlan.from_env()
        if faults is not None and not isinstance(resolved, FaultInjectingBackend):
            resolved = FaultInjectingBackend(resolved, faults)
            # The write path's crash points live inside the WAL/checkpoint
            # sequence; growable backends take the plan directly.
            set_plan = getattr(resolved.inner, "set_fault_plan", None)
            if set_plan is not None:
                set_plan(faults)
        self.backend = resolved
        self.faults = resolved.plan if isinstance(resolved, FaultInjectingBackend) else None
        self.retry = DEFAULT_RETRY_POLICY if retry is None else retry
        self.verify = verify is not False
        self._manifest = self.backend.checksums() if self.verify else None
        self.page_bytes = int(page_bytes)
        self.measure_io = bool(measure_io)
        self.counter = AccessCounter()
        self._series_bytes = dataset.length * self.backend.dtype.itemsize
        self._series_per_page = max(1, self.page_bytes // self._series_bytes)

    # -- geometry ------------------------------------------------------------
    @property
    def count(self) -> int:
        return self.dataset.count

    @property
    def length(self) -> int:
        return self.dataset.length

    @property
    def series_bytes(self) -> int:
        """Size of one series on disk in bytes."""
        return self._series_bytes

    @property
    def series_per_page(self) -> int:
        """Number of series that fit in one page."""
        return self._series_per_page

    @property
    def total_pages(self) -> int:
        """Number of pages occupied by the raw data file."""
        return (self.count + self._series_per_page - 1) // self._series_per_page

    def pages_for_series(self, count: int) -> int:
        """Number of pages needed to hold ``count`` consecutive series."""
        if count <= 0:
            return 0
        return (count + self._series_per_page - 1) // self._series_per_page

    # -- measured I/O ----------------------------------------------------------
    def _serve(self, read):
        """Run one backend read, timing it (pages faulted in) when measuring."""
        if not self.measure_io:
            return read()
        start = time.perf_counter()
        block = read()
        touch_pages(block)
        self.counter.measured_io_seconds += time.perf_counter() - start
        return block

    # -- resilient reads -------------------------------------------------------
    def _retrying(self, op):
        """Run one backend read under the store's retry policy.

        Transient failures (injected or detected — see
        :meth:`RetryPolicy.is_transient`) are retried with jittered
        exponential backoff up to ``attempts`` total tries, counting each
        retry; permanent faults (corruption, missing files) propagate
        immediately.
        """
        policy = self.retry
        attempt = 1
        while True:
            try:
                return op()
            except Exception as exc:
                if attempt >= policy.attempts or not policy.is_transient(exc):
                    raise
                self.counter.retries += 1
                time.sleep(policy.delay_for(attempt))
                attempt += 1

    def _read_rows(self, start: int, stop: int) -> np.ndarray:
        """Retried ``backend.read_rows`` with short-read detection."""
        expected = max(0, min(int(stop), self.count) - max(0, int(start)))

        def op():
            block = self.backend.read_rows(start, stop)
            if int(block.shape[0]) != expected:
                raise TransientIOError(
                    f"short read: got {int(block.shape[0])} rows of "
                    f"[{start}, {stop}) (expected {expected})"
                )
            return block

        return self._retrying(op)

    def _take(self, idx: np.ndarray) -> np.ndarray:
        """Retried ``backend.take`` with short-read detection."""

        def op():
            block = self.backend.take(idx)
            if int(block.shape[0]) != int(idx.size):
                raise TransientIOError(
                    f"short read: got {int(block.shape[0])} of {int(idx.size)} rows"
                )
            return block

        return self._retrying(op)

    def _row(self, position: int) -> np.ndarray:
        """Retried ``backend.row`` with shape validation."""

        def op():
            row = self.backend.row(position)
            if int(row.shape[-1]) != self.length:
                raise TransientIOError(
                    f"short read: row {position} has {int(row.shape[-1])} points"
                )
            return row

        return self._retrying(op)

    def _verify_range(self, start: int, stop: int) -> None:
        """Checksum-verify the manifest blocks covering rows ``start:stop``.

        Verification reads go through the (retried) backend read path — so
        damage anywhere between the file and the caller is seen — but touch
        no counters: each file block is checked at most once per process (the
        manifest's verified-set is shared across forks and slices), so the
        steady-state cost on hot paths is zero.
        """
        if self._manifest is not None:
            verify_row_range(
                self._manifest,
                self.backend.row_offset,
                self.count,
                start,
                stop,
                self._read_rows,
            )

    def _verify_positions(self, idx: np.ndarray) -> None:
        """Checksum-verify the manifest blocks containing the rows at ``idx``."""
        if self._manifest is not None:
            verify_positions(
                self._manifest,
                self.backend.row_offset,
                self.count,
                idx,
                self._read_rows,
            )

    # -- access styles ---------------------------------------------------------
    def _account_scan(self) -> None:
        self.counter.random_accesses += 1
        self.counter.sequential_pages += self.total_pages
        self.counter.series_read += self.count
        self.counter.bytes_read += self.count * self._series_bytes
        self.counter.physical_bytes_read += self.backend.physical_bytes(0, self.count)

    def scan(self) -> np.ndarray:
        """Full sequential scan of the raw file.

        Counted as one seek (positioning at the start of the file) plus the
        sequential pages of the whole file.  The returned array is the whole
        collection: an in-memory view, or — on the mmap backend — a lazy view
        into the mapping whose rows are paged in as they are touched.
        """
        self._account_scan()
        return self._serve(lambda: self.backend.values)

    def scan_chunks(self, chunk_rows: int | None = None, drop: bool = True):
        """The sequential scan as a generator of ``(start, block)`` row chunks.

        Accounted exactly like :meth:`scan` (one seek plus the sequential
        pages of the whole file, charged when iteration starts), so consumers
        can switch between the two forms without moving a single counter.
        The difference is residency: each yielded block covers ``chunk_rows``
        rows only, and with ``drop=True`` the mmap backend releases a chunk's
        pages after the next chunk is requested — a streaming pass over a
        collection far larger than RAM keeps its resident set bounded by the
        chunk size.  (``drop`` is a no-op for the in-memory backend.)
        """
        if chunk_rows is None:
            chunk_rows = max(1, DEFAULT_SCAN_CHUNK_BYTES // self._series_bytes)
        chunk_rows = max(1, int(chunk_rows))
        self._account_scan()
        # Verification rides the stream: digests accumulate over the chunks
        # the scan already produced (no second read) and each completed block
        # is checked as its last row passes, so a corrupt block raises before
        # any later chunk is served.
        verifier = (
            SequentialVerifier(self._manifest, self.backend.row_offset)
            if self._manifest is not None
            else None
        )
        for start in range(0, self.count, chunk_rows):
            stop = min(start + chunk_rows, self.count)
            block = self._serve(lambda s=start, e=stop: self._read_rows(s, e))
            if verifier is not None:
                verifier.feed(start, block)
            yield start, block
            if drop:
                # Release one chunk behind as well: the kernel's fault-around
                # happily re-maps already-released pages adjacent to a later
                # fault, so a strictly chunk-local drop slowly re-accumulates
                # residency along the scan.
                self.backend.release(max(0, start - chunk_rows), stop)

    def scan_blocks(self, chunk_rows: int | None = None):
        """Builder variant of :meth:`scan_chunks`: ``(slice, float64 block)``.

        Index bulk builds summarize in float64; yielding the conversion here
        keeps exactly one chunk's float64 staging buffer alive at a time (the
        whole-collection ``astype`` of the historical in-RAM builds is what
        made tree construction cost a multiple of the file in RSS).
        Accounting is exactly :meth:`scan_chunks`'s, i.e. exactly
        :meth:`scan`'s.
        """
        if chunk_rows is None:
            chunk_rows = max(1, DEFAULT_BUILD_CHUNK_BYTES // self._series_bytes)
        for start, block in self.scan_chunks(chunk_rows=chunk_rows):
            yield slice(start, start + block.shape[0]), block.astype(np.float64)

    def peek_chunks(self, positions: np.ndarray, chunk_rows: int | None = None):
        """Unaccounted chunked reads of the rows at ``positions``.

        The streaming counterpart of :meth:`peek` for index builders that
        revisit a node's rows (e.g. DSTree split scoring): yields
        ``(slice, float64 block)`` pairs where the slice indexes into
        ``positions`` and the block holds the corresponding rows.  Like
        :meth:`peek` it moves no counters — build passes are accounted once by
        the explicit scan.  On the mmap backend the consumed rows' pages are
        released with a one-chunk lookback, so residency stays bounded by the
        chunk size; ``positions`` is assumed ascending (index leaves keep
        their positions sorted), which makes the released spans contiguous.
        """
        idx = np.asarray(positions, dtype=np.int64)
        if chunk_rows is None:
            chunk_rows = max(1, DEFAULT_BUILD_CHUNK_BYTES // self._series_bytes)
        chunk_rows = max(1, int(chunk_rows))
        previous_low: int | None = None
        start = 0
        while start < idx.size:
            # Cap the chunk by *store-row span* as well as by count: reading a
            # sparse position set faults every touched page across its span,
            # so count-only chunks over well-scattered rows (a split node's
            # block) would hold a large slice of the file resident at once.
            stop = min(start + chunk_rows, idx.size)
            span_stop = int(np.searchsorted(idx, int(idx[start]) + chunk_rows, "left"))
            stop = max(start + 1, min(stop, span_stop))
            self._verify_positions(idx[start:stop])
            # Like peek: no simulated counters and no measured-I/O timing.
            yield slice(start, stop), self._take(idx[start:stop]).astype(np.float64)
            low, high = int(idx[start]), int(idx[stop - 1]) + 1
            self.backend.release(low if previous_low is None else previous_low, high)
            previous_low = low
            start = stop

    @property
    def supports_quantized_scan(self) -> bool:
        """Whether :meth:`scan_quantized_chunks` is available (compressed backend)."""
        return bool(getattr(self.backend, "supports_quantized_scan", False))

    def scan_quantized_chunks(self, chunk_rows: int | None = None):
        """Filtering pass over the *quantized* representation, tile by tile.

        Yields ``(start, stop, parts)`` per tile of ``chunk_rows`` rows, where
        ``parts`` is the backend's block-trimmed integer representation of the
        tile (``[(codes, scale, shift), ...]``, see
        :meth:`~repro.core.backends.CompressedBackend.quantized_parts`).  Tile
        boundaries match :meth:`scan_chunks` exactly, which is what lets a
        pruned two-phase scan refine a surviving tile with the *identical*
        kernel shape the plain scan would have used — byte-identical answers.

        Accounting mirrors :meth:`scan_chunks` but at the quantized
        representation's cost: one seek; sequential pages and physical bytes
        of the *stored* (compressed) stream; logical ``bytes_read`` of the
        integer codes.  Survivor refinement is accounted separately by the
        caller's :meth:`read_contiguous` calls (skip-sequential, like
        VA+file).  Decoded blocks are dropped with a one-chunk lookback, so a
        streamed pass stays RSS-bounded.
        """
        if not self.supports_quantized_scan:
            raise ValueError(
                f"the {self.backend.kind!r} backend stores no quantized "
                "representation; scan_quantized_chunks needs the compressed backend"
            )
        if chunk_rows is None:
            chunk_rows = max(1, DEFAULT_SCAN_CHUNK_BYTES // self._series_bytes)
        chunk_rows = max(1, int(chunk_rows))
        physical = self.backend.physical_bytes(0, self.count)
        self.counter.random_accesses += 1
        self.counter.sequential_pages += -(-physical // self.page_bytes)
        self.counter.series_read += self.count
        self.counter.bytes_read += (
            self.count * self.length * self.backend.quantized_itemsize
        )
        self.counter.physical_bytes_read += physical
        for start in range(0, self.count, chunk_rows):
            stop = min(start + chunk_rows, self.count)
            yield start, stop, self._retrying(
                lambda s=start, e=stop: self.backend.quantized_parts(s, e)
            )
            self.backend.release(max(0, start - chunk_rows), stop)

    def read_block(self, positions: np.ndarray | list[int]) -> np.ndarray:
        """Read the series at ``positions`` as one contiguous block access.

        The caller guarantees the positions belong to one physical block (e.g.
        the series materialized in one index leaf).  Counted as a single random
        access plus the sequential pages covering the block.  The returned
        block must be treated as read-only, exactly like the views handed out
        by :meth:`scan`/:meth:`read_contiguous`/:meth:`read_one`.
        """
        idx = np.asarray(positions, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, self.length), dtype=self.backend.dtype)
        self.counter.random_accesses += 1
        self.counter.sequential_pages += self.pages_for_series(int(idx.size))
        self.counter.series_read += int(idx.size)
        self.counter.bytes_read += int(idx.size) * self._series_bytes
        self.counter.physical_bytes_read += self.backend.physical_bytes_for(idx)
        self._verify_positions(idx)
        return self._serve(lambda: self._take(idx))

    def read_contiguous(self, start: int, stop: int) -> np.ndarray:
        """Read series ``start:stop`` from the raw file as one skip + block read.

        This is the access pattern of skip-sequential algorithms (ADS+ SIMS,
        VA+file refinement): every gap in the scan costs one seek.
        """
        if stop <= start:
            return np.empty((0, self.length), dtype=self.backend.dtype)
        count = stop - start
        self.counter.random_accesses += 1
        self.counter.sequential_pages += self.pages_for_series(count)
        self.counter.series_read += count
        self.counter.bytes_read += count * self._series_bytes
        self.counter.physical_bytes_read += self.backend.physical_bytes(start, stop)
        self._verify_range(start, stop)
        return self._serve(lambda: self._read_rows(start, stop))

    def read_one(self, position: int) -> np.ndarray:
        """Random access to a single series (a read-only view, not a copy)."""
        self.counter.random_accesses += 1
        self.counter.sequential_pages += 1
        self.counter.series_read += 1
        self.counter.bytes_read += self._series_bytes
        self.counter.physical_bytes_read += self.backend.physical_bytes(
            position, position + 1
        )
        self._verify_range(position, position + 1)
        return self._serve(lambda: self._row(position))

    def peek(self, positions: np.ndarray | list[int] | slice) -> np.ndarray:
        """Access series *without* accounting.

        Used only for building summaries where the build pass is already
        accounted for with an explicit :meth:`scan`.
        """
        return self._retrying(lambda: self.backend.get(positions))

    # -- structure -------------------------------------------------------------
    def fork(self) -> "SeriesStore":
        """A reader view of this store with a private access counter.

        The fork shares the page geometry but counts accesses into a fresh
        :class:`AccessCounter`, which is the thread-safety contract of
        parallel execution: each worker thread reads through its own fork and
        the coordinator merges the forks' counters into this store's counter
        after joining (``counter.merge``), so no counter is ever mutated from
        two threads.  The data stays zero-copy: the in-memory backend is
        shared outright, while the mmap backend reopens the mapping so every
        worker reads through a private file handle.
        """
        return SeriesStore(
            self.dataset,
            page_bytes=self.page_bytes,
            backend=self.backend.fork(),
            measure_io=self.measure_io,
            retry=self.retry,
            verify=self.verify,
        )

    def __getstate__(self) -> dict:
        """Pickle as a task spec: geometry + backend handle, no live state.

        A store crossing a process boundary is an instruction to *read the
        same bytes over there*, not a transfer of accounting: the receiving
        worker accumulates into a fresh counter and ships the delta back in
        its task result (the cross-process form of the fork/merge protocol).
        The checksum manifest is dropped and rebuilt from the backend's
        integrity sidecar on arrival — shipping the CRC table would defeat
        the worker-side manifest cache and bloat every task.
        """
        state = dict(self.__dict__)
        state["_manifest"] = None
        state["counter"] = AccessCounter()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self.verify:
            self._manifest = self.backend.checksums()

    def slice(self, start: int, stop: int, name: str | None = None) -> "SeriesStore":
        """A store over the contiguous sub-range ``start:stop`` (zero-copy).

        This is the partitioning primitive of the sharded executor: the
        sub-store's dataset values are a view of this store's, its backend is
        the sliced backend (for mmap, a (path, row-range) handle that stays
        picklable with no raw data attached), and its counters are private.
        """
        sub_backend = self.backend.slice(start, stop)
        file_backed = sub_backend.source_path is not None
        sub_dataset = Dataset(
            # File-backed slices stay lazy (geometry from the backend): eagerly
            # grabbing .values would decode a compressed shard wholesale.
            values=None if file_backed else sub_backend.values,
            name=name or f"{self.dataset.name}[{start}:{stop}]",
            normalized=self.dataset.normalized,
            backend=sub_backend if file_backed else None,
        )
        return SeriesStore(
            sub_dataset,
            page_bytes=self.page_bytes,
            backend=sub_backend,
            measure_io=self.measure_io,
            retry=self.retry,
            verify=self.verify,
        )

    def describe_storage(self) -> dict:
        """Backend provenance plus page geometry (persistence envelopes)."""
        info = self.backend.describe()
        info["page_bytes"] = self.page_bytes
        return info

    # -- live ingest -----------------------------------------------------------
    @property
    def watermark(self) -> int:
        """The committed row count — what :meth:`snapshot` would pin now."""
        backend = getattr(self.backend, "inner", self.backend)
        return int(getattr(backend, "watermark", self.count))

    def extend(self, rows) -> int:
        """Durably append ``rows`` (growable backends only); returns the new count.

        The call acks — returns — only after the rows are fsynced to the
        write-ahead log; a crash after the return can never lose them.
        Running queries are unaffected: they read through snapshots or the
        pre-extend layout, both immutable.
        """
        backend = getattr(self.backend, "inner", self.backend)
        extend = getattr(backend, "extend", None)
        if extend is None:
            raise ValueError(
                f"the {self.backend.kind!r} backend is frozen; live ingest "
                "needs backend='growable' (see Dataset.to_growable)"
            )
        data = np.atleast_2d(np.asarray(rows, dtype=SERIES_DTYPE))
        new_count = extend(data)
        self.counter.bytes_written += int(data.nbytes)
        return int(new_count)

    def checkpoint(self) -> int:
        """Seal the growable tail into a segment file; returns rows sealed."""
        backend = getattr(self.backend, "inner", self.backend)
        checkpoint = getattr(backend, "checkpoint", None)
        if checkpoint is None:
            raise ValueError(
                f"the {self.backend.kind!r} backend has no checkpoint; live "
                "ingest needs backend='growable'"
            )
        return int(checkpoint())

    def snapshot(self, name: str | None = None) -> "SeriesStore":
        """A store pinned to the current committed row count (zero-copy).

        Rows are immutable once acked and the count only grows, so slicing
        ``[0, watermark)`` *is* a consistent snapshot: queries against it are
        byte-identical to querying a frozen store of that prefix, no matter
        how many :meth:`extend` calls land while they run.  For frozen
        backends this is simply a full-range slice.
        """
        stop = self.watermark
        return self.slice(0, stop, name=name or f"{self.dataset.name}@{stop}")

    # -- bookkeeping -----------------------------------------------------------
    def reset_counters(self) -> None:
        self.counter.reset()

    def counter_snapshot(self) -> AccessCounter:
        return self.counter.snapshot()

    def since(self, snapshot: AccessCounter) -> AccessCounter:
        return self.counter.diff(snapshot)
